"""Workload generators for the end-to-end experiments.

The paper's guest jobs split into "small test programs taking less than
half an hour" and "large computational jobs taking several hours"
(Section 7.3); applications are "either sequential or composed of
multiple related jobs that are submitted as a group" (Section 1).
These generators produce exactly those mixes, plus diurnal arrival
patterns (users submit during their own working hours) — all seeded
and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.sim.jobs import GuestJob, JobGroup

__all__ = ["WorkloadSpec", "bimodal_workload", "diurnal_workload", "group_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shared parameters of the workload generators."""

    n_jobs: int
    start: float
    span: float
    mem_mb: float = 64.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.span <= 0.0:
            raise ValueError(f"span must be positive, got {self.span}")
        if self.mem_mb < 0.0:
            raise ValueError(f"mem_mb must be >= 0, got {self.mem_mb}")


def bimodal_workload(
    spec: WorkloadSpec,
    *,
    small_fraction: float = 0.6,
    small_range: tuple[float, float] = (300.0, 1800.0),
    large_range: tuple[float, float] = (2.0 * 3600.0, 8.0 * 3600.0),
) -> list[tuple[float, GuestJob]]:
    """The paper's job-size mix: mostly small test runs, some long jobs.

    Sizes are log-uniform within each mode; arrivals uniform over the
    span.  Returns ``(submit_time, job)`` pairs sorted by time.
    """
    if not 0.0 <= small_fraction <= 1.0:
        raise ValueError(f"small_fraction must be in [0, 1], got {small_fraction}")
    rng = np.random.default_rng(spec.seed)
    arrivals = np.sort(rng.uniform(spec.start, spec.start + spec.span, spec.n_jobs))
    out = []
    for i, t in enumerate(arrivals):
        lo, hi = small_range if rng.random() < small_fraction else large_range
        size = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        out.append(
            (float(t), GuestJob(job_id=f"job-{i:03d}", cpu_seconds=size,
                                mem_requirement_mb=spec.mem_mb))
        )
    return out


def diurnal_workload(
    spec: WorkloadSpec,
    *,
    peak_hour: float = 10.0,
    concentration: float = 2.0,
    cpu_seconds_range: tuple[float, float] = (1800.0, 14400.0),
) -> list[tuple[float, GuestJob]]:
    """Arrivals concentrated around a working-hours peak.

    Arrival density over the day follows a raised cosine centred on
    ``peak_hour``; ``concentration`` >= 0 controls how peaked (0 =
    uniform).  Guest users submit when *they* are at work — which is,
    adversarially, exactly when host machines are busiest.
    """
    if concentration < 0.0:
        raise ValueError(f"concentration must be >= 0, got {concentration}")
    rng = np.random.default_rng(spec.seed)
    times: list[float] = []
    # Rejection-sample arrival times against the diurnal density.
    peak = peak_hour * win.SECONDS_PER_HOUR
    max_density = 1.0 + concentration
    while len(times) < spec.n_jobs:
        t = rng.uniform(spec.start, spec.start + spec.span)
        phase = 2.0 * np.pi * (win.time_of_day(t) - peak) / win.SECONDS_PER_DAY
        density = 1.0 + concentration * 0.5 * (1.0 + np.cos(phase))
        if rng.random() * max_density < density:
            times.append(float(t))
    times.sort()
    lo, hi = cpu_seconds_range
    out = []
    for i, t in enumerate(times):
        size = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        out.append(
            (t, GuestJob(job_id=f"job-{i:03d}", cpu_seconds=size,
                         mem_requirement_mb=spec.mem_mb))
        )
    return out


def group_workload(
    spec: WorkloadSpec,
    *,
    group_size_range: tuple[int, int] = (2, 6),
    cpu_seconds_range: tuple[float, float] = (1800.0, 7200.0),
) -> list[tuple[float, JobGroup]]:
    """Groups of related jobs (Monte-Carlo sweeps) submitted together.

    ``spec.n_jobs`` counts *groups*; each group has a uniform member
    count in ``group_size_range`` and identical member sizes (a
    parameter sweep).  Returns ``(submit_time, group)`` pairs.
    """
    lo_n, hi_n = group_size_range
    if not 1 <= lo_n <= hi_n:
        raise ValueError(f"invalid group_size_range {group_size_range}")
    rng = np.random.default_rng(spec.seed)
    arrivals = np.sort(rng.uniform(spec.start, spec.start + spec.span, spec.n_jobs))
    lo, hi = cpu_seconds_range
    out = []
    for i, t in enumerate(arrivals):
        members = int(rng.integers(lo_n, hi_n + 1))
        size = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        out.append(
            (
                float(t),
                JobGroup.uniform(
                    f"group-{i:03d}", members, size, mem_requirement_mb=spec.mem_mb
                ),
            )
        )
    return out
