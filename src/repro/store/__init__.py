"""``repro.store`` — durable, crash-recoverable trace storage.

The paper's State Manager is parameterized entirely from accumulated
host-usage logs; this package is where those logs live when the serving
tier must survive restarts and crashes.  It is a dependency-free
persistence layer:

* :mod:`repro.store.wal` — append-only segment files with per-record
  CRC framing and torn-tail truncation, plus the fsync policy
  (``always`` / ``interval`` / ``never``) that trades ingest throughput
  against the crash-durability window;
* :mod:`repro.store.store` — :class:`TraceStore`: per-machine segment
  logs + NPZ snapshots behind ``append`` / ``load`` / ``recover`` /
  ``snapshot`` / ``compact``, with optional background compaction.

Typical use::

    store = TraceStore("state/")            # open == recover
    store.append("lab-03", chunk)           # durable per fsync policy
    history = store.load("lab-03")          # snapshot + replayed suffix
    store.compact()                         # bound future recovery time

The serving tier wires this in via ``AvailabilityService(store=...)``
(persist-before-acknowledge on ``register``/``extend``) and
``repro-fgcs serve --store DIR`` (warm start from the store); the
``repro-fgcs store`` CLI manages a store offline.
"""

from repro.store.store import (
    AppendResult,
    CompactionReport,
    MachineStat,
    RecoveryReport,
    StoreConfig,
    StoreError,
    TraceStore,
)
from repro.store.wal import (
    FsyncPolicy,
    RecoveredSegment,
    SegmentCorruption,
    SegmentWriter,
    iter_records,
    recover_segment,
)

__all__ = [
    "AppendResult",
    "CompactionReport",
    "FsyncPolicy",
    "MachineStat",
    "RecoveredSegment",
    "RecoveryReport",
    "SegmentCorruption",
    "SegmentWriter",
    "StoreConfig",
    "StoreError",
    "TraceStore",
    "iter_records",
    "recover_segment",
]
