"""The durable trace store: per-machine segment logs + snapshots.

Layout of one store directory::

    root/
      MANIFEST.json                  machine id -> directory map
      machines/<dir>/
        meta.json                    machine_id, start_time, sample_period
        snapshot.npz                 compacted sample prefix (may be absent)
        seg-00000001.wal ...         append-only record segments

Each machine's history is a regular sample grid (see
:class:`~repro.traces.trace.MachineTrace`), so durability reduces to an
*append-only sequence of sample batches*: a WAL record is ``(seq, n,
load[n], free_mem_mb[n], up[n])`` where ``seq`` is the index of the
batch's first sample.  Explicit sequence numbers make replay idempotent
— a batch overlapping already-stored samples is trimmed, so a monitor
retrying an acknowledged-but-unconfirmed ``extend`` cannot duplicate
data — and let recovery skip records the snapshot already covers.

Recovery (run on every open) is: load ``snapshot.npz`` (the first
``n_snapshot`` samples in one NPZ read), then replay segment records in
order, keeping only the suffix past what is already known, truncating a
torn tail at the first invalid record.  Compaction folds everything
durable into a fresh snapshot and deletes the segments, bounding both
recovery time and disk growth.

All public methods are thread-safe (one store-wide lock); the optional
background compactor (``auto_compact_interval_s``) runs under the same
lock, so readers never observe a half-compacted machine.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.events import get_event_log
from repro.obs.instruments import instrument
from repro.obs.tracing import start_span
from repro.store.wal import FsyncPolicy, SegmentWriter, recover_segment
from repro.traces.io import load_trace_npz, save_trace_npz
from repro.traces.trace import MachineTrace

__all__ = [
    "STORE_FORMAT_VERSION",
    "StoreConfig",
    "StoreError",
    "AppendResult",
    "RecoveryReport",
    "CompactionReport",
    "MachineStat",
    "TraceStore",
]

STORE_FORMAT_VERSION = 1

_MANIFEST = "MANIFEST.json"
_MACHINES_DIR = "machines"
_SNAPSHOT = "snapshot.npz"
_META = "meta.json"

_BATCH_HEADER = struct.Struct("<QI")  # seq (first sample index), n samples

#: Grid tolerance when aligning a chunk's start time to the machine grid.
_GRID_TOL = 1e-6


class StoreError(RuntimeError):
    """A store operation that violates the store's invariants."""


@dataclass(frozen=True)
class StoreConfig:
    """Tuning knobs of one :class:`TraceStore`."""

    #: Active segment is rolled once it grows past this many bytes.
    segment_max_bytes: int = 4 * 1024 * 1024
    #: Durability policy: "always" | "interval[:SECONDS]" | "never".
    fsync: str | FsyncPolicy = "interval"
    #: Run the background compactor this often (None: no background thread).
    auto_compact_interval_s: float | None = None
    #: Background compaction only touches machines with at least this
    #: many WAL bytes (avoids churning snapshots for idle machines).
    compact_min_wal_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.segment_max_bytes < 1024:
            raise ValueError(
                f"segment_max_bytes must be >= 1024, got {self.segment_max_bytes}"
            )
        if self.auto_compact_interval_s is not None and self.auto_compact_interval_s <= 0:
            raise ValueError("auto_compact_interval_s must be positive")
        # Validate the fsync spec eagerly so a typo fails at config time.
        FsyncPolicy.parse(self.fsync)


@dataclass(frozen=True)
class AppendResult:
    """Outcome of one :meth:`TraceStore.append`."""

    machine_id: str
    #: Index of the first sample actually written (after overlap trim).
    seq: int
    #: Samples written by this append (0 if fully overlapping).
    appended: int
    #: Machine's total stored samples after the append.
    total_samples: int
    #: True when the record was fsynced before returning.
    durable: bool


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and repaired."""

    machines: int
    records_replayed: int
    samples_replayed: int
    samples_from_snapshots: int
    truncated_bytes: int
    duration_s: float


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one compaction pass."""

    machines: int
    segments_removed: int
    bytes_reclaimed: int


@dataclass(frozen=True)
class MachineStat:
    """Per-machine storage accounting (``repro-fgcs store stat``)."""

    machine_id: str
    n_samples: int
    snapshot_samples: int
    n_segments: int
    wal_bytes: int
    snapshot_bytes: int


def _encode_batch(seq: int, load: np.ndarray, mem: np.ndarray, up: np.ndarray) -> bytes:
    n = int(load.shape[0])
    return b"".join(
        (
            _BATCH_HEADER.pack(seq, n),
            np.ascontiguousarray(load, dtype="<f8").tobytes(),
            np.ascontiguousarray(mem, dtype="<f8").tobytes(),
            np.ascontiguousarray(up, dtype=np.uint8).tobytes(),
        )
    )


def _decode_batch(payload: bytes) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    seq, n = _BATCH_HEADER.unpack_from(payload)
    expected = _BATCH_HEADER.size + n * 17  # 8 + 8 + 1 bytes per sample
    if len(payload) != expected:
        raise StoreError(
            f"batch record of {len(payload)} bytes does not match its "
            f"declared {n} samples ({expected} bytes)"
        )
    off = _BATCH_HEADER.size
    load = np.frombuffer(payload, dtype="<f8", count=n, offset=off)
    off += 8 * n
    mem = np.frombuffer(payload, dtype="<f8", count=n, offset=off)
    off += 8 * n
    up = np.frombuffer(payload, dtype=np.uint8, count=n, offset=off).astype(bool)
    return int(seq), load.astype(np.float64), mem.astype(np.float64), up


def _fsync_dir(path: Path) -> None:
    """Make a rename/creation in ``path`` durable (best effort off-POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some FS
        pass
    finally:
        os.close(fd)


def _write_json_atomic(path: Path, obj: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        json.dump(obj, fh, indent=2, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _safe_dirname(machine_id: str) -> str:
    """A filesystem-safe, reversible directory name for one machine id."""
    return urllib.parse.quote(machine_id, safe="._-")


class _MachineState:
    """In-memory state of one machine's log (store-internal)."""

    __slots__ = (
        "machine_id", "dirpath", "start_time", "sample_period",
        "chunks", "n_total", "n_snapshot", "writer", "sealed_bytes", "seg_index",
    )

    def __init__(
        self,
        machine_id: str,
        dirpath: Path,
        start_time: float,
        sample_period: float,
    ) -> None:
        self.machine_id = machine_id
        self.dirpath = dirpath
        self.start_time = start_time
        self.sample_period = sample_period
        #: Sample arrays, in order, jointly covering [0, n_total).
        self.chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.n_total = 0
        self.n_snapshot = 0
        self.writer: SegmentWriter | None = None
        self.sealed_bytes = 0  # bytes in sealed (non-active) segments
        self.seg_index = 0  # index of the active segment

    def segments(self) -> list[Path]:
        return sorted(self.dirpath.glob("seg-*.wal"))

    def wal_bytes(self) -> int:
        if self.writer is not None:
            return self.sealed_bytes + self.writer.size
        # No writer yet (recovered but idle): the active segment is only
        # on disk, not covered by sealed_bytes.
        active = self.dirpath / f"seg-{self.seg_index:08d}.wal"
        if self.seg_index and active.exists():
            return self.sealed_bytes + active.stat().st_size
        return self.sealed_bytes

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated sample arrays (collapses the chunk list)."""
        if not self.chunks:
            empty = np.empty(0)
            return empty, np.empty(0), np.empty(0, dtype=bool)
        if len(self.chunks) > 1:
            load = np.concatenate([c[0] for c in self.chunks])
            mem = np.concatenate([c[1] for c in self.chunks])
            up = np.concatenate([c[2] for c in self.chunks])
            self.chunks = [(load, mem, up)]
        return self.chunks[0]

    def add_chunk(self, load: np.ndarray, mem: np.ndarray, up: np.ndarray) -> None:
        self.chunks.append((load, mem, up))
        self.n_total += int(load.shape[0])

    def trace(self) -> MachineTrace:
        load, mem, up = self.arrays()
        return MachineTrace(
            machine_id=self.machine_id,
            start_time=self.start_time,
            sample_period=self.sample_period,
            load=load,
            free_mem_mb=mem,
            up=up,
        )


class TraceStore:
    """Durable, crash-recoverable storage for machine usage traces.

    Opening a store *is* recovery: the constructor replays every
    machine's snapshot + segment suffix, truncating torn tails, and
    leaves the result in :attr:`last_recovery`.
    """

    def __init__(
        self,
        root: str | Path,
        config: StoreConfig | None = None,
        *,
        create: bool = True,
    ) -> None:
        self.root = Path(root)
        self.config = config or StoreConfig()
        self._fsync = FsyncPolicy.parse(self.config.fsync)
        self._lock = threading.RLock()
        self._machines: dict[str, _MachineState] = {}
        self._closed = False
        self._compactor: threading.Thread | None = None
        self._compactor_stop = threading.Event()
        manifest_path = self.root / _MANIFEST
        if not manifest_path.exists():
            if not create:
                raise FileNotFoundError(f"no trace store at {self.root} (no {_MANIFEST})")
            (self.root / _MACHINES_DIR).mkdir(parents=True, exist_ok=True)
            _write_json_atomic(
                manifest_path,
                {"format_version": STORE_FORMAT_VERSION, "machines": {}},
            )
        self.last_recovery = self._recover_locked()
        if self.config.auto_compact_interval_s is not None:
            self._compactor = threading.Thread(
                target=self._compact_loop, name="repro-store-compactor", daemon=True
            )
            self._compactor.start()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Sync and close every active segment; stop the compactor."""
        self._compactor_stop.set()
        if self._compactor is not None:
            self._compactor.join(timeout=10)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for st in self._machines.values():
                if st.writer is not None:
                    st.writer.close()
                    st.writer = None

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("trace store is closed")

    # ------------------------------------------------------------------ #
    # registry
    # ------------------------------------------------------------------ #

    @property
    def machine_ids(self) -> list[str]:
        """Stored machine ids, sorted."""
        with self._lock:
            return sorted(self._machines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._machines)

    def __contains__(self, machine_id: str) -> bool:
        with self._lock:
            return machine_id in self._machines

    def n_samples(self, machine_id: str) -> int:
        """Stored samples of one machine."""
        with self._lock:
            return self._state(machine_id).n_total

    def _state(self, machine_id: str) -> _MachineState:
        try:
            return self._machines[machine_id]
        except KeyError:
            raise KeyError(f"machine {machine_id!r} is not in the store") from None

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def append(self, machine_id: str, samples: MachineTrace) -> AppendResult:
        """Durably append a batch of samples for one machine.

        ``samples`` is a trace chunk on the machine's grid.  For a new
        machine the chunk establishes the grid (start time and period);
        for a known machine it must start on the grid at or before the
        current end — overlapping samples are trimmed (idempotent
        retries), a gap raises :class:`StoreError`.
        """
        with self._lock, start_span(
            "store.append", "store", machine=machine_id
        ) as sp:
            self._check_open()
            st = self._machines.get(machine_id)
            if st is None:
                st = self._create_machine(
                    machine_id, samples.start_time, samples.sample_period
                )
            if abs(samples.sample_period - st.sample_period) > _GRID_TOL:
                raise StoreError(
                    f"sample period {samples.sample_period} does not match the "
                    f"stored {st.sample_period} for {machine_id!r}"
                )
            offset = (samples.start_time - st.start_time) / st.sample_period
            seq = int(round(offset))
            if abs(offset - seq) > 1e-3 or seq < 0:
                raise StoreError(
                    f"chunk start {samples.start_time} is not on the sample grid "
                    f"of {machine_id!r} (start {st.start_time}, "
                    f"period {st.sample_period})"
                )
            if seq > st.n_total:
                raise StoreError(
                    f"chunk for {machine_id!r} starts at sample {seq} but only "
                    f"{st.n_total} samples are stored (no gaps allowed)"
                )
            skip = st.n_total - seq
            if skip >= samples.n_samples:
                return AppendResult(machine_id, st.n_total, 0, st.n_total, True)
            load = samples.load[skip:]
            mem = samples.free_mem_mb[skip:]
            up = samples.up[skip:]
            payload = _encode_batch(st.n_total, load, mem, up)
            writer = self._writer(st)
            if writer.size + len(payload) > self.config.segment_max_bytes:
                self._roll_segment(st)
                writer = self._writer(st)
            durable = writer.append(payload)
            seq_eff = st.n_total
            st.add_chunk(
                np.array(load, dtype=np.float64),
                np.array(mem, dtype=np.float64),
                np.array(up, dtype=bool),
            )
            instrument("store_appends_total").inc()
            instrument("store_appended_samples_total").inc(float(load.shape[0]))
            if sp is not None:
                sp.set(samples=int(load.shape[0]), durable=durable)
            return AppendResult(
                machine_id, seq_eff, int(load.shape[0]), st.n_total, durable
            )

    def replace(self, trace: MachineTrace) -> None:
        """(Re)load one machine's full history as a fresh snapshot.

        Bulk loading writes the history straight to ``snapshot.npz``
        (no WAL round trip) and resets the machine's segments; used by
        ``register`` semantics and offline ingest.
        """
        with self._lock:
            self._check_open()
            st = self._machines.get(trace.machine_id)
            if st is not None:
                if st.writer is not None:
                    st.writer.close()
                shutil.rmtree(st.dirpath)
                del self._machines[trace.machine_id]
            st = self._create_machine(
                trace.machine_id, trace.start_time, trace.sample_period
            )
            st.add_chunk(
                np.array(trace.load, dtype=np.float64),
                np.array(trace.free_mem_mb, dtype=np.float64),
                np.array(trace.up, dtype=bool),
            )
            self._snapshot_machine(st)

    def sync(self) -> None:
        """fsync every machine's active segment (flush ``interval`` lag)."""
        with self._lock:
            self._check_open()
            for st in self._machines.values():
                if st.writer is not None:
                    st.writer.sync()

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def load(self, machine_id: str) -> MachineTrace:
        """The full stored history of one machine."""
        with self._lock:
            self._check_open()
            return self._state(machine_id).trace()

    def stat(self) -> list[MachineStat]:
        """Per-machine storage accounting, sorted by machine id."""
        with self._lock:
            self._check_open()
            out = []
            for mid in sorted(self._machines):
                st = self._machines[mid]
                snap = st.dirpath / _SNAPSHOT
                out.append(
                    MachineStat(
                        machine_id=mid,
                        n_samples=st.n_total,
                        snapshot_samples=st.n_snapshot,
                        n_segments=len(st.segments()),
                        wal_bytes=st.wal_bytes(),
                        snapshot_bytes=snap.stat().st_size if snap.exists() else 0,
                    )
                )
            return out

    # ------------------------------------------------------------------ #
    # snapshot / compaction
    # ------------------------------------------------------------------ #

    def snapshot(self, machine_id: str | None = None) -> int:
        """Write snapshot(s) covering everything stored; returns count.

        After a snapshot, recovery replays only records appended later.
        Segments are left in place (see :meth:`compact` to drop them).
        """
        with self._lock:
            self._check_open()
            ids = [machine_id] if machine_id is not None else sorted(self._machines)
            for mid in ids:
                self._snapshot_machine(self._state(mid))
            return len(ids)

    def compact(self, machine_id: str | None = None) -> CompactionReport:
        """Fold segments into snapshots and delete them.

        Bounds recovery to one NPZ read per machine (plus whatever is
        appended afterwards).
        """
        with self._lock:
            self._check_open()
            ids = [machine_id] if machine_id is not None else sorted(self._machines)
            segments_removed = 0
            bytes_reclaimed = 0
            for mid in ids:
                st = self._state(mid)
                self._snapshot_machine(st)
                if st.writer is not None:
                    st.writer.close()
                    st.writer = None
                for seg in st.segments():
                    bytes_reclaimed += seg.stat().st_size
                    seg.unlink()
                    segments_removed += 1
                _fsync_dir(st.dirpath)
                st.sealed_bytes = 0
                st.seg_index += 1  # fresh segment, monotonic name
                instrument("store_compactions_total").inc()
                instrument("store_segments_per_machine").observe(1.0)
            return CompactionReport(
                machines=len(ids),
                segments_removed=segments_removed,
                bytes_reclaimed=bytes_reclaimed,
            )

    def _snapshot_machine(self, st: _MachineState) -> None:
        # save_trace_npz forces a .npz suffix; write to a tmp name and
        # publish with an atomic rename so a crash never leaves a partial
        # snapshot where recovery would read it.
        written = save_trace_npz(st.trace(), st.dirpath / ("tmp-" + _SNAPSHOT))
        with open(written, "rb") as fh:
            os.fsync(fh.fileno())
        os.replace(written, st.dirpath / _SNAPSHOT)
        _fsync_dir(st.dirpath)
        st.n_snapshot = st.n_total

    def _compact_loop(self) -> None:
        interval = self.config.auto_compact_interval_s or 1.0
        while not self._compactor_stop.wait(interval):
            try:
                with self._lock:
                    if self._closed:
                        return
                    due = [
                        mid
                        for mid, st in self._machines.items()
                        if st.wal_bytes() >= self.config.compact_min_wal_bytes
                    ]
                for mid in due:
                    self.compact(mid)
            except Exception as exc:  # keep the daemon alive; surface the event
                get_event_log().emit(
                    "store_compaction_failed",
                    severity="error",
                    error=f"{type(exc).__name__}: {exc}",
                )

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    def recover(self) -> RecoveryReport:
        """Re-run recovery from disk, discarding in-memory state."""
        with self._lock:
            self._check_open()
            for st in self._machines.values():
                if st.writer is not None:
                    st.writer.close()
            self._machines.clear()
            self.last_recovery = self._recover_locked()
            return self.last_recovery

    def _recover_locked(self) -> RecoveryReport:
        t0 = time.perf_counter()
        manifest = self._read_manifest()
        records = samples = snap_samples = truncated = 0
        for mid in sorted(manifest["machines"]):
            dirpath = self.root / _MACHINES_DIR / manifest["machines"][mid]
            meta = json.loads((dirpath / _META).read_text())
            st = _MachineState(
                machine_id=mid,
                dirpath=dirpath,
                start_time=float(meta["start_time"]),
                sample_period=float(meta["sample_period"]),
            )
            # A crash between snapshot write and rename leaves a tmp file;
            # it was never authoritative, so drop it.
            (dirpath / ("tmp-" + _SNAPSHOT)).unlink(missing_ok=True)
            snap_path = dirpath / _SNAPSHOT
            if snap_path.exists():
                snap = load_trace_npz(snap_path)
                st.add_chunk(snap.load, snap.free_mem_mb, snap.up)
                st.n_snapshot = st.n_total
                snap_samples += st.n_total
            segments = st.segments()
            for seg in segments:
                rec = recover_segment(seg)
                truncated += rec.truncated_bytes
                for payload in rec.payloads:
                    seq, load, mem, up = _decode_batch(payload)
                    if seq > st.n_total:
                        raise StoreError(
                            f"gap in log of {mid!r}: record starts at sample "
                            f"{seq}, only {st.n_total} recovered so far"
                        )
                    skip = st.n_total - seq
                    if skip >= load.shape[0]:
                        continue  # snapshot (or an earlier record) covers it
                    st.add_chunk(load[skip:], mem[skip:], up[skip:])
                    records += 1
                    samples += int(load.shape[0]) - skip
            if segments:
                st.seg_index = int(segments[-1].stem.split("-")[1])
                st.sealed_bytes = sum(s.stat().st_size for s in segments[:-1])
            instrument("store_segments_per_machine").observe(float(max(1, len(segments))))
            self._machines[mid] = st
        duration = time.perf_counter() - t0
        instrument("store_recovery_seconds").observe(duration)
        report = RecoveryReport(
            machines=len(self._machines),
            records_replayed=records,
            samples_replayed=samples,
            samples_from_snapshots=snap_samples,
            truncated_bytes=truncated,
            duration_s=duration,
        )
        if truncated:
            get_event_log().emit(
                "store_torn_tail_truncated",
                severity="warning",
                truncated_bytes=truncated,
            )
        return report

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _read_manifest(self) -> dict:
        manifest = json.loads((self.root / _MANIFEST).read_text())
        if manifest.get("format_version") != STORE_FORMAT_VERSION:
            raise StoreError(
                f"unsupported store format version {manifest.get('format_version')}"
            )
        return manifest

    def _create_machine(
        self, machine_id: str, start_time: float, sample_period: float
    ) -> _MachineState:
        if sample_period <= 0:
            raise StoreError(f"sample_period must be positive, got {sample_period}")
        dirname = _safe_dirname(machine_id)
        dirpath = self.root / _MACHINES_DIR / dirname
        dirpath.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(
            dirpath / _META,
            {
                "machine_id": machine_id,
                "start_time": float(start_time),
                "sample_period": float(sample_period),
            },
        )
        manifest = self._read_manifest()
        if manifest["machines"].get(machine_id) != dirname:
            manifest["machines"][machine_id] = dirname
            _write_json_atomic(self.root / _MANIFEST, manifest)
        st = _MachineState(machine_id, dirpath, float(start_time), float(sample_period))
        st.seg_index = 0
        self._machines[machine_id] = st
        return st

    def _writer(self, st: _MachineState) -> SegmentWriter:
        if st.writer is None:
            if st.seg_index == 0:
                st.seg_index = 1
            st.writer = SegmentWriter(
                st.dirpath / f"seg-{st.seg_index:08d}.wal", fsync=self._fsync
            )
        return st.writer

    def _roll_segment(self, st: _MachineState) -> None:
        if st.writer is not None:
            st.sealed_bytes += st.writer.size
            st.writer.close()
            st.writer = None
        st.seg_index += 1
