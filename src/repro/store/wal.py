"""Append-only segment files: length-prefixed, CRC-framed records.

This module is the byte-level half of the durable trace store.  A
*segment* is one append-only file holding a sequence of records::

    segment  := header record*
    header   := magic "RTSG" | u32 format_version          (8 bytes)
    record   := u32 payload_length | u32 crc32(payload) | payload

Everything is little-endian.  The framing gives the two properties a
write-ahead log needs and nothing more:

* **torn tails are detectable** — a crash mid-append leaves a record
  whose length prefix overruns the file or whose CRC does not match;
  :func:`recover_segment` finds the last valid record boundary and
  truncates the file there, so the segment is append-ready again;
* **acknowledged records are recoverable** — a record followed by an
  ``fsync`` (see :class:`FsyncPolicy`) survives a process kill or OS
  crash; replaying the segment returns exactly the payload bytes that
  were appended.

Payloads are opaque bytes here; the record schema (sample batches) is
owned by :mod:`repro.store.store`.  No third-party dependencies: the
CRC is :func:`zlib.crc32`, the framing is :mod:`struct`.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.obs.instruments import instrument
from repro.obs.tracing import start_span

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "HEADER_SIZE",
    "FsyncPolicy",
    "SegmentCorruption",
    "SegmentWriter",
    "RecoveredSegment",
    "iter_records",
    "recover_segment",
]

SEGMENT_MAGIC = b"RTSG"
SEGMENT_VERSION = 1

_HEADER = struct.Struct("<4sI")  # magic, format version
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

HEADER_SIZE = _HEADER.size

#: Upper bound on one record payload; a length prefix beyond this is
#: treated as corruption rather than honored (it would otherwise make a
#: flipped bit allocate gigabytes during recovery).
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024


class SegmentCorruption(ValueError):
    """A segment whose *prefix* (header) is not a valid segment."""


@dataclass(frozen=True)
class FsyncPolicy:
    """When appends are forced to stable storage.

    ``always``
        every append ends with ``fsync`` — an acknowledged append is
        durable (the policy the durability tests assert against);
    ``interval``
        ``fsync`` at most once per ``interval_s`` seconds — bounded data
        loss (everything since the last sync) for much higher ingest
        throughput;
    ``never``
        leave flushing to the OS page cache — fastest, survives process
        crashes (the data is in kernel buffers) but not power loss.
    """

    mode: str = "interval"
    interval_s: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in ("always", "interval", "never"):
            raise ValueError(
                f"fsync mode must be always|interval|never, got {self.mode!r}"
            )
        if self.interval_s <= 0:
            raise ValueError(f"fsync interval_s must be positive, got {self.interval_s}")

    @classmethod
    def parse(cls, spec: "str | FsyncPolicy") -> "FsyncPolicy":
        """Build a policy from ``always`` / ``interval[:SECONDS]`` / ``never``."""
        if isinstance(spec, FsyncPolicy):
            return spec
        mode, _, arg = spec.partition(":")
        if arg:
            return cls(mode=mode, interval_s=float(arg))
        return cls(mode=mode)


class SegmentWriter:
    """Appends framed records to one segment file.

    Opening a fresh path writes (and syncs) the segment header; opening
    an existing segment seeks to its end — callers are expected to have
    run :func:`recover_segment` first so the tail is a valid record
    boundary.
    """

    def __init__(self, path: str | Path, fsync: FsyncPolicy | str = "interval") -> None:
        self.path = Path(path)
        self.fsync = FsyncPolicy.parse(fsync)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "ab")
        self._last_sync = time.monotonic()
        self._unsynced = False
        if fresh:
            self._fh.write(_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION))
            self._fh.flush()
            self._do_fsync()

    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Current segment size in bytes (header + records)."""
        return self._fh.tell()

    def append(self, payload: bytes) -> bool:
        """Write one record; returns True when it is durable (fsynced)."""
        if len(payload) > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"record payload of {len(payload)} bytes exceeds the "
                f"{MAX_PAYLOAD_BYTES}-byte bound"
            )
        self._fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self._fh.flush()
        self._unsynced = True
        if self.fsync.mode == "always":
            self._do_fsync()
            return True
        if (
            self.fsync.mode == "interval"
            and time.monotonic() - self._last_sync >= self.fsync.interval_s
        ):
            self._do_fsync()
            return True
        return False

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        if self._unsynced:
            self._do_fsync()

    def _do_fsync(self) -> None:
        t0 = time.perf_counter()
        with start_span("store.fsync", "store"):
            os.fsync(self._fh.fileno())
        instrument("store_fsync_seconds").observe(time.perf_counter() - t0)
        self._last_sync = time.monotonic()
        self._unsynced = False

    def close(self, *, sync: bool = True) -> None:
        """Flush (and by default sync) the segment and close the handle."""
        if self._fh.closed:
            return
        if sync:
            self.sync()
        self._fh.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# reading / recovery
# ---------------------------------------------------------------------- #


def _read_header(fh) -> None:
    header = fh.read(HEADER_SIZE)
    if len(header) < HEADER_SIZE:
        raise SegmentCorruption("segment shorter than its header")
    magic, version = _HEADER.unpack(header)
    if magic != SEGMENT_MAGIC:
        raise SegmentCorruption(f"bad segment magic {magic!r}")
    if version != SEGMENT_VERSION:
        raise SegmentCorruption(f"unsupported segment version {version}")


def _scan(path: Path) -> tuple[list[bytes], int]:
    """(valid payloads, offset just past the last valid record)."""
    payloads: list[bytes] = []
    with open(path, "rb") as fh:
        _read_header(fh)
        good_end = HEADER_SIZE
        while True:
            frame = fh.read(_FRAME.size)
            if len(frame) < _FRAME.size:
                break  # clean EOF or torn frame header
            length, crc = _FRAME.unpack(frame)
            if length > MAX_PAYLOAD_BYTES:
                break  # corrupt length prefix
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # torn or corrupt payload
            payloads.append(payload)
            good_end = fh.tell()
    return payloads, good_end


def iter_records(path: str | Path) -> Iterator[bytes]:
    """Yield the valid record payloads of one segment, in append order.

    Stops silently at the first torn/corrupt record (use
    :func:`recover_segment` to also truncate it away).  Raises
    :class:`SegmentCorruption` only when the header itself is invalid.
    """
    payloads, _ = _scan(Path(path))
    return iter(payloads)


@dataclass(frozen=True)
class RecoveredSegment:
    """Outcome of recovering one segment file."""

    path: Path
    payloads: list[bytes]
    truncated_bytes: int

    @property
    def n_records(self) -> int:
        return len(self.payloads)


def recover_segment(path: str | Path) -> RecoveredSegment:
    """Scan a segment, truncating any torn tail in place.

    Returns the valid payloads and how many bytes were cut.  A file too
    short to even hold the header (a crash between ``open`` and the
    header write) is reset to empty so a :class:`SegmentWriter` can
    re-initialize it.
    """
    path = Path(path)
    try:
        payloads, good_end = _scan(path)
    except SegmentCorruption:
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(0)
        if size:
            instrument("store_torn_tail_truncations_total").inc()
        return RecoveredSegment(path=path, payloads=[], truncated_bytes=size)
    size = path.stat().st_size
    if size > good_end:
        with open(path, "r+b") as fh:
            fh.truncate(good_end)
        instrument("store_torn_tail_truncations_total").inc()
    return RecoveredSegment(
        path=path, payloads=payloads, truncated_bytes=max(0, size - good_end)
    )
