"""Linear time-series baselines (paper Table 1 / RPS toolkit rebuild).

Models: :class:`~repro.timeseries.models.AutoRegressive` (AR),
:class:`~repro.timeseries.models.BestMean` (BM),
:class:`~repro.timeseries.models.MovingAverage` (MA),
:class:`~repro.timeseries.models.Arma` (ARMA) and
:class:`~repro.timeseries.models.Last` (LAST), plus the
:class:`~repro.timeseries.tr_adapter.TimeSeriesTRPredictor` that turns
any of them into a temporal-reliability predictor for the Figure-7
comparison.
"""

from repro.timeseries.base import TimeSeriesModel, clip_loads
from repro.timeseries.fitting import autocovariance, hannan_rissanen, yule_walker
from repro.timeseries.models import (
    Arima,
    Arma,
    AutoRegressive,
    BestMean,
    GlobalMean,
    Last,
    MovingAverage,
    WindowedMedian,
    rps_extended_suite,
    rps_model_suite,
)
from repro.timeseries.tr_adapter import TimeSeriesTR, TimeSeriesTRPredictor

__all__ = [
    "Arima",
    "Arma",
    "AutoRegressive",
    "BestMean",
    "GlobalMean",
    "Last",
    "MovingAverage",
    "TimeSeriesModel",
    "WindowedMedian",
    "TimeSeriesTR",
    "TimeSeriesTRPredictor",
    "autocovariance",
    "clip_loads",
    "hannan_rissanen",
    "rps_extended_suite",
    "rps_model_suite",
    "yule_walker",
]
