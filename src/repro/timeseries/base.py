"""Base interface of the linear time-series models (paper Table 1).

The paper compares its SMP predictor against the linear time-series
models of the RPS toolkit [8]: ``AR(p)``, ``BM(p)``, ``MA(p)``,
``ARMA(p, q)`` and ``LAST``.  This package reimplements those model
classes over NumPy with the interface the comparison protocol needs:
fit on one window of load samples, then produce a multi-step-ahead
forecast for the next window.

All models operate on a one-dimensional series of host-CPU-load samples
in ``[0, 1]``; forecasts are clipped back into that range.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["TimeSeriesModel", "clip_loads"]


def clip_loads(values: np.ndarray) -> np.ndarray:
    """Clip forecasted loads into the physical ``[0, 1]`` range."""
    return np.clip(values, 0.0, 1.0)


class TimeSeriesModel(abc.ABC):
    """A univariate time-series predictor: fit once, forecast ahead.

    Subclasses set :attr:`name` (used in result tables) and implement
    :meth:`fit` and :meth:`_forecast`.  ``forecast`` wraps ``_forecast``
    with input validation and load clipping.
    """

    #: Human-readable model name, e.g. ``"AR(8)"``.
    name: str = "base"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, series: np.ndarray) -> "TimeSeriesModel":
        """Fit the model to a 1-D series; returns ``self`` for chaining."""

    @abc.abstractmethod
    def _forecast(self, steps: int) -> np.ndarray:
        """Produce ``steps`` multi-step-ahead forecasts (unclipped)."""

    def forecast(self, steps: int) -> np.ndarray:
        """Forecast ``steps`` values past the end of the fitted series."""
        if not self._fitted:
            raise RuntimeError(f"{self.name}: forecast() called before fit()")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        out = np.asarray(self._forecast(steps), dtype=np.float64)
        if out.shape != (steps,):
            raise AssertionError(
                f"{self.name}: _forecast returned shape {out.shape}, expected ({steps},)"
            )
        return clip_loads(out)

    @staticmethod
    def _validate_series(series: np.ndarray) -> np.ndarray:
        series = np.asarray(series, dtype=np.float64)
        if series.ndim != 1:
            raise ValueError(f"series must be 1-D, got shape {series.shape}")
        if series.size < 1:
            raise ValueError("series must be non-empty")
        if not np.all(np.isfinite(series)):
            raise ValueError("series must be finite")
        return series

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
