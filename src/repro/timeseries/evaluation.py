"""Forecast-quality evaluation for the time-series models.

The linear models come from the host-load-prediction literature [9],
where they are scored on *load* forecast error, not on TR.  This module
provides that native evaluation — per-horizon mean absolute error over
rolling forecast origins — so the library can show both sides of the
paper's Fig.-7 story: the linear models are genuinely decent short-term
*load* forecasters (their home game) and still lose the *availability*
game, because availability hinges on threshold crossings the mean-
reverting forecasts never reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.timeseries.base import TimeSeriesModel

__all__ = ["HorizonErrors", "rolling_forecast_errors", "compare_models"]


@dataclass(frozen=True)
class HorizonErrors:
    """Forecast errors of one model, resolved by look-ahead distance.

    ``mae[k]``/``rmse[k]`` aggregate the (k+1)-step-ahead errors over
    all forecast origins; ``n_origins`` counts them.
    """

    model_name: str
    mae: np.ndarray
    rmse: np.ndarray
    n_origins: int

    @property
    def horizon(self) -> int:
        """Number of look-ahead steps evaluated."""
        return int(self.mae.shape[0])


def rolling_forecast_errors(
    model_factory: Callable[[], TimeSeriesModel],
    series: np.ndarray,
    *,
    fit_length: int,
    horizon: int,
    stride: int | None = None,
) -> HorizonErrors:
    """Rolling-origin evaluation of one model on one series.

    At each origin the model fits the previous ``fit_length`` samples
    and forecasts ``horizon`` steps; errors are collected against the
    actual continuation.  ``stride`` spaces the origins (default: one
    horizon, giving non-overlapping evaluation windows).
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    if fit_length < 2 or horizon < 1:
        raise ValueError("need fit_length >= 2 and horizon >= 1")
    if series.size < fit_length + horizon:
        raise ValueError(
            f"series of {series.size} too short for fit {fit_length} + horizon {horizon}"
        )
    stride = horizon if stride is None else stride
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")

    abs_errs = np.zeros(horizon)
    sq_errs = np.zeros(horizon)
    n = 0
    name = model_factory().name
    for origin in range(fit_length, series.size - horizon + 1, stride):
        history = series[origin - fit_length : origin]
        actual = series[origin : origin + horizon]
        forecast = model_factory().fit(history).forecast(horizon)
        err = forecast - actual
        abs_errs += np.abs(err)
        sq_errs += err**2
        n += 1
    if n == 0:
        raise AssertionError("no forecast origins evaluated")  # guarded above
    return HorizonErrors(
        model_name=name,
        mae=abs_errs / n,
        rmse=np.sqrt(sq_errs / n),
        n_origins=n,
    )


def compare_models(
    factories: Sequence[Callable[[], TimeSeriesModel]],
    series: np.ndarray,
    *,
    fit_length: int,
    horizon: int,
    stride: int | None = None,
) -> list[HorizonErrors]:
    """Evaluate several models on the same rolling origins."""
    return [
        rolling_forecast_errors(
            f, series, fit_length=fit_length, horizon=horizon, stride=stride
        )
        for f in factories
    ]
