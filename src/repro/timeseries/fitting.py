"""Parameter-estimation routines shared by the linear models.

* :func:`autocovariance` — biased sample autocovariances (the standard
  choice for Yule-Walker, guaranteeing a positive-semidefinite Toeplitz
  system and hence a stationary AR fit).
* :func:`yule_walker` — AR(p) coefficients via the Levinson-style
  Toeplitz solve from SciPy.
* :func:`hannan_rissanen` — the classic two-stage ARMA(p, q) estimator:
  a long AR fit provides innovation estimates, then ordinary least
  squares regresses the series on its own lags and the lagged
  innovations.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_toeplitz

__all__ = ["autocovariance", "yule_walker", "hannan_rissanen", "ar_residuals"]

#: Series with variance below this are treated as constant.
_VAR_EPS = 1e-12


def autocovariance(series: np.ndarray, maxlag: int) -> np.ndarray:
    """Biased sample autocovariances ``gamma_0 .. gamma_maxlag``.

    ``gamma_k = (1/n) sum_t (x_t - mean)(x_{t+k} - mean)``.
    """
    series = np.asarray(series, dtype=np.float64)
    n = series.size
    if maxlag >= n:
        raise ValueError(f"maxlag {maxlag} must be < series length {n}")
    x = series - series.mean()
    out = np.empty(maxlag + 1)
    for k in range(maxlag + 1):
        out[k] = np.dot(x[: n - k], x[k:]) / n
    return out


def yule_walker(series: np.ndarray, order: int) -> tuple[np.ndarray, float]:
    """Fit AR(``order``) by solving the Yule-Walker equations.

    Returns ``(phi, sigma2)``: the AR coefficients (on the demeaned
    series) and the innovation variance.  A (near-)constant series gets
    all-zero coefficients — its best predictor is its mean.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    series = np.asarray(series, dtype=np.float64)
    if series.size <= order:
        raise ValueError(f"series of length {series.size} too short for AR({order})")
    gamma = autocovariance(series, order)
    if gamma[0] < _VAR_EPS:
        return np.zeros(order), 0.0
    phi = solve_toeplitz(gamma[:-1], gamma[1:])
    sigma2 = float(gamma[0] - np.dot(phi, gamma[1:]))
    return phi, max(sigma2, 0.0)


def ar_residuals(series: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """One-step-ahead residuals of an AR fit (demeaned internally).

    The first ``len(phi)`` residuals, which lack a full lag window, are
    set to zero — the Hannan-Rissanen convention.
    """
    series = np.asarray(series, dtype=np.float64)
    x = series - series.mean()
    p = len(phi)
    resid = np.zeros(series.size)
    if p == 0:
        return x.copy()
    for t in range(p, series.size):
        stop = t - p - 1
        resid[t] = x[t] - np.dot(phi, x[t - 1 : stop if stop >= 0 else None : -1])
    return resid


def hannan_rissanen(
    series: np.ndarray, p: int, q: int, long_order: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Two-stage Hannan-Rissanen estimation of ARMA(p, q).

    Returns ``(phi, theta)`` on the demeaned series.  ``long_order``
    controls the stage-1 AR length (default ``p + q + 5``, clipped to a
    third of the series).  Falls back to pure Yule-Walker AR terms (and
    zero MA terms) when the series is too short for the regression.
    """
    if p < 0 or q < 0 or p + q == 0:
        raise ValueError(f"need p >= 0, q >= 0, p + q >= 1; got p={p}, q={q}")
    series = np.asarray(series, dtype=np.float64)
    n = series.size
    x = series - series.mean()
    if np.var(x) < _VAR_EPS:
        return np.zeros(p), np.zeros(q)

    if long_order is None:
        long_order = p + q + 5
    long_order = max(1, min(long_order, n // 3))
    if n <= long_order + 1:
        return np.zeros(p), np.zeros(q)
    phi_long, _ = yule_walker(series, long_order)
    eps = ar_residuals(series, phi_long)

    m = max(p, q, long_order)
    rows = n - m
    if rows <= p + q:
        phi, _ = yule_walker(series, p) if p else (np.zeros(0), 0.0)
        return phi, np.zeros(q)
    design = np.empty((rows, p + q))
    for i in range(p):
        design[:, i] = x[m - 1 - i : n - 1 - i]
    for j in range(q):
        design[:, p + j] = eps[m - 1 - j : n - 1 - j]
    target = x[m:]
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    return coeffs[:p].copy(), coeffs[p:].copy()
