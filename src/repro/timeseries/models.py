"""The five linear time-series models of paper Table 1.

========  =====================================================
Model     Description (from the paper's Table 1)
========  =====================================================
AR(p)     autoregressive model with ``p`` coefficients
BM(p)     mean over the previous ``N`` values (``N <= p``)
MA(q)     moving-average model with ``q`` coefficients
ARMA(p,q) autoregressive moving average, ``p + q`` coefficients
LAST      last measured value
========  =====================================================

The paper used the RPS defaults with ``p = q = 8``;
:func:`rps_model_suite` builds exactly that roster.

Multi-step-ahead forecasting follows the standard recursion: future
innovations are replaced by their zero mean, so AR/ARMA forecasts decay
toward the series mean while MA forecasts reach it after ``q`` steps —
the very property that makes linear models "more adept at short-term
prediction" (paper Section 7.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.base import TimeSeriesModel
from repro.timeseries.fitting import ar_residuals, hannan_rissanen, yule_walker

__all__ = [
    "Arima",
    "Arma",
    "AutoRegressive",
    "BestMean",
    "GlobalMean",
    "Last",
    "MovingAverage",
    "WindowedMedian",
    "rps_extended_suite",
    "rps_model_suite",
]


class Last(TimeSeriesModel):
    """LAST: every future value is predicted to equal the last observation."""

    name = "LAST"

    def fit(self, series: np.ndarray) -> "Last":
        series = self._validate_series(series)
        self._last = float(series[-1])
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        return np.full(steps, self._last)


class BestMean(TimeSeriesModel):
    """BM(p): the mean of (up to) the previous ``p`` observations.

    RPS's BestMean additionally searches the window length ``N <= p``
    minimizing one-step error on the training series; we implement that
    search so the model matches its namesake.
    """

    name = "BM"

    def __init__(self, p: int = 8) -> None:
        super().__init__()
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        self.p = p
        self.name = f"BM({p})"

    def fit(self, series: np.ndarray) -> "BestMean":
        series = self._validate_series(series)
        best_n, best_err = 1, np.inf
        for n in range(1, min(self.p, series.size) + 1):
            if series.size <= n:
                break
            # One-step-ahead error of an n-window running mean.
            csum = np.cumsum(np.concatenate([[0.0], series]))
            means = (csum[n:-1] - csum[:-n:][: series.size - n]) / n
            err = float(np.mean((series[n:] - means) ** 2))
            if err < best_err:
                best_n, best_err = n, err
        self._mean = float(series[-best_n:].mean())
        self.window = best_n
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        return np.full(steps, self._mean)


class AutoRegressive(TimeSeriesModel):
    """AR(p) fit by Yule-Walker; multi-step forecasts via the recursion."""

    name = "AR"

    def __init__(self, p: int = 8) -> None:
        super().__init__()
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        self.p = p
        self.name = f"AR({p})"

    def fit(self, series: np.ndarray) -> "AutoRegressive":
        series = self._validate_series(series)
        p = min(self.p, max(1, series.size - 1))
        if series.size <= p:
            # Degenerate short series: fall back to the mean.
            self.phi = np.zeros(1)
            self._mean = float(series.mean())
            self._tail = np.zeros(1)
        else:
            self.phi, _ = yule_walker(series, p)
            self._mean = float(series.mean())
            self._tail = (series - self._mean)[-p:]
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        p = len(self.phi)
        buf = np.concatenate([self._tail, np.zeros(steps)])
        for t in range(steps):
            buf[p + t] = np.dot(self.phi, buf[p + t - 1 : t - 1 if t >= 1 else None : -1])
        return buf[p:] + self._mean


class MovingAverage(TimeSeriesModel):
    """MA(q): innovations regression via Hannan-Rissanen with p = 0.

    Forecasts use the estimated recent innovations; beyond ``q`` steps
    the forecast is exactly the series mean.
    """

    name = "MA"

    def __init__(self, q: int = 8) -> None:
        super().__init__()
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q
        self.name = f"MA({q})"

    def fit(self, series: np.ndarray) -> "MovingAverage":
        series = self._validate_series(series)
        self._mean = float(series.mean())
        q = min(self.q, max(1, series.size // 4))
        _, self.theta = hannan_rissanen(series, 0, q)
        long_order = max(1, min(q + 5, series.size // 3))
        if series.size > long_order + 1:
            phi_long, _ = yule_walker(series, long_order)
            eps = ar_residuals(series, phi_long)
        else:
            eps = series - self._mean
        self._eps_tail = eps[-len(self.theta) :] if len(self.theta) else np.zeros(0)
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        q = len(self.theta)
        eps = np.concatenate([self._eps_tail, np.zeros(steps)])
        out = np.empty(steps)
        for t in range(steps):
            # Future innovations are zero; only the observed tail matters.
            out[t] = self._mean + np.dot(self.theta, eps[q + t - 1 : t - 1 if t >= 1 else None : -1])
        return out


class Arma(TimeSeriesModel):
    """ARMA(p, q) via Hannan-Rissanen; the strongest RPS linear model."""

    name = "ARMA"

    def __init__(self, p: int = 8, q: int = 8) -> None:
        super().__init__()
        if p < 1 or q < 1:
            raise ValueError(f"p and q must be >= 1, got p={p}, q={q}")
        self.p = p
        self.q = q
        self.name = f"ARMA({p},{q})"

    def fit(self, series: np.ndarray) -> "Arma":
        series = self._validate_series(series)
        self._mean = float(series.mean())
        p = min(self.p, max(1, series.size // 4))
        q = min(self.q, max(1, series.size // 4))
        self.phi, self.theta = hannan_rissanen(series, p, q)
        long_order = max(1, min(p + q + 5, series.size // 3))
        if series.size > long_order + 1:
            phi_long, _ = yule_walker(series, long_order)
            eps = ar_residuals(series, phi_long)
        else:
            eps = np.zeros(series.size)
        x = series - self._mean
        self._x_tail = x[-max(1, len(self.phi)) :]
        self._eps_tail = eps[-max(1, len(self.theta)) :]
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        p, q = len(self.phi), len(self.theta)
        xbuf = np.concatenate([self._x_tail, np.zeros(steps)])
        ebuf = np.concatenate([self._eps_tail, np.zeros(steps)])
        np_off = len(self._x_tail)
        ne_off = len(self._eps_tail)
        out = np.empty(steps)
        for t in range(steps):
            acc = 0.0
            if p:
                stop = np_off + t - 1 - p
                acc += np.dot(self.phi, xbuf[np_off + t - 1 : stop if stop >= 0 else None : -1])
            if q:
                stop = ne_off + t - 1 - q
                acc += np.dot(self.theta, ebuf[ne_off + t - 1 : stop if stop >= 0 else None : -1])
            xbuf[np_off + t] = acc
            out[t] = acc + self._mean
        return out


def rps_model_suite(p: int = 8, q: int = 8) -> list[TimeSeriesModel]:
    """The paper's Table-1 roster with RPS's default parameters."""
    return [
        AutoRegressive(p),
        BestMean(p),
        MovingAverage(p),
        Arma(p, q),
        Last(),
    ]


class GlobalMean(TimeSeriesModel):
    """MEAN: every future value is the mean of the whole fitted series.

    Part of the wider RPS roster (beyond the paper's Table 1); the
    long-run-average predictor of Mutka-style capacity studies [19].
    """

    name = "MEAN"

    def fit(self, series: np.ndarray) -> "GlobalMean":
        series = self._validate_series(series)
        self._mean = float(series.mean())
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        return np.full(steps, self._mean)


class WindowedMedian(TimeSeriesModel):
    """MEDIAN(p): the median of the previous ``p`` observations.

    RPS's outlier-robust cousin of BM; a single load spike in the
    fitting window cannot move it.
    """

    name = "MEDIAN"

    def __init__(self, p: int = 8) -> None:
        super().__init__()
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        self.p = p
        self.name = f"MEDIAN({p})"

    def fit(self, series: np.ndarray) -> "WindowedMedian":
        series = self._validate_series(series)
        self._median = float(np.median(series[-self.p :]))
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        return np.full(steps, self._median)


class Arima(TimeSeriesModel):
    """ARIMA(p, d, q): ARMA on the d-times-differenced series.

    Completes the RPS linear roster.  Fitting differences the series
    ``d`` times, fits ARMA(p, q) by Hannan-Rissanen, forecasts the
    differenced process and integrates the forecasts back.  With d = 0
    this is exactly :class:`Arma`; d = 1 tracks load ramps — and badly
    over-extrapolates them on long horizons, which is instructive next
    to the paper's Fig. 7 result.
    """

    name = "ARIMA"

    def __init__(self, p: int = 8, d: int = 1, q: int = 8) -> None:
        super().__init__()
        if p < 1 or q < 1:
            raise ValueError(f"p and q must be >= 1, got p={p}, q={q}")
        if d < 0 or d > 2:
            raise ValueError(f"d must be 0, 1 or 2, got {d}")
        self.p = p
        self.d = d
        self.q = q
        self.name = f"ARIMA({p},{d},{q})"

    def fit(self, series: np.ndarray) -> "Arima":
        series = self._validate_series(series)
        work = series
        self._tails: list[float] = []
        for _ in range(self.d):
            if work.size < 2:
                break
            self._tails.append(float(work[-1]))
            work = np.diff(work)
        if work.size < 8:
            # Too short after differencing: behave like LAST.
            self._arma = None
            self._last = float(series[-1])
        else:
            self._arma = Arma(self.p, self.q).fit(work)
        self._fitted = True
        return self

    def _forecast(self, steps: int) -> np.ndarray:
        if self._arma is None:
            return np.full(steps, self._last)
        diffed = self._arma._forecast(steps)
        # Integrate back d times: cumulative sums anchored at the tails.
        out = np.asarray(diffed, dtype=float)
        for tail in reversed(self._tails):
            out = tail + np.cumsum(out)
        return out


def rps_extended_suite(p: int = 8, q: int = 8) -> list[TimeSeriesModel]:
    """The Table-1 roster plus MEAN, MEDIAN(p) and ARIMA(p,1,q)."""
    return rps_model_suite(p, q) + [GlobalMean(), WindowedMedian(p), Arima(p, 1, q)]
