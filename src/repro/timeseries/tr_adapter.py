"""Temporal reliability from time-series load forecasts (paper Section 6.2).

The paper's comparison protocol: "we used time series models to predict
the state transitions in a future time window based on the samples from
the previous time window of the same length.  The prediction accuracy is
determined by the difference of the observed temporal reliability on the
predicted and the measured state transitions."

Concretely, for every evaluation day the model fits the load samples of
the window immediately preceding the target window and forecasts the
load trajectory across the target window (multi-step-ahead); forecasted
loads are classified into CPU states and the day's predicted outcome is
"failure-free or not".  The predicted TR over the evaluation days is the
fraction of days predicted failure-free, compared against the same
empirical TR the SMP is judged by.

Time-series models see only the CPU-load signal — memory exhaustion (S4)
and revocation (S5) are not linear functions of recent load — which is
part of why the paper finds them ill-suited to FGCS availability.  Days
whose preceding window contains down time still participate: the monitor
would have recorded zero load there, and that is what the model sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core import windows as win
from repro.core.classifier import StateClassifier
from repro.core.estimator import coarsen_states
from repro.core.segments import failure_free
from repro.core.states import State
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType
from repro.timeseries.base import TimeSeriesModel
from repro.traces.trace import MachineTrace

__all__ = ["TimeSeriesTR", "TimeSeriesTRPredictor"]


@dataclass(frozen=True)
class TimeSeriesTR:
    """Predicted TR of a model over the evaluation days, with support."""

    value: float
    n_days: int
    model_name: str


class TimeSeriesTRPredictor:
    """Evaluate a time-series model as a temporal-reliability predictor."""

    def __init__(
        self,
        model_factory: Callable[[], TimeSeriesModel],
        classifier: StateClassifier | None = None,
        *,
        step_multiple: int = 1,
    ) -> None:
        if step_multiple < 1:
            raise ValueError(f"step_multiple must be >= 1, got {step_multiple}")
        self.model_factory = model_factory
        self.classifier = classifier or StateClassifier()
        self.step_multiple = step_multiple

    # ------------------------------------------------------------------ #

    def _series(self, trace: MachineTrace, window: AbsoluteWindow) -> np.ndarray:
        view = trace.window_view(window)
        load = np.where(view.up, view.load, 0.0)
        mult = self.step_multiple
        if mult > 1:
            n_full = (load.shape[0] // mult) * mult
            load = load[:n_full].reshape(-1, mult).mean(axis=1)
        return load

    def predict_day(self, trace: MachineTrace, target: AbsoluteWindow) -> bool:
        """Predict whether one concrete window stays failure-free.

        Fits the model on the preceding same-length window's loads and
        classifies the forecasted trajectory.  The transient-spike rule
        applies to the forecast exactly as it would to real samples.
        """
        previous = AbsoluteWindow(target.start - target.duration, target.duration)
        if not trace.covers(previous) or not trace.covers(target):
            raise IndexError("target or preceding window outside the trace")
        history = self._series(trace, previous)
        model = self.model_factory().fit(history)
        step = trace.sample_period * self.step_multiple
        steps = win.n_steps(target.duration, step)
        forecast = model.forecast(steps)
        states = self.classifier.classify_arrays(
            forecast,
            np.full(steps, np.inf),
            np.ones(steps, bool),
            step,
        )
        return failure_free(states)

    def predicted_tr(
        self,
        trace: MachineTrace,
        clock: ClockWindow,
        dtype: DayType,
        *,
        condition_on_operational_start: bool = True,
    ) -> TimeSeriesTR:
        """Predicted TR over the trace's eligible days of type ``dtype``.

        Day eligibility matches :func:`repro.core.empirical.empirical_tr`
        so both sides of the comparison use the same day population: the
        target window must lie in the trace (plus its preceding window
        here) and, when conditioning, the day must start operational.
        """
        name = self.model_factory().name
        outcomes: list[bool] = []
        for day in trace.days(dtype):
            target = clock.on_day(day)
            previous = AbsoluteWindow(target.start - target.duration, target.duration)
            if not (trace.covers(target) and trace.covers(previous)):
                continue
            if condition_on_operational_start:
                view = trace.window_view(target)
                states = self.classifier.classify_window(view)
                init = State(int(coarsen_states(states, self.step_multiple)[0]))
                if init.is_failure:
                    continue
            outcomes.append(self.predict_day(trace, target))
        if not outcomes:
            return TimeSeriesTR(value=float("nan"), n_days=0, model_name=name)
        return TimeSeriesTR(
            value=float(np.mean(outcomes)), n_days=len(outcomes), model_name=name
        )
