"""Trace substrate: containers, synthesis, noise injection and I/O.

The paper's evaluation data is a 3-month monitoring trace of a Purdue
student lab; this package provides the equivalent substrate — trace
containers (:mod:`~repro.traces.trace`), a calibrated synthetic workload
generator (:mod:`~repro.traces.synthesis`), the Section-7.3 noise
injector (:mod:`~repro.traces.noise`), persistence
(:mod:`~repro.traces.io`) and trace statistics
(:mod:`~repro.traces.stats`).
"""

from repro.traces.events import ResourceSample, StateVisit, UnavailabilityEvent
from repro.traces.trace import MachineTrace, TraceSet, TraceWindow

__all__ = [
    "MachineTrace",
    "ResourceSample",
    "StateVisit",
    "TraceSet",
    "TraceWindow",
    "UnavailabilityEvent",
]
