"""Record types shared across the trace substrate.

The monitoring data the paper collected (Section 6.1) contains, per
machine, a periodic record of host resource usage plus, derived from it,
"the start and end time of each unavailability occurrence, the
corresponding failure state (S3, S4, or S5), and the available CPU and
memory for guest jobs".  These records are the exchange currency between
the trace substrate, the classifier and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.states import State

__all__ = ["ResourceSample", "UnavailabilityEvent", "StateVisit"]


@dataclass(frozen=True)
class ResourceSample:
    """One periodic observation of a host machine.

    Attributes
    ----------
    time:
        Absolute simulation time of the measurement (seconds).
    cpu_load:
        Total CPU usage of all *host* processes, in ``[0, 1]`` (the paper's
        ``L_H``).  Guest processes are excluded by construction: the
        monitor knows the guest pid (Section 5.1).
    free_mem_mb:
        Free physical memory available for a guest working set, in MB.
    up:
        Whether the machine (and hence the monitor) was running.  ``False``
        samples correspond to heartbeat gaps, i.e. URR periods.
    """

    time: float
    cpu_load: float
    free_mem_mb: float
    up: bool = True


@dataclass(frozen=True)
class UnavailabilityEvent:
    """One contiguous occurrence of resource unavailability.

    Mirrors the per-event record the paper's trace contains: start/end
    times and the failure state responsible.
    """

    start: float
    end: float
    state: State

    def __post_init__(self) -> None:
        if not State(self.state).is_failure:
            raise ValueError(f"unavailability event must carry a failure state, got {self.state}")
        if self.end <= self.start:
            raise ValueError(f"event must have positive duration: [{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        """Length of the unavailability period in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class StateVisit:
    """One maximal run of a single state in a classified state sequence.

    ``start_index``/``length`` are in samples; ``state`` is the visited
    state.  Produced by :func:`repro.core.segments.visits`.
    """

    state: State
    start_index: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"visit length must be positive, got {self.length}")
        if self.start_index < 0:
            raise ValueError(f"visit start_index must be >= 0, got {self.start_index}")

    @property
    def end_index(self) -> int:
        """Exclusive end index of the visit."""
        return self.start_index + self.length
