"""Trace persistence: compressed NumPy archives and portable CSV.

Two formats are supported:

* **NPZ** — the native format: one compressed ``.npz`` per machine with
  the sample arrays plus metadata; fast and lossless.  A testbed saves
  as a directory of per-machine files plus a ``manifest.json``.
* **CSV** — one row per sample (``time,cpu_load,free_mem_mb,up``) with a
  ``# key=value`` comment header; interoperable with external tooling at
  ~20x the size.

Both round-trip exactly (CSV stores full ``repr`` precision).
"""

from __future__ import annotations

import csv
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.traces.trace import MachineTrace, TraceSet

__all__ = [
    "save_trace_npz",
    "load_trace_npz",
    "save_trace_csv",
    "load_trace_csv",
    "save_traceset",
    "load_traceset",
]

_FORMAT_VERSION = 1


def save_trace_npz(trace: MachineTrace, path: str | Path) -> Path:
    """Write one trace as a compressed ``.npz`` archive."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        machine_id=np.str_(trace.machine_id),
        start_time=np.float64(trace.start_time),
        sample_period=np.float64(trace.sample_period),
        load=trace.load,
        free_mem_mb=trace.free_mem_mb,
        up=trace.up,
    )
    return path


def load_trace_npz(path: str | Path) -> MachineTrace:
    """Read one trace from a ``.npz`` archive written by :func:`save_trace_npz`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        return MachineTrace(
            machine_id=str(data["machine_id"]),
            start_time=float(data["start_time"]),
            sample_period=float(data["sample_period"]),
            load=data["load"],
            free_mem_mb=data["free_mem_mb"],
            up=data["up"],
        )


def save_trace_csv(trace: MachineTrace, path: str | Path) -> Path:
    """Write one trace as CSV with a comment metadata header."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        fh.write(f"# machine_id={trace.machine_id}\n")
        fh.write(f"# start_time={trace.start_time!r}\n")
        fh.write(f"# sample_period={trace.sample_period!r}\n")
        writer = csv.writer(fh)
        writer.writerow(["time", "cpu_load", "free_mem_mb", "up"])
        times = trace.times()
        for t, ld, fm, u in zip(times, trace.load, trace.free_mem_mb, trace.up):
            writer.writerow([repr(float(t)), repr(float(ld)), repr(float(fm)), int(u)])
    return path


def load_trace_csv(path: str | Path) -> MachineTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Blank lines (including whitespace-only trailers from hand edits or
    shell appends) are skipped; a malformed row raises ``ValueError``
    naming the 1-based line number in the file, so a broken export is
    fixable without bisecting it.
    """
    path = Path(path)
    meta: dict[str, str] = {}
    loads: list[float] = []
    mems: list[float] = []
    ups: list[bool] = []
    with path.open() as fh:
        n_header = 0
        pos = fh.tell()
        line = fh.readline()
        while line.startswith("#"):
            key, _, value = line[1:].strip().partition("=")
            meta[key.strip()] = value.strip()
            n_header += 1
            pos = fh.tell()
            line = fh.readline()
        fh.seek(pos)
        reader = csv.DictReader(fh)
        for row in reader:
            if all(v in (None, "") or not str(v).strip() for v in row.values()):
                continue  # blank (or whitespace-only) line
            lineno = n_header + reader.line_num
            try:
                loads.append(float(row["cpu_load"]))
                mems.append(float(row["free_mem_mb"]))
                ups.append(bool(int(row["up"])))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace row "
                    f"{dict(row)!r}: {exc}"
                ) from None
    for key in ("machine_id", "start_time", "sample_period"):
        if key not in meta:
            raise ValueError(f"CSV trace {path} is missing the {key} header")
    return MachineTrace(
        machine_id=meta["machine_id"],
        start_time=float(meta["start_time"]),
        sample_period=float(meta["sample_period"]),
        load=np.array(loads),
        free_mem_mb=np.array(mems),
        up=np.array(ups, dtype=bool),
    )


def save_traceset(traces: TraceSet, directory: str | Path) -> Path:
    """Write a testbed: per-machine NPZ files plus ``manifest.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {"format_version": _FORMAT_VERSION, "machines": []}
    for trace in traces:
        fname = f"{trace.machine_id}.npz"
        save_trace_npz(trace, directory / fname)
        manifest["machines"].append({"machine_id": trace.machine_id, "file": fname})
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return directory


def load_traceset(directory: str | Path) -> TraceSet:
    """Read a testbed directory written by :func:`save_traceset`.

    Machines load in sorted ``machine_id`` order regardless of manifest
    order or filesystem enumeration, so every load of the same testbed
    produces the same registration order (and hence the same ranking
    tie-breaks, bench fixtures, ...).  A directory without a
    ``manifest.json`` is loaded by globbing ``*.npz``; files that are
    not trace archives (no ``machine_id`` field, not a zip at all) are
    skipped rather than aborting the load.
    """
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    traces = TraceSet()
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported manifest version {manifest.get('format_version')}"
            )
        entries = sorted(manifest["machines"], key=lambda e: str(e["machine_id"]))
        for entry in entries:
            traces.add(load_trace_npz(directory / entry["file"]))
        return traces
    for path in sorted(directory.glob("*.npz")):
        if not zipfile.is_zipfile(path):
            continue  # misnamed non-archive — leave foreign files alone
        try:
            traces.add(load_trace_npz(path))
        except KeyError:
            continue  # a real .npz, but not a trace (missing fields)
    if len(traces) == 0:
        raise FileNotFoundError(
            f"no manifest.json and no loadable .npz traces in {directory}"
        )
    return traces
