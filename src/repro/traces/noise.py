"""Noise injection for the robustness experiment (paper Section 7.3).

The paper tests robustness by manually inserting occurrences of
unavailability "around 8:00 am (when unavailability is very rare due to
low resource utilization) to a training log of a weekday", with the
holding time of the added failure state "chosen randomly between 60 and
1800 seconds", then measuring how much the prediction changes.

:func:`inject_noise` reproduces that protocol: each noise instance picks
a training day of the requested type and overwrites a random-length
stretch starting near the anchor time with a failure condition —
saturated CPU load for S3, exhausted memory for S4, or a down period for
S5.  The input trace is never mutated; a modified copy is returned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.core.states import State
from repro.core.windows import DayType
from repro.traces.trace import MachineTrace

__all__ = ["NoiseSpec", "inject_noise"]


@dataclass(frozen=True)
class NoiseSpec:
    """Parameters of one noise-injection campaign.

    ``anchor`` is the time-of-day the paper calls "around 8:00am";
    events start within ``anchor_spread`` seconds after it.  Holding
    times are uniform over ``hold_range`` (the paper's 60-1800 s).
    """

    n_events: int
    anchor: float = 8.0 * win.SECONDS_PER_HOUR
    anchor_spread: float = 600.0
    hold_range: tuple[float, float] = (60.0, 1800.0)
    state: State = State.S3
    day_type: DayType = DayType.WEEKDAY

    def __post_init__(self) -> None:
        if self.n_events < 0:
            raise ValueError(f"n_events must be >= 0, got {self.n_events}")
        if not State(self.state).is_failure:
            raise ValueError(f"injected state must be a failure state, got {self.state}")
        lo, hi = self.hold_range
        if not 0.0 < lo <= hi:
            raise ValueError(f"hold_range must satisfy 0 < lo <= hi, got {self.hold_range}")


def inject_noise(
    trace: MachineTrace,
    spec: NoiseSpec,
    rng: np.random.Generator | int = 0,
) -> MachineTrace:
    """Return a copy of ``trace`` with ``spec.n_events`` failures injected.

    Days are drawn (with replacement, like repeated manual insertions)
    from the trace's days of the requested type; an event that would run
    past the trace end is clipped.  Raises when the trace has no eligible
    day.
    """
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(rng)
    days = trace.days(spec.day_type)
    if not days:
        raise ValueError(f"trace has no full {spec.day_type} days to inject into")

    load = trace.load.copy()
    free_mem = trace.free_mem_mb.copy()
    up = trace.up.copy()
    n = trace.n_samples

    # Each injection targets a distinct day while days remain (the paper
    # inserts "one occurrence ... to a training log of a weekday" per
    # instance); only beyond that do days repeat.
    order = list(rng.permutation(days))
    for i in range(spec.n_events):
        if i < len(order):
            day = int(order[i])
        else:
            day = int(rng.choice(days))
        start = (
            win.day_start(day)
            + spec.anchor
            + rng.uniform(0.0, spec.anchor_spread)
        )
        hold = rng.uniform(*spec.hold_range)
        i0 = int((start - trace.start_time) / trace.sample_period)
        i1 = int((start + hold - trace.start_time) / trace.sample_period)
        i0 = max(0, min(n, i0))
        i1 = max(i0 + 1, min(n, i1))
        if spec.state is State.S3:
            load[i0:i1] = 0.99
        elif spec.state is State.S4:
            free_mem[i0:i1] = 0.0
        else:  # S5
            up[i0:i1] = False
            load[i0:i1] = 0.0
            free_mem[i0:i1] = 0.0

    return MachineTrace(
        machine_id=trace.machine_id,
        start_time=trace.start_time,
        sample_period=trace.sample_period,
        load=load,
        free_mem_mb=free_mem,
        up=up,
    )
