"""Machine/user behaviour profiles for trace synthesis.

A :class:`MachineProfile` captures everything the synthesizer needs to
generate a realistic host-resource-usage trace: the diurnal intensity
curves that shape user activity, the session and burst processes that
produce CPU load, the memory footprint model, and the revocation (URR)
process.

The default :func:`student_lab` profile is calibrated against what the
paper reports about its testbed (Section 6.1): a general-purpose Purdue
computer laboratory, students "checking e-mails, editing files, and
compiling and testing class projects", with 405-453 unavailability
occurrences per machine over 3 months (~4.5-5 per day) and load patterns
that recur across weekdays (weekends) — machines rebooted by console
users who "do not wish to share the machine".

Two additional presets anticipate the paper's future-work testbeds:
:func:`office_desktop` (a single owner, 9-5 usage, fewer reboots) and
:func:`server_room` (always-on batch machines, rare revocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["MachineProfile", "student_lab", "office_desktop", "server_room", "PROFILES"]


def _curve(points: dict[int, float]) -> tuple[float, ...]:
    """Expand sparse {hour: value} control points into a 24-value curve."""
    hours = sorted(points)
    xs = np.array(hours + [hours[0] + 24], dtype=float)
    ys = np.array([points[h] for h in hours] + [points[hours[0]]], dtype=float)
    grid = np.arange(24, dtype=float)
    return tuple(float(v) for v in np.interp(grid, xs, ys))


@dataclass(frozen=True)
class MachineProfile:
    """All tunables of the synthetic workload of one machine class.

    Intensity curves are unit-free multipliers (0 = dead of night,
    1 = peak usage); they scale the session arrival rate and the
    revocation hazard.  Durations are seconds, loads are CPU fractions,
    memory is MB.
    """

    name: str

    # --- machine hardware -------------------------------------------- #
    ram_mb: float = 512.0
    kernel_mem_mb: float = 96.0

    # --- diurnal intensity ------------------------------------------- #
    weekday_hourly: tuple[float, ...] = field(default_factory=tuple)
    weekend_hourly: tuple[float, ...] = field(default_factory=tuple)
    #: lognormal sigma of the per-day intensity multiplier (day-to-day
    #: deviation from the recurring pattern).
    day_jitter_sigma: float = 0.12

    # --- interactive sessions ---------------------------------------- #
    #: expected sessions per day at intensity 1.0 sustained all day.
    sessions_per_day: float = 60.0
    #: lognormal (mu of ln-seconds, sigma) of session duration.
    session_duration_ln: tuple[float, float] = (7.3, 0.7)  # median ~25 min
    #: uniform range of a session's steady CPU load (editing, e-mail).
    session_load_range: tuple[float, float] = (0.05, 0.22)
    #: uniform range of a session's resident memory (MB).
    session_mem_range: tuple[float, float] = (30.0, 80.0)

    # --- compile / compute bursts inside sessions --------------------- #
    #: expected bursts per hour of session time.
    bursts_per_session_hour: float = 1.35
    #: lognormal (mu of ln-seconds, sigma) of burst duration; the mix of
    #: sub-minute (transient, guest suspended) and multi-minute (S3)
    #: bursts is what drives UEC frequency.
    burst_duration_ln: tuple[float, float] = (2.9, 0.9)  # median ~18 s
    #: uniform range of burst CPU load (compilers/tests peg the CPU).
    burst_load_range: tuple[float, float] = (0.70, 1.00)

    # --- background activity ------------------------------------------ #
    #: idle baseline load (daemons, monitors).
    idle_load: float = 0.02
    #: AR(1) background noise: coefficient and innovation std-dev.
    noise_phi: float = 0.9
    noise_sigma: float = 0.01
    #: system spikes per day (cron jobs, updatedb, remote X) — short,
    #: high-load, session-independent.
    system_spikes_per_day: float = 6.0
    system_spike_duration: tuple[float, float] = (6.0, 54.0)
    system_spike_load: tuple[float, float] = (0.65, 1.00)

    # --- large-memory applications (S4 driver) ------------------------ #
    #: expected big-memory app launches per day at intensity 1.0.
    bigmem_per_day: float = 0.35
    bigmem_ws_range: tuple[float, float] = (260.0, 380.0)
    bigmem_duration_ln: tuple[float, float] = (6.6, 0.6)  # median ~12 min

    # --- revocation (URR / S5 driver) ---------------------------------- #
    #: expected console reboots per day at intensity 1.0 sustained.
    reboots_per_day: float = 1.6
    #: expected intensity-independent crashes per day.
    crashes_per_day: float = 0.08
    #: uniform range of downtime per revocation (seconds).
    downtime_range: tuple[float, float] = (120.0, 900.0)

    def __post_init__(self) -> None:
        for label, curve in (("weekday", self.weekday_hourly), ("weekend", self.weekend_hourly)):
            if len(curve) != 24:
                raise ValueError(f"{label}_hourly must have 24 entries, got {len(curve)}")
            if min(curve) < 0.0:
                raise ValueError(f"{label}_hourly values must be >= 0")
        if self.ram_mb <= self.kernel_mem_mb:
            raise ValueError("ram_mb must exceed kernel_mem_mb")

    def hourly(self, weekend: bool) -> np.ndarray:
        """The intensity curve for the requested day type, as an array."""
        return np.asarray(self.weekend_hourly if weekend else self.weekday_hourly)

    def with_jitter(self, rng: np.random.Generator, scale: float = 0.15) -> "MachineProfile":
        """A per-machine perturbed copy, so testbed machines differ.

        Rates and curves are scaled by independent lognormal factors of
        sigma ``scale``; this models the paper's "highly diverse host
        workloads" across lab machines while keeping each machine's own
        day-to-day pattern stable.
        """

        def f() -> float:
            return float(np.exp(rng.normal(0.0, scale)))

        return replace(
            self,
            weekday_hourly=tuple(min(1.5, v * f()) for v in self.weekday_hourly),
            weekend_hourly=tuple(min(1.5, v * f()) for v in self.weekend_hourly),
            sessions_per_day=self.sessions_per_day * f(),
            bursts_per_session_hour=self.bursts_per_session_hour * f(),
            bigmem_per_day=self.bigmem_per_day * f(),
            reboots_per_day=self.reboots_per_day * f(),
        )


def student_lab() -> MachineProfile:
    """The paper's testbed: a general-purpose student computer lab.

    Busy mid-morning through late evening on weekdays (classes,
    assignments), quieter but non-trivial weekends, near-idle overnight.
    """
    return MachineProfile(
        name="student-lab",
        weekday_hourly=_curve({0: 0.10, 3: 0.02, 7: 0.06, 9: 0.55, 11: 0.85, 13: 0.80,
                               15: 0.95, 17: 0.75, 19: 0.70, 21: 0.55, 23: 0.20}),
        weekend_hourly=_curve({0: 0.12, 4: 0.02, 9: 0.10, 12: 0.35, 15: 0.45, 18: 0.40,
                               21: 0.30, 23: 0.15}),
    )


def office_desktop() -> MachineProfile:
    """An enterprise desktop: one owner, 9-to-5, locked overnight."""
    return MachineProfile(
        name="office-desktop",
        weekday_hourly=_curve({0: 0.01, 7: 0.05, 9: 0.80, 12: 0.50, 14: 0.85, 17: 0.60,
                               19: 0.10, 22: 0.02}),
        weekend_hourly=_curve({0: 0.01, 10: 0.06, 14: 0.10, 20: 0.02}),
        sessions_per_day=10.0,
        session_duration_ln=(8.2, 0.6),  # median ~1 h
        reboots_per_day=0.35,
        crashes_per_day=0.05,
        bigmem_per_day=0.3,
        system_spikes_per_day=4.0,
    )


def server_room() -> MachineProfile:
    """Always-on shared compute servers: flat load, rare revocation."""
    return MachineProfile(
        name="server-room",
        weekday_hourly=_curve({0: 0.45, 6: 0.40, 10: 0.60, 16: 0.65, 22: 0.50}),
        weekend_hourly=_curve({0: 0.40, 8: 0.35, 14: 0.45, 20: 0.40}),
        sessions_per_day=30.0,
        session_duration_ln=(8.6, 0.9),  # long batch jobs
        session_load_range=(0.10, 0.45),
        reboots_per_day=0.05,
        crashes_per_day=0.03,
        downtime_range=(300.0, 3600.0),
        day_jitter_sigma=0.12,
        ram_mb=2048.0,
        kernel_mem_mb=160.0,
    )


#: Named registry used by the CLI and examples.
PROFILES = {
    "student-lab": student_lab,
    "office-desktop": office_desktop,
    "server-room": server_room,
}
