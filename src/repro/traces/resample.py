"""Trace resampling utilities.

Real deployments mix monitoring periods (the paper's 6 s testbed, a 30 s
office fleet, minute-level archival storage).  These helpers convert a
trace between periods without losing the signals the availability model
depends on:

* **load** is averaged within each coarse interval (CPU usage is a
  time-average by definition);
* **free memory** takes the interval *minimum* (thrashing is triggered
  by the worst moment, not the average);
* **up** takes the interval minimum too: any down sample marks the
  coarse interval down, so URR periods are never hidden.

Downsampling therefore never hides a failure condition that lasted at
least one fine sample, though a sub-interval S3 excursion can lose its
exact duration (which is why the classifier's transient tolerance is
expressed in seconds, not samples).
"""

from __future__ import annotations

from repro.traces.trace import MachineTrace

__all__ = ["downsample", "align_periods"]


def downsample(trace: MachineTrace, factor: int) -> MachineTrace:
    """Coarsen a trace by an integer factor.

    The result has ``sample_period * factor``; a trailing remainder of
    fewer than ``factor`` samples is dropped (the grid must stay
    regular).
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return trace
    n_full = (trace.n_samples // factor) * factor
    if n_full == 0:
        raise ValueError(
            f"trace of {trace.n_samples} samples too short for factor {factor}"
        )
    load = trace.load[:n_full].reshape(-1, factor)
    mem = trace.free_mem_mb[:n_full].reshape(-1, factor)
    up = trace.up[:n_full].reshape(-1, factor)
    return MachineTrace(
        machine_id=trace.machine_id,
        start_time=trace.start_time,
        sample_period=trace.sample_period * factor,
        load=load.mean(axis=1),
        free_mem_mb=mem.min(axis=1),
        up=up.min(axis=1).astype(bool),
    )


def align_periods(a: MachineTrace, b: MachineTrace) -> tuple[MachineTrace, MachineTrace]:
    """Downsample the finer of two traces so both share one period.

    The coarser period must be an integer multiple of the finer one;
    otherwise no lossless alignment exists and a ``ValueError`` is
    raised.
    """
    pa, pb = a.sample_period, b.sample_period
    if pa == pb:
        return a, b
    fine, coarse = (a, b) if pa < pb else (b, a)
    ratio = coarse.sample_period / fine.sample_period
    if abs(ratio - round(ratio)) > 1e-9:
        raise ValueError(
            f"periods {pa} and {pb} are not integer multiples; cannot align"
        )
    resampled = downsample(fine, int(round(ratio)))
    return (resampled, coarse) if pa < pb else (coarse, resampled)
