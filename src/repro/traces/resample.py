"""Trace resampling utilities.

Real deployments mix monitoring periods (the paper's 6 s testbed, a 30 s
office fleet, minute-level archival storage).  These helpers convert a
trace between periods without losing the signals the availability model
depends on:

* **load** is averaged within each coarse interval (CPU usage is a
  time-average by definition);
* **free memory** takes the interval *minimum* (thrashing is triggered
  by the worst moment, not the average);
* **up** takes the interval minimum too: any down sample marks the
  coarse interval down, so URR periods are never hidden.

Downsampling therefore never hides a failure condition that lasted at
least one fine sample, though a sub-interval S3 excursion can lose its
exact duration (which is why the classifier's transient tolerance is
expressed in seconds, not samples).
"""

from __future__ import annotations

import numpy as np

from repro.traces.trace import MachineTrace

__all__ = ["downsample", "upsample", "resample_to_period", "align_periods"]


def downsample(trace: MachineTrace, factor: int) -> MachineTrace:
    """Coarsen a trace by an integer factor.

    The result has ``sample_period * factor``; a trailing remainder of
    fewer than ``factor`` samples is dropped (the grid must stay
    regular).
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return trace
    n_full = (trace.n_samples // factor) * factor
    if n_full == 0:
        raise ValueError(
            f"trace of {trace.n_samples} samples too short for factor {factor}"
        )
    load = trace.load[:n_full].reshape(-1, factor)
    mem = trace.free_mem_mb[:n_full].reshape(-1, factor)
    up = trace.up[:n_full].reshape(-1, factor)
    return MachineTrace(
        machine_id=trace.machine_id,
        start_time=trace.start_time,
        sample_period=trace.sample_period * factor,
        load=load.mean(axis=1),
        free_mem_mb=mem.min(axis=1),
        up=up.min(axis=1).astype(bool),
    )


def upsample(trace: MachineTrace, factor: int) -> MachineTrace:
    """Refine a trace by an integer factor (each sample repeated).

    The inverse of :func:`downsample` in the only sense a coarser
    measurement permits: each coarse sample is assumed to describe its
    whole interval, so it repeats across the ``factor`` fine slots it
    covers.  ``downsample(upsample(t, f), f)`` reproduces ``t``
    exactly (mean of a constant block is the constant; so are its
    minima) — the round-trip foreign-cadence adapters rely on.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return trace
    return MachineTrace(
        machine_id=trace.machine_id,
        start_time=trace.start_time,
        sample_period=trace.sample_period / factor,
        load=np.repeat(trace.load, factor),
        free_mem_mb=np.repeat(trace.free_mem_mb, factor),
        up=np.repeat(trace.up, factor),
    )


def resample_to_period(trace: MachineTrace, sample_period: float) -> MachineTrace:
    """Convert a trace to ``sample_period``, whichever direction that is.

    Coarser targets downsample, finer targets upsample; a target that is
    not an integer multiple (or divisor) of the trace's period raises
    ``ValueError``, as in :func:`align_periods`.
    """
    if sample_period <= 0:
        raise ValueError(f"sample_period must be positive, got {sample_period}")
    if abs(sample_period - trace.sample_period) < 1e-9:
        return trace
    if sample_period > trace.sample_period:
        ratio = sample_period / trace.sample_period
    else:
        ratio = trace.sample_period / sample_period
    if abs(ratio - round(ratio)) > 1e-9:
        raise ValueError(
            f"target period {sample_period} is not an integer multiple or "
            f"divisor of the trace's {trace.sample_period}; cannot resample "
            "losslessly"
        )
    factor = int(round(ratio))
    if sample_period > trace.sample_period:
        return downsample(trace, factor)
    return upsample(trace, factor)


def align_periods(a: MachineTrace, b: MachineTrace) -> tuple[MachineTrace, MachineTrace]:
    """Downsample the finer of two traces so both share one period.

    The coarser period must be an integer multiple of the finer one;
    otherwise no lossless alignment exists and a ``ValueError`` is
    raised.
    """
    pa, pb = a.sample_period, b.sample_period
    if pa == pb:
        return a, b
    fine, coarse = (a, b) if pa < pb else (b, a)
    ratio = coarse.sample_period / fine.sample_period
    if abs(ratio - round(ratio)) > 1e-9:
        raise ValueError(
            f"periods {pa} and {pb} are not integer multiples; cannot align"
        )
    resampled = downsample(fine, int(round(ratio)))
    return (resampled, coarse) if pa < pb else (coarse, resampled)
