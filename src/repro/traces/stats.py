"""Trace statistics: unavailability events, availability, pattern similarity.

These are the quantities the paper reports about its dataset (Section
6.1): the number of unavailability occurrences per machine (405-453 over
3 months), the failure-state breakdown, and the day-to-day comparability
of load patterns that justifies windowed history pooling.  The synthesis
calibration bench (`TRACE` in DESIGN.md) checks our synthetic testbed
against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import windows as win
from repro.core.classifier import StateClassifier
from repro.core.segments import run_length_encode
from repro.core.states import State
from repro.traces.events import UnavailabilityEvent
from repro.traces.trace import MachineTrace

__all__ = [
    "unavailability_events",
    "TraceSummary",
    "summarize_trace",
    "hourly_mean_load",
    "daily_pattern_correlation",
]


def unavailability_events(
    trace: MachineTrace, classifier: StateClassifier | None = None
) -> list[UnavailabilityEvent]:
    """Extract maximal unavailability occurrences from a trace.

    Consecutive samples in *any* failure state form one event; the event
    is labelled with the state of its first sample (matching how the
    paper's trace records "the corresponding failure state").  Back-to-
    back distinct failure states (e.g. S3 leading into a reboot's S5)
    are reported as separate events, since each would independently kill
    a guest.
    """
    classifier = classifier or StateClassifier()
    states = classifier.classify_trace(trace)
    vals, starts, lengths = run_length_encode(states)
    events: list[UnavailabilityEvent] = []
    for v, s, ln in zip(vals, starts, lengths):
        state = State(int(v))
        if not state.is_failure:
            continue
        t0 = trace.start_time + s * trace.sample_period
        events.append(
            UnavailabilityEvent(start=t0, end=t0 + ln * trace.sample_period, state=state)
        )
    return events


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics of one machine trace."""

    machine_id: str
    n_days: int
    n_events: int
    events_per_day: float
    n_s3: int
    n_s4: int
    n_s5: int
    availability: float  #: fraction of samples in an operational state
    mean_load: float  #: mean host CPU load over up samples

    def breakdown(self) -> dict[str, int]:
        """Event counts keyed by failure-state name."""
        return {"S3": self.n_s3, "S4": self.n_s4, "S5": self.n_s5}


def summarize_trace(
    trace: MachineTrace, classifier: StateClassifier | None = None
) -> TraceSummary:
    """Compute the :class:`TraceSummary` of one trace."""
    classifier = classifier or StateClassifier()
    events = unavailability_events(trace, classifier)
    states = classifier.classify_trace(trace)
    n_days = max(trace.n_days, 1)
    counts = {s: sum(1 for e in events if e.state is s) for s in (State.S3, State.S4, State.S5)}
    up_loads = trace.load[trace.up]
    return TraceSummary(
        machine_id=trace.machine_id,
        n_days=trace.n_days,
        n_events=len(events),
        events_per_day=len(events) / n_days,
        n_s3=counts[State.S3],
        n_s4=counts[State.S4],
        n_s5=counts[State.S5],
        availability=float(np.mean(states <= State.S2)) if states.size else float("nan"),
        mean_load=float(up_loads.mean()) if up_loads.size else float("nan"),
    )


def hourly_mean_load(trace: MachineTrace, day: int) -> np.ndarray:
    """Mean host CPU load per hour-of-day for one day (24 values).

    Down samples are excluded from each hour's mean; an hour that is
    entirely down yields ``nan``.
    """
    view = trace.day_view(day)
    samples_per_hour = int(round(win.SECONDS_PER_HOUR / trace.sample_period))
    load = view.load[: 24 * samples_per_hour].reshape(24, samples_per_hour)
    up = view.up[: 24 * samples_per_hour].reshape(24, samples_per_hour)
    with np.errstate(invalid="ignore"):
        sums = np.where(up, load, 0.0).sum(axis=1)
        counts = up.sum(axis=1)
        return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def daily_pattern_correlation(trace: MachineTrace, day_a: int, day_b: int) -> float:
    """Pearson correlation of two days' hourly load profiles.

    The paper's premise is that same-type days have comparable load
    patterns; this is the quantitative check.  Returns ``nan`` when
    either profile is degenerate (constant or fully down).
    """
    a = hourly_mean_load(trace, day_a)
    b = hourly_mean_load(trace, day_b)
    ok = np.isfinite(a) & np.isfinite(b)
    if ok.sum() < 3:
        return float("nan")
    a, b = a[ok], b[ok]
    if np.std(a) < 1e-12 or np.std(b) < 1e-12:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])
