"""Synthetic host-workload trace generation.

This is the data substitute for the paper's 3-month Purdue lab traces
(DESIGN.md, substitution table).  A trace is assembled from explicitly
modelled processes, every one of which corresponds to a phenomenon the
paper describes:

* a **diurnal intensity curve** per day type (weekday/weekend) — the
  recurring daily pattern the SMP estimator relies on;
* **interactive user sessions** (e-mail, editing) arriving as a
  non-homogeneous Poisson process modulated by the intensity curve, each
  contributing a steady CPU load and resident memory;
* **compile/test bursts** inside sessions — short CPU-pegging episodes;
  sub-minute bursts become transient suspensions, longer ones become S3;
* **system spikes** — session-independent short high-load events (cron,
  remote X clients), the paper's example cause of transient spikes;
* **large-memory applications** whose working set overcommits RAM — the
  S4 (thrashing) driver;
* **revocations** — console reboots (intensity-modulated: an impatient
  local user implies a busy lab) plus rare intensity-independent crashes
  — the S5 (URR) driver;
* **AR(1) background noise** on top of everything.

All randomness flows from a single :class:`numpy.random.Generator`
seeded per machine, so traces are fully reproducible.  Interval loads
are accumulated with the difference-array trick and a single cumulative
sum — no per-sample Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter

from repro.core import windows as win
from repro.traces.profiles import MachineProfile, student_lab
from repro.traces.trace import MachineTrace, TraceSet

__all__ = ["SynthesisConfig", "synthesize_trace", "synthesize_testbed"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Parameters of one synthesis run.

    ``n_days`` full days starting at day index ``start_day`` (day 0 is a
    Monday), sampled every ``sample_period`` seconds — 6 s in the paper's
    testbed.  ``machine_jitter`` perturbs the profile per machine (0
    disables it, making all machines statistically identical).
    """

    n_days: int = 90
    sample_period: float = 6.0
    start_day: int = 0
    profile: MachineProfile | None = None
    machine_jitter: float = 0.15

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {self.n_days}")
        if self.sample_period <= 0.0:
            raise ValueError(f"sample_period must be positive, got {self.sample_period}")
        if self.start_day < 0:
            raise ValueError(f"start_day must be >= 0, got {self.start_day}")
        if self.machine_jitter < 0.0:
            raise ValueError(f"machine_jitter must be >= 0, got {self.machine_jitter}")


class _IntervalAccumulator:
    """Accumulate ``value`` over half-open sample-index intervals.

    Uses the difference-array trick: ``add`` costs O(1); the full
    per-sample array is materialized once by :meth:`materialize` with a
    single cumulative sum.
    """

    def __init__(self, n: int) -> None:
        self._diff = np.zeros(n + 1)
        self._n = n

    def add(self, i0: int, i1: int, value: float) -> None:
        i0 = max(0, min(self._n, i0))
        i1 = max(0, min(self._n, i1))
        if i1 <= i0:
            return
        self._diff[i0] += value
        self._diff[i1] -= value

    def materialize(self) -> np.ndarray:
        return np.cumsum(self._diff[:-1])


def _sample_times_by_intensity(
    rng: np.random.Generator, intensity: np.ndarray, n_events: int, t0: float, period: float
) -> np.ndarray:
    """Draw event times with density proportional to a per-sample intensity."""
    if n_events == 0:
        return np.empty(0)
    weights = np.maximum(intensity, 1e-9)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    idx = np.searchsorted(cdf, rng.random(n_events))
    return t0 + (idx + rng.random(n_events)) * period


def _lognormal(rng: np.random.Generator, params: tuple[float, float], size: int) -> np.ndarray:
    mu, sigma = params
    return np.exp(rng.normal(mu, sigma, size))


def synthesize_trace(
    machine_id: str,
    *,
    n_days: int = 90,
    sample_period: float = 6.0,
    start_day: int = 0,
    profile: MachineProfile | None = None,
    machine_jitter: float = 0.15,
    seed: int | np.random.Generator = 0,
) -> MachineTrace:
    """Generate one machine's monitoring trace.

    See the module docstring for the generative model.  ``seed`` may be
    an integer or a pre-built generator (the testbed synthesizer passes
    child generators).
    """
    config = SynthesisConfig(
        n_days=n_days,
        sample_period=sample_period,
        start_day=start_day,
        profile=profile,
        machine_jitter=machine_jitter,
    )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    prof = config.profile or student_lab()
    if config.machine_jitter > 0.0:
        prof = prof.with_jitter(rng, config.machine_jitter)

    period = config.sample_period
    samples_per_day = int(round(win.SECONDS_PER_DAY / period))
    n = config.n_days * samples_per_day
    t_start = win.day_start(config.start_day)

    load_acc = _IntervalAccumulator(n)
    mem_acc = _IntervalAccumulator(n)
    up = np.ones(n, dtype=bool)

    def to_index(t: float) -> int:
        return int((t - t_start) / period)

    # Per-sample time-of-day grid for one day, reused for every day.
    tod = (np.arange(samples_per_day) + 0.5) * period / win.SECONDS_PER_HOUR
    hour_grid = np.arange(25, dtype=float)

    day_intensity_mean = np.empty(config.n_days)
    for d in range(config.n_days):
        day = config.start_day + d
        weekend = win.day_type(day) is win.DayType.WEEKEND
        curve = prof.hourly(weekend)
        curve_closed = np.concatenate([curve, curve[:1]])
        base = np.interp(tod, hour_grid, curve_closed)
        day_mult = float(np.exp(rng.normal(0.0, prof.day_jitter_sigma)))
        intensity = base * day_mult
        day_intensity_mean[d] = float(intensity.mean())
        day_t0 = win.day_start(day)

        # ---------------- interactive sessions ---------------------- #
        expected_sessions = prof.sessions_per_day * day_intensity_mean[d]
        n_sessions = int(rng.poisson(expected_sessions))
        starts = _sample_times_by_intensity(rng, intensity, n_sessions, day_t0, period)
        durations = _lognormal(rng, prof.session_duration_ln, n_sessions)
        loads = rng.uniform(*prof.session_load_range, n_sessions)
        mems = rng.uniform(*prof.session_mem_range, n_sessions)
        for s, dur, sl, sm in zip(starts, durations, loads, mems):
            i0, i1 = to_index(s), to_index(s + dur)
            load_acc.add(i0, i1, float(sl))
            mem_acc.add(i0, i1, float(sm))
            # ------------ compile/test bursts in this session -------- #
            n_bursts = int(rng.poisson(dur / 3600.0 * prof.bursts_per_session_hour))
            if n_bursts:
                b_starts = s + rng.random(n_bursts) * dur
                b_durs = _lognormal(rng, prof.burst_duration_ln, n_bursts)
                b_loads = rng.uniform(*prof.burst_load_range, n_bursts)
                for bs, bd, bl in zip(b_starts, b_durs, b_loads):
                    load_acc.add(to_index(bs), to_index(bs + bd), float(bl))

        # ---------------- system spikes ------------------------------ #
        n_spikes = int(rng.poisson(prof.system_spikes_per_day))
        sp_starts = day_t0 + rng.random(n_spikes) * win.SECONDS_PER_DAY
        sp_durs = rng.uniform(*prof.system_spike_duration, n_spikes)
        sp_loads = rng.uniform(*prof.system_spike_load, n_spikes)
        for ss, sd, sl in zip(sp_starts, sp_durs, sp_loads):
            load_acc.add(to_index(ss), to_index(ss + sd), float(sl))

        # ---------------- big-memory applications -------------------- #
        n_big = int(rng.poisson(prof.bigmem_per_day * day_intensity_mean[d] / 0.5))
        big_starts = _sample_times_by_intensity(rng, intensity, n_big, day_t0, period)
        big_durs = _lognormal(rng, prof.bigmem_duration_ln, n_big)
        big_ws = rng.uniform(*prof.bigmem_ws_range, n_big)
        for bs, bd, bw in zip(big_starts, big_durs, big_ws):
            mem_acc.add(to_index(bs), to_index(bs + bd), float(bw))

        # ---------------- revocations -------------------------------- #
        n_reboots = int(rng.poisson(prof.reboots_per_day * day_intensity_mean[d]))
        rb_starts = _sample_times_by_intensity(rng, intensity, n_reboots, day_t0, period)
        n_crashes = int(rng.poisson(prof.crashes_per_day))
        cr_starts = day_t0 + rng.random(n_crashes) * win.SECONDS_PER_DAY
        for rs in np.concatenate([rb_starts, cr_starts]):
            downtime = rng.uniform(*prof.downtime_range)
            i0 = max(0, min(n, to_index(rs)))
            i1 = max(0, min(n, to_index(rs + downtime)))
            up[i0:i1] = False

    # -------------------- assembly ----------------------------------- #
    load = load_acc.materialize()
    load += prof.idle_load
    noise = lfilter([1.0], [1.0, -prof.noise_phi], rng.normal(0.0, prof.noise_sigma, n))
    load = np.clip(load + noise, 0.0, 1.0)

    free_mem = prof.ram_mb - prof.kernel_mem_mb - mem_acc.materialize()
    free_mem = np.maximum(free_mem, 8.0)

    load[~up] = 0.0
    free_mem[~up] = 0.0

    return MachineTrace(
        machine_id=machine_id,
        start_time=t_start,
        sample_period=period,
        load=load,
        free_mem_mb=free_mem,
        up=up,
    )


def synthesize_testbed(
    n_machines: int = 10,
    *,
    n_days: int = 90,
    sample_period: float = 6.0,
    start_day: int = 0,
    profile: MachineProfile | None = None,
    machine_jitter: float = 0.15,
    seed: int = 0,
    id_prefix: str = "lab",
) -> TraceSet:
    """Generate a whole testbed: ``n_machines`` independent machine traces.

    Machines share the base profile but receive independent per-machine
    jitter and workload randomness (independent child generators of the
    given ``seed``), mirroring the paper's collection of lab machines
    with "highly diverse host workloads".
    """
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")
    root = np.random.default_rng(seed)
    children = root.spawn(n_machines)
    traces = TraceSet()
    for i, child in enumerate(children):
        traces.add(
            synthesize_trace(
                f"{id_prefix}-{i:02d}",
                n_days=n_days,
                sample_period=sample_period,
                start_day=start_day,
                profile=profile,
                machine_jitter=machine_jitter,
                seed=child,
            )
        )
    return traces
