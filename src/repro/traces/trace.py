"""Containers for host-resource-usage traces.

A :class:`MachineTrace` is the in-memory form of what the paper's Resource
Monitor recorded for one machine: a regular grid of samples (6-second
period on the Purdue testbed) of total host CPU load, free memory and an
up/down flag derived from the heartbeat mechanism.  A :class:`TraceSet`
collects the traces of a whole testbed.

Traces are backed by NumPy arrays; all window operations return *views*
(no copies) so that slicing a 3-month trace into thousands of evaluation
windows stays cheap, following the standard scientific-Python guidance of
preferring views over copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core import windows as win
from repro.core.windows import AbsoluteWindow, DayType

__all__ = ["MachineTrace", "TraceSet", "TraceWindow"]


@dataclass(frozen=True)
class TraceWindow:
    """Array views of one trace over one absolute window.

    The arrays are views into the parent trace (mutating them mutates the
    trace); treat them as read-only.
    """

    window: AbsoluteWindow
    sample_period: float
    load: np.ndarray
    free_mem_mb: np.ndarray
    up: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of samples covering the window."""
        return int(self.load.shape[0])


class MachineTrace:
    """A regular-grid monitoring trace of one host machine.

    Parameters
    ----------
    machine_id:
        Identifier of the traced machine.
    start_time:
        Absolute time of the first sample.  Usually day-aligned (00:00).
    sample_period:
        Monitoring period in seconds (the paper used 6 s).
    load:
        Total host CPU load per sample, in ``[0, 1]``.
    free_mem_mb:
        Free memory per sample, MB.
    up:
        Whether the machine was up at each sample.  During down (URR)
        periods, ``load``/``free_mem_mb`` values are meaningless and by
        convention stored as ``0.0``.
    """

    __slots__ = ("machine_id", "start_time", "sample_period", "load", "free_mem_mb", "up")

    def __init__(
        self,
        machine_id: str,
        start_time: float,
        sample_period: float,
        load: np.ndarray,
        free_mem_mb: np.ndarray,
        up: np.ndarray | None = None,
    ) -> None:
        load = np.asarray(load, dtype=np.float64)
        free_mem_mb = np.asarray(free_mem_mb, dtype=np.float64)
        if up is None:
            up = np.ones(load.shape, dtype=bool)
        else:
            up = np.asarray(up, dtype=bool)
        if load.ndim != 1:
            raise ValueError(f"load must be 1-D, got shape {load.shape}")
        if free_mem_mb.shape != load.shape or up.shape != load.shape:
            raise ValueError(
                "load, free_mem_mb and up must have identical shapes: "
                f"{load.shape}, {free_mem_mb.shape}, {up.shape}"
            )
        if sample_period <= 0.0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        if load.size and (np.nanmin(load) < -1e-9 or np.nanmax(load) > 1.0 + 1e-9):
            raise ValueError("load samples must lie in [0, 1]")
        self.machine_id = machine_id
        self.start_time = float(start_time)
        self.sample_period = float(sample_period)
        self.load = load
        self.free_mem_mb = free_mem_mb
        self.up = up

    # ------------------------------------------------------------------ #
    # basic geometry
    # ------------------------------------------------------------------ #

    @property
    def n_samples(self) -> int:
        """Number of samples in the trace."""
        return int(self.load.shape[0])

    @property
    def duration(self) -> float:
        """Trace length in seconds (samples x period)."""
        return self.n_samples * self.sample_period

    @property
    def end_time(self) -> float:
        """Absolute time just past the last sample's interval."""
        return self.start_time + self.duration

    def times(self) -> np.ndarray:
        """Absolute sample times (computed on demand; not cached)."""
        return self.start_time + np.arange(self.n_samples) * self.sample_period

    def index_of(self, t: float) -> int:
        """Index of the sample interval containing absolute time ``t``."""
        idx = int(np.floor((t - self.start_time) / self.sample_period + 1e-9))
        if idx < 0 or idx >= self.n_samples:
            raise IndexError(
                f"time {t} outside trace [{self.start_time}, {self.end_time}) "
                f"of machine {self.machine_id!r}"
            )
        return idx

    # ------------------------------------------------------------------ #
    # days
    # ------------------------------------------------------------------ #

    @property
    def first_day(self) -> int:
        """Day index of the first fully covered day."""
        d = win.day_index(self.start_time)
        if win.day_start(d) < self.start_time - 1e-9:
            d += 1
        return d

    @property
    def last_day(self) -> int:
        """Exclusive day index: days ``first_day .. last_day-1`` are fully covered."""
        return win.day_index(self.end_time + 1e-9)

    @property
    def n_days(self) -> int:
        """Number of fully covered days."""
        return max(0, self.last_day - self.first_day)

    def days(self, dtype: DayType | None = None) -> list[int]:
        """Fully covered day indices, optionally filtered by day type."""
        all_days = range(self.first_day, self.last_day)
        if dtype is None:
            return list(all_days)
        return [d for d in all_days if win.day_type(d) is dtype]

    # ------------------------------------------------------------------ #
    # window access
    # ------------------------------------------------------------------ #

    def covers(self, window: AbsoluteWindow) -> bool:
        """True when the window lies entirely within the trace."""
        return window.start >= self.start_time - 1e-9 and window.end <= self.end_time + 1e-9

    def window_view(self, window: AbsoluteWindow) -> TraceWindow:
        """Return array views over one absolute window.

        The number of samples is ``round(duration / sample_period)``
        (matching the paper's ``T/d`` discretization); a window not fully
        inside the trace raises :class:`IndexError`.
        """
        if not self.covers(window):
            raise IndexError(
                f"window [{window.start}, {window.end}) outside trace "
                f"[{self.start_time}, {self.end_time}) of {self.machine_id!r}"
            )
        i0 = int(round((window.start - self.start_time) / self.sample_period))
        n = win.n_steps(window.duration, self.sample_period)
        n = min(n, self.n_samples - i0)
        sl = slice(i0, i0 + n)
        return TraceWindow(
            window=window,
            sample_period=self.sample_period,
            load=self.load[sl],
            free_mem_mb=self.free_mem_mb[sl],
            up=self.up[sl],
        )

    def day_view(self, day: int) -> TraceWindow:
        """Return views covering one whole day."""
        return self.window_view(AbsoluteWindow(win.day_start(day), win.SECONDS_PER_DAY))

    # ------------------------------------------------------------------ #
    # splitting
    # ------------------------------------------------------------------ #

    def slice_days(self, first_day: int, last_day: int) -> "MachineTrace":
        """Return a sub-trace covering days ``[first_day, last_day)``.

        The result shares storage with the parent trace (views).
        """
        if first_day < self.first_day or last_day > self.last_day or first_day >= last_day:
            raise ValueError(
                f"day range [{first_day}, {last_day}) outside trace days "
                f"[{self.first_day}, {self.last_day})"
            )
        t0 = win.day_start(first_day)
        i0 = int(round((t0 - self.start_time) / self.sample_period))
        n = int(round((last_day - first_day) * win.SECONDS_PER_DAY / self.sample_period))
        return MachineTrace(
            machine_id=self.machine_id,
            start_time=t0,
            sample_period=self.sample_period,
            load=self.load[i0 : i0 + n],
            free_mem_mb=self.free_mem_mb[i0 : i0 + n],
            up=self.up[i0 : i0 + n],
        )

    def concat(self, other: "MachineTrace") -> "MachineTrace":
        """Append a contiguous continuation of this trace.

        ``other`` must belong to the same machine, share the sample
        period and start exactly where this trace ends — the shape the
        State Manager produces when folding live monitor logs onto a
        bootstrap history.
        """
        if other.machine_id != self.machine_id:
            raise ValueError(
                f"cannot concat traces of different machines: "
                f"{self.machine_id!r} and {other.machine_id!r}"
            )
        if other.sample_period != self.sample_period:
            raise ValueError(
                f"sample periods differ: {self.sample_period} vs {other.sample_period}"
            )
        if abs(other.start_time - self.end_time) > 1e-6:
            raise ValueError(
                f"traces are not contiguous: this ends at {self.end_time}, "
                f"other starts at {other.start_time}"
            )
        return MachineTrace(
            machine_id=self.machine_id,
            start_time=self.start_time,
            sample_period=self.sample_period,
            load=np.concatenate([self.load, other.load]),
            free_mem_mb=np.concatenate([self.free_mem_mb, other.free_mem_mb]),
            up=np.concatenate([self.up, other.up]),
        )

    def split_by_ratio(self, train_fraction: float) -> tuple["MachineTrace", "MachineTrace"]:
        """Split into (train, test) sub-traces on a day boundary.

        ``train_fraction`` is the fraction of fully covered days assigned
        to the training set (the paper's Figure 6 sweeps this from 1:9 to
        9:1).  Both halves are guaranteed at least one day.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        n_days = self.n_days
        if n_days < 2:
            raise ValueError(f"need at least 2 full days to split, trace has {n_days}")
        n_train = min(max(1, int(round(n_days * train_fraction))), n_days - 1)
        cut = self.first_day + n_train
        return (
            self.slice_days(self.first_day, cut),
            self.slice_days(cut, self.last_day),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MachineTrace({self.machine_id!r}, days={self.first_day}..{self.last_day - 1}, "
            f"period={self.sample_period}s, n={self.n_samples})"
        )


class TraceSet:
    """An ordered collection of machine traces (one testbed)."""

    def __init__(self, traces: Iterable[MachineTrace] = ()) -> None:
        self._traces: dict[str, MachineTrace] = {}
        for tr in traces:
            self.add(tr)

    def add(self, trace: MachineTrace) -> None:
        """Add one trace; machine ids must be unique."""
        if trace.machine_id in self._traces:
            raise KeyError(f"duplicate machine id {trace.machine_id!r}")
        self._traces[trace.machine_id] = trace

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[MachineTrace]:
        return iter(self._traces.values())

    def __getitem__(self, machine_id: str) -> MachineTrace:
        return self._traces[machine_id]

    def __contains__(self, machine_id: str) -> bool:
        return machine_id in self._traces

    @property
    def machine_ids(self) -> list[str]:
        """Machine ids in insertion order."""
        return list(self._traces)

    def split_by_ratio(self, train_fraction: float) -> tuple["TraceSet", "TraceSet"]:
        """Split every trace by day ratio; returns (train set, test set)."""
        train, test = TraceSet(), TraceSet()
        for tr in self:
            a, b = tr.split_by_ratio(train_fraction)
            train.add(a)
            test.add(b)
        return train, test

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceSet({len(self)} machines)"
