"""AdaptController: the alarm -> retune -> shadow -> promote loop."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.adapt import AdaptConfig, AdaptController, merge_adapt_status
from repro.adapt.controller import _MachineAdapt
from repro.adapt.planner import CandidateConfig
from repro.audit import AuditConfig, PredictionAudit
from repro.audit.audit import SHADOW_OP_PREFIX
from repro.core.online import IncrementalPredictor
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace

PERIOD = 300.0
CLOCK = ClockWindow.from_hours(1.0, 2.0)


def steady_trace(mid="m0", n_days=12):
    n = int(n_days * SECONDS_PER_DAY / PERIOD)
    return MachineTrace(
        mid, 0.0, PERIOD, np.full(n, 0.05), np.full(n, 400.0),
        np.ones(n, dtype=bool),
    )


def shifted_trace(mid="m0", n_days=14, shift_day=8):
    """A daily 9am outage that stops at ``shift_day`` (regime shift).

    A model trained on the full history keeps predicting the outage; a
    short training window sees only the clean post-shift days and wins
    the walk-forward backtest on them.
    """
    n_per_day = int(SECONDS_PER_DAY / PERIOD)
    load = np.full(n_days * n_per_day, 0.05)
    i0 = int(9.0 * 3600 / PERIOD)
    for day in range(0, shift_day):
        load[day * n_per_day + i0 : day * n_per_day + i0 + 24] = 0.95
    return MachineTrace(mid, 0.0, PERIOD, load, np.full(load.shape, 400.0))


def make_stack(trace=None, config=None):
    service = AvailabilityService()
    service.register(trace if trace is not None else steady_trace())
    audit = PredictionAudit(
        AuditConfig(node_id="t0"),
        classifier=service.classifier,
        step_multiple=service.config.step_multiple,
    )
    controller = AdaptController(
        service, audit,
        config or AdaptConfig(min_eval=2, hysteresis=2, promote_margin=0.01),
    )
    return service, audit, controller


def open_trial(controller, mid, challenger=None):
    """Install a shadow trial directly, bypassing the backtest gate."""
    challenger = challenger or CandidateConfig(history_days=3)
    st = controller._machines.setdefault(mid, _MachineAdapt())
    st.state = "shadowing"
    st.trial = controller.harness.start(
        mid, challenger,
        IncrementalPredictor(
            challenger.classifier(controller.service.classifier),
            challenger.estimator_config(controller.service.config),
        ),
        backtest_brier=0.1,
    )
    return st


def feed_trial(controller, st, *, champion_p, challenger_p, outcome, n):
    for _ in range(n):
        controller.harness.record(
            st.trial, shadow=False, probability=champion_p, outcome=outcome
        )
        controller.harness.record(
            st.trial, shadow=True, probability=challenger_p, outcome=outcome
        )


class TestConstruction:
    def test_requires_an_audit(self):
        service = AvailabilityService()
        with pytest.raises(ValueError, match="audit"):
            AdaptController(service, None)

    def test_status_shape_when_idle(self):
        _svc, _audit, controller = make_stack()
        status = controller.status()
        assert status["enabled"] is True
        assert status["retunes"] == 0
        assert status["shadowing"] == 0
        assert status["overrides"] == []
        assert status["machines"] == {}
        # Scoping to an unknown machine reports it as stable.
        scoped = controller.status("m0")
        assert scoped["machines"]["m0"] == {"state": "stable", "override": False}


class TestRetune:
    def test_real_retune_opens_a_trial_after_a_shift(self):
        config = AdaptConfig(
            holdout_days=4,
            eval_start_hours=(1.0, 8.5, 14.0),
            candidate_history_days=(None, 3),
            candidate_day_type_split=(True,),
            candidate_thresholds=((0.20, 0.60),),
            retune_min_gain=0.001,
        )
        _svc, _audit, controller = make_stack(shifted_trace(), config)
        summary = controller.retune("m0", trigger="manual")
        assert summary["trigger"] == "manual"
        assert summary["trial_opened"] is True
        assert summary["best"]["candidate"]["history_days"] == 3
        assert summary["improvement"] > 0
        status = controller.status()
        assert status["retunes"] == 1
        assert status["shadowing"] == 1
        assert status["machines"]["m0"]["state"] == "shadowing"
        assert "trial" in status["machines"]["m0"]

    def test_retune_without_a_winner_stays_stable(self):
        config = AdaptConfig(
            holdout_days=4,
            eval_start_hours=(1.0, 14.0),
            candidate_history_days=(None, 7),
            candidate_day_type_split=(True,),
            candidate_thresholds=((0.20, 0.60),),
        )
        _svc, _audit, controller = make_stack(steady_trace(), config)
        summary = controller.retune("m0")
        assert summary["trial_opened"] is False
        assert controller.status()["shadowing"] == 0

    def test_retune_while_shadowing_does_not_reopen(self):
        config = AdaptConfig(
            holdout_days=4,
            eval_start_hours=(1.0, 8.5, 14.0),
            candidate_history_days=(None, 3),
            candidate_day_type_split=(True,),
            candidate_thresholds=((0.20, 0.60),),
            retune_min_gain=0.001,
        )
        _svc, _audit, controller = make_stack(shifted_trace(), config)
        controller.retune("m0")
        first_trial = controller._machines["m0"].trial
        controller.retune("m0")
        assert controller._machines["m0"].trial is first_trial
        assert controller.status()["retunes"] == 2


class TestPromotion:
    def test_no_trial_in_flight(self):
        _svc, _audit, controller = make_stack()
        out = controller.promote("m0")
        assert out == {
            "machine": "m0", "promoted": False, "reason": "no trial in flight",
        }

    def test_not_comparable_until_min_eval(self):
        _svc, _audit, controller = make_stack()
        open_trial(controller, "m0")
        out = controller.promote("m0")
        assert out["promoted"] is False
        assert "not comparable" in out["reason"]

    def test_margin_below_required(self):
        _svc, _audit, controller = make_stack()
        st = open_trial(controller, "m0")
        feed_trial(controller, st, champion_p=0.9, challenger_p=0.9,
                   outcome=True, n=3)
        out = controller.promote("m0")
        assert out["promoted"] is False
        assert "margin" in out["reason"]

    def test_margin_met_installs_override_and_resets_drift(self):
        service, audit, controller = make_stack()
        # Pretend the drift detector had latched this machine.
        audit.drift._machine_state("m0").degraded = True
        assert audit.drift.machine_degraded("m0")
        st = open_trial(controller, "m0")
        feed_trial(controller, st, champion_p=0.5, challenger_p=0.95,
                   outcome=True, n=3)
        out = controller.promote("m0")
        assert out["promoted"] is True
        assert out["forced"] is False
        assert out["challenger"]["history_days"] == 3
        assert "m0" in service.overridden_machines
        assert service.model_config("m0").history_days == 3
        # Promotion wipes the machine's drift slate (satellite: the new
        # model must not be judged against the old model's statistics).
        assert not audit.drift.machine_degraded("m0")
        status = controller.status()["machines"]["m0"]
        assert status["state"] == "stable"
        assert status["promotions"] == 1
        assert status["cooldown"] == controller.config.cooldown_resolutions
        assert status["override"] is True

    def test_forced_promotion_skips_the_margin(self):
        service, _audit, controller = make_stack()
        open_trial(controller, "m0")
        out = controller.promote("m0", force=True)
        assert out["promoted"] is True
        assert out["forced"] is True
        assert "m0" in service.overridden_machines


class TestShadowing:
    def test_observe_served_journals_a_shadow_prediction(self):
        _svc, audit, controller = make_stack()
        st = open_trial(controller, "m0")
        controller.observe_served("predict", "m0", CLOCK, DayType.WEEKDAY)
        shadows = [
            r for r in audit.journal.predictions.values()
            if r.op == SHADOW_OP_PREFIX
        ]
        assert len(shadows) == 1
        assert st.trial.shadow_journaled == 1

    def test_stable_machines_and_other_ops_are_ignored(self):
        _svc, audit, controller = make_stack()
        controller.observe_served("predict", "m0", CLOCK, DayType.WEEKDAY)
        open_trial(controller, "m0")
        controller.observe_served("horizon", "m0", CLOCK, DayType.WEEKDAY)
        assert audit.journal.n_predictions == 0

    def test_on_ingest_feeds_arms_and_promotes_with_hysteresis(self):
        _svc, audit, controller = make_stack()
        st = open_trial(controller, "m0")
        history = controller.service._history("m0")

        def resolved_batch(n):
            out = []
            for op, p in ((("predict"), 0.5), ((SHADOW_OP_PREFIX), 0.95)):
                for _ in range(n):
                    record = audit.record_prediction(
                        op, "m0", CLOCK, DayType.WEEKDAY, p,
                        history_end=history.end_time,
                    )
                    out.append(SimpleNamespace(
                        seq=record.seq, probability=p, outcome="available",
                    ))
            return out

        controller.on_ingest("m0", history, resolved_batch(2))
        assert st.trial.wins == 1
        assert controller.status()["promotions"] == 0
        controller.on_ingest("m0", history, resolved_batch(2))
        # hysteresis=2: the second winning evaluation promotes.
        assert controller.status()["promotions"] == 1
        assert controller._machines["m0"].state == "stable"

    def test_excluded_resolutions_do_not_feed_the_trial(self):
        _svc, audit, controller = make_stack()
        st = open_trial(controller, "m0")
        history = controller.service._history("m0")
        controller.on_ingest(
            "m0", history,
            [SimpleNamespace(seq=999, probability=0.5, outcome="excluded")],
        )
        assert st.trial.resolutions == 0


class TestAutoRetune:
    def test_alarm_triggers_a_retune(self, monkeypatch):
        _svc, audit, controller = make_stack()
        audit.drift._machine_state("m0").degraded = True
        calls = []
        monkeypatch.setattr(
            controller, "retune",
            lambda machine, trigger="manual": calls.append((machine, trigger)),
        )
        history = controller.service._history("m0")
        controller.on_ingest(
            "m0", history,
            [SimpleNamespace(seq=1, probability=0.5, outcome="available")],
        )
        assert calls == [("m0", "alarm")]

    def test_cooldown_suppresses_auto_retunes_until_it_drains(self, monkeypatch):
        _svc, audit, controller = make_stack()
        audit.drift._machine_state("m0").degraded = True
        st = controller._machines.setdefault("m0", _MachineAdapt())
        st.cooldown = 3
        calls = []
        monkeypatch.setattr(
            controller, "retune",
            lambda machine, trigger="manual": calls.append(trigger),
        )
        history = controller.service._history("m0")
        batch = [
            SimpleNamespace(seq=i, probability=0.5, outcome="available")
            for i in range(2)
        ]
        controller.on_ingest("m0", history, batch)   # cooldown 3 -> 1
        assert st.cooldown == 1
        assert calls == []
        controller.on_ingest("m0", history, batch)   # cooldown 1 -> 0, returns
        assert st.cooldown == 0
        assert calls == []
        controller.on_ingest("m0", history, batch)   # cooldown drained: retune
        assert calls == ["alarm"]

    def test_auto_disabled_never_retunes(self, monkeypatch):
        _svc, audit, controller = make_stack(
            config=AdaptConfig(auto=False)
        )
        audit.drift._machine_state("m0").degraded = True
        monkeypatch.setattr(
            controller, "retune",
            lambda *a, **k: pytest.fail("auto retune fired with auto=False"),
        )
        controller.on_ingest(
            "m0", controller.service._history("m0"),
            [SimpleNamespace(seq=1, probability=0.5, outcome="available")],
        )


class TestFallback:
    def test_miscalibrated_trial_machine_serves_the_baseline(self):
        _svc, audit, controller = make_stack()
        open_trial(controller, "m0")
        # Load the machine's audit window with badly miscalibrated pairs.
        for _ in range(30):
            audit.scoreboard.record("m0", 0.9, False)
        value, source = controller.serve_value("m0", CLOCK, DayType.WEEKDAY, 0.42)
        assert source == "fallback"
        assert 0.0 <= value <= 1.0
        # The steady trace never fails, so the empirical baseline is ~1.
        assert value == pytest.approx(1.0, abs=1e-6)
        entry = controller.status()["machines"]["m0"]
        assert entry["fallback_active"] is True
        assert entry["fallback_served"] == 1

    def test_stable_machine_always_serves_the_model(self):
        _svc, audit, controller = make_stack()
        for _ in range(30):
            audit.scoreboard.record("m0", 0.9, False)
        value, source = controller.serve_value("m0", CLOCK, DayType.WEEKDAY, 0.42)
        assert (value, source) == (0.42, "model")

    def test_well_calibrated_trial_machine_serves_the_model(self):
        _svc, audit, controller = make_stack()
        open_trial(controller, "m0")
        for _ in range(30):
            audit.scoreboard.record("m0", 0.95, True)
        value, source = controller.serve_value("m0", CLOCK, DayType.WEEKDAY, 0.42)
        assert (value, source) == (0.42, "model")

    def test_fallback_disabled_by_config(self):
        _svc, audit, controller = make_stack(
            config=AdaptConfig(fallback_ece_floor=None)
        )
        open_trial(controller, "m0")
        for _ in range(30):
            audit.scoreboard.record("m0", 0.9, False)
        assert controller.fallback is None
        value, source = controller.serve_value("m0", CLOCK, DayType.WEEKDAY, 0.42)
        assert (value, source) == (0.42, "model")


class TestMergeAdaptStatus:
    def test_all_disabled(self):
        assert merge_adapt_status([{"enabled": False}, {}]) == {"enabled": False}

    def test_counters_sum_and_overrides_union(self):
        merged = merge_adapt_status([
            {
                "enabled": True, "auto": True, "retunes": 2, "promotions": 1,
                "abandoned": 0, "shadowing": 1, "overrides": ["a", "b"],
                "machines": {"a": {"retunes": 2, "state": "shadowing"}},
            },
            {"enabled": False},
            {
                "enabled": True, "auto": False, "retunes": 1, "promotions": 0,
                "abandoned": 2, "shadowing": 0, "overrides": ["b", "c"],
                "machines": {"a": {"retunes": 1, "state": "stable"}},
            },
        ])
        assert merged["enabled"] is True
        assert merged["auto"] is True
        assert merged["retunes"] == 3
        assert merged["promotions"] == 1
        assert merged["abandoned"] == 2
        assert merged["shadowing"] == 1
        assert merged["overrides"] == ["a", "b", "c"]
        # The entry that saw the most retunes is authoritative.
        assert merged["machines"]["a"]["state"] == "shadowing"
