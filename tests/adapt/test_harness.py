"""Champion/challenger verdicts: margin gate, hysteresis, abandonment."""

from repro.adapt.harness import (
    VERDICT_ABANDON,
    VERDICT_CONTINUE,
    VERDICT_PROMOTE,
    ChampionChallenger,
)
from repro.adapt.planner import CandidateConfig
from repro.core.classifier import StateClassifier
from repro.core.estimator import EstimatorConfig
from repro.core.online import IncrementalPredictor


def make_harness(**kwargs):
    defaults = dict(
        min_eval=3, promote_margin=0.05, ece_slack=0.05,
        hysteresis=2, max_trial_resolutions=40,
    )
    defaults.update(kwargs)
    return ChampionChallenger(**defaults)


def make_trial(harness):
    return harness.start(
        "m0",
        CandidateConfig(history_days=7),
        IncrementalPredictor(StateClassifier(), EstimatorConfig()),
        backtest_brier=0.1,
    )


def feed(harness, trial, *, champion_p, challenger_p, outcome, n):
    for _ in range(n):
        harness.record(trial, shadow=False, probability=champion_p, outcome=outcome)
        harness.record(trial, shadow=True, probability=challenger_p, outcome=outcome)


class TestMargin:
    def test_none_until_min_eval_on_both_arms(self):
        harness = make_harness()
        trial = make_trial(harness)
        assert harness.margin(trial) is None
        feed(harness, trial, champion_p=0.5, challenger_p=0.9, outcome=True, n=2)
        assert harness.margin(trial) is None  # 2 < min_eval=3
        # One more pair on the champion arm only: still not comparable.
        harness.record(trial, shadow=False, probability=0.5, outcome=True)
        assert harness.margin(trial) is None
        harness.record(trial, shadow=True, probability=0.9, outcome=True)
        margin = harness.margin(trial)
        assert margin is not None
        # champion (0.5-1)^2=0.25 vs challenger (0.9-1)^2=0.01
        assert margin > 0.2

    def test_verdict_continue_before_comparable(self):
        harness = make_harness()
        trial = make_trial(harness)
        assert harness.evaluate(trial) == VERDICT_CONTINUE


class TestHysteresis:
    def test_promote_needs_consecutive_wins(self):
        harness = make_harness(hysteresis=2)
        trial = make_trial(harness)
        feed(harness, trial, champion_p=0.5, challenger_p=0.95, outcome=True, n=3)
        assert harness.evaluate(trial) == VERDICT_CONTINUE  # win 1 of 2
        assert trial.wins == 1
        assert harness.evaluate(trial) == VERDICT_PROMOTE   # win 2 of 2

    def test_a_losing_evaluation_resets_the_streak(self):
        harness = make_harness(hysteresis=2)
        trial = make_trial(harness)
        feed(harness, trial, champion_p=0.5, challenger_p=0.95, outcome=True, n=3)
        assert harness.evaluate(trial) == VERDICT_CONTINUE
        assert trial.wins == 1
        # Challenger takes a string of bad pairs: margin collapses.
        feed(harness, trial, champion_p=0.9, challenger_p=0.1, outcome=True, n=10)
        assert harness.evaluate(trial) == VERDICT_CONTINUE
        assert trial.wins == 0

    def test_ece_slack_blocks_a_miscalibrated_winner(self):
        harness = make_harness(hysteresis=1, ece_slack=0.0, promote_margin=0.0)
        trial = make_trial(harness)
        # Champion: perfectly calibrated coin flips (Brier 0.25, ECE 0).
        for outcome in (True, False, True, False, True, False):
            harness.record(trial, shadow=False, probability=0.5, outcome=outcome)
        # Challenger: lower Brier but systematically under-confident
        # (ECE 0.1) — with zero slack the better Brier must not promote.
        for _ in range(6):
            harness.record(trial, shadow=True, probability=0.9, outcome=True)
        champ = trial.champion_board.snapshot()
        chall = trial.challenger_board.snapshot()
        assert chall["brier"] < champ["brier"]
        assert chall["ece"] > champ["ece"]
        assert harness.evaluate(trial) == VERDICT_CONTINUE
        assert trial.wins == 0


class TestAbandon:
    def test_abandon_at_max_resolutions_without_a_win(self):
        harness = make_harness(max_trial_resolutions=20)
        trial = make_trial(harness)
        # Challenger never beats the margin; pairs keep accumulating.
        feed(harness, trial, champion_p=0.9, challenger_p=0.9, outcome=True, n=10)
        assert trial.resolutions == 20
        assert harness.evaluate(trial) == VERDICT_ABANDON

    def test_abandon_even_when_arms_never_became_comparable(self):
        harness = make_harness(min_eval=100, max_trial_resolutions=10)
        trial = make_trial(harness)
        feed(harness, trial, champion_p=0.9, challenger_p=0.9, outcome=True, n=5)
        assert harness.evaluate(trial) == VERDICT_ABANDON

    def test_describe_reports_both_arms(self):
        harness = make_harness()
        trial = make_trial(harness)
        feed(harness, trial, champion_p=0.6, challenger_p=0.8, outcome=True, n=4)
        desc = trial.describe()
        assert desc["champion_n"] == 4
        assert desc["challenger_n"] == 4
        assert desc["challenger"]["history_days"] == 7
        assert desc["resolutions"] == 8
