"""Retune planner: walk-forward backtest, champion-anchored ranking."""

import math

import numpy as np
import pytest

from repro.adapt.planner import (
    CandidateConfig,
    RetunePlanner,
    default_candidates,
)
from repro.core.classifier import StateClassifier
from repro.core.estimator import EstimatorConfig
from repro.core.windows import SECONDS_PER_DAY, ClockWindow
from repro.traces.trace import MachineTrace

PERIOD = 300.0


def steady_trace(mid="m0", n_days=12, *, fail_hour=None):
    n_per_day = int(SECONDS_PER_DAY / PERIOD)
    load = np.full(n_days * n_per_day, 0.05)
    if fail_hour is not None:
        i0 = int(fail_hour * 3600 / PERIOD)
        for day in range(n_days):
            load[day * n_per_day + i0 : day * n_per_day + i0 + 12] = 0.95
    return MachineTrace(mid, 0.0, PERIOD, load, np.full(load.shape, 400.0))


def shifted_trace(mid="m0", n_days=14, shift_day=8):
    """A daily 9am outage that stops at ``shift_day`` (regime shift).

    A model trained on the full history keeps predicting the outage; a
    short training window sees only the clean post-shift days and wins
    the walk-forward backtest on them.
    """
    n_per_day = int(SECONDS_PER_DAY / PERIOD)
    load = np.full(n_days * n_per_day, 0.05)
    i0 = int(9.0 * 3600 / PERIOD)
    for day in range(0, shift_day):
        load[day * n_per_day + i0 : day * n_per_day + i0 + 24] = 0.95
    return MachineTrace(mid, 0.0, PERIOD, load, np.full(load.shape, 400.0))


@pytest.fixture()
def planner():
    return RetunePlanner(StateClassifier(), step_multiple=5, min_eval=2)


BASE = EstimatorConfig(step_multiple=5)
CLOCKS = [ClockWindow.from_hours(h, 2.0) for h in (1.0, 8.5, 14.0)]


class TestCandidateConfig:
    def test_of_model_roundtrip(self):
        classifier = StateClassifier()
        champ = CandidateConfig.of_model(BASE, classifier)
        assert champ.history_days == BASE.history_days
        assert champ.day_type_split == BASE.day_type_split
        assert champ.estimator_config(BASE) == BASE
        # The same thresholds reuse the base classifier object outright.
        assert champ.classifier(classifier) is classifier

    def test_classifier_rebuilt_for_new_thresholds(self):
        classifier = StateClassifier()
        cand = CandidateConfig(th1=0.10, th2=0.50)
        built = cand.classifier(classifier)
        assert built is not classifier
        assert built.config.thresholds.th1 == 0.10
        assert built.config.thresholds.th2 == 0.50

    def test_default_candidates_dedup_champion(self):
        champ = CandidateConfig(None, True, 0.20, 0.60)
        pool = default_candidates(champ)
        # The champion coincides with a grid point: it must appear once.
        assert pool.count(champ) == 1
        assert len(pool) == len(set(pool))
        assert pool[0] == champ


class TestScoring:
    def test_eval_points_labeled_by_judge(self, planner):
        history = steady_trace(fail_hour=9.0)
        points = planner.eval_points(history, CLOCKS, holdout_days=3)
        assert points
        by_clock = {}
        for day, clock, outcome in points:
            by_clock.setdefault(clock.start_hour, set()).add(outcome)
        # The 9am outage sits inside the 8.5h window on every day.
        assert by_clock[8.5] == {False}
        assert by_clock[1.0] == {True}

    def test_walk_forward_never_trains_on_the_eval_day(self, planner):
        history = steady_trace(n_days=10)
        points = planner.eval_points(history, CLOCKS, holdout_days=3)
        seen_days = {day for day, _c, _y in points}
        assert seen_days  # holdout days exist...
        assert min(seen_days) > history.days(None)[0]  # ...after training data

    def test_infinite_score_when_too_few_points(self, planner):
        history = steady_trace(n_days=2)
        score = planner.score(
            history, CandidateConfig(), [],
            base_config=BASE, base_classifier=StateClassifier(),
        )
        assert math.isinf(score.brier)
        assert score.describe()["brier"] is None


class TestSearch:
    def test_short_window_wins_after_regime_shift(self, planner):
        history = shifted_trace()
        plan = planner.search(
            "m0", history,
            base_config=BASE, base_classifier=StateClassifier(),
            clocks=CLOCKS, holdout_days=4,
            candidates=[
                CandidateConfig(None, True, 0.20, 0.60),   # champion: all history
                CandidateConfig(3, True, 0.20, 0.60),      # post-shift only
            ],
        )
        assert plan.best is not None
        assert plan.best.candidate.history_days == 3
        assert plan.improvement > 0

    def test_ties_break_toward_champion(self, planner):
        # On an unshifted machine every window choice scores identically,
        # so the champion must rank first and improvement must be zero.
        history = steady_trace()
        plan = planner.search(
            "m0", history,
            base_config=BASE, base_classifier=StateClassifier(),
            clocks=CLOCKS, holdout_days=3,
            candidates=[
                CandidateConfig(None, True, 0.20, 0.60),
                CandidateConfig(7, True, 0.20, 0.60),
            ],
        )
        champion = CandidateConfig.of_model(BASE, StateClassifier())
        assert plan.best.candidate == champion
        assert plan.improvement == 0.0

    def test_describe_is_json_shaped(self, planner):
        plan = planner.search(
            "m0", steady_trace(),
            base_config=BASE, base_classifier=StateClassifier(),
            clocks=CLOCKS, holdout_days=3,
        )
        desc = plan.describe()
        assert desc["machine"] == "m0"
        assert desc["champion"] is not None
        assert len(desc["candidates"]) == len(plan.scores)
        import json

        json.dumps(desc)  # strictly serializable
