"""Tests for duration-distribution fitting."""

import math

import numpy as np
import pytest

from repro.analysis.distributions import (
    SUPPORTED,
    best_fit,
    fit_all,
    fit_distribution,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestFitters:
    def test_exponential_recovery(self, rng):
        x = rng.exponential(50.0, 5000)
        fit = fit_distribution(x, "exponential")
        assert fit.params["rate"] == pytest.approx(1 / 50.0, rel=0.05)
        assert fit.ks < 0.03
        assert fit.mean() == pytest.approx(50.0, rel=0.05)

    def test_weibull_recovery(self, rng):
        shape, scale = 1.8, 120.0
        x = scale * rng.weibull(shape, 5000)
        fit = fit_distribution(x, "weibull")
        assert fit.params["shape"] == pytest.approx(shape, rel=0.08)
        assert fit.params["scale"] == pytest.approx(scale, rel=0.08)
        assert fit.ks < 0.03

    def test_lognormal_recovery(self, rng):
        x = rng.lognormal(3.0, 0.8, 5000)
        fit = fit_distribution(x, "lognormal")
        assert fit.params["mu"] == pytest.approx(3.0, abs=0.05)
        assert fit.params["sigma"] == pytest.approx(0.8, rel=0.08)
        assert fit.mean() == pytest.approx(math.exp(3.0 + 0.32), rel=0.1)

    def test_pareto_recovery(self, rng):
        alpha, xmin = 2.5, 10.0
        x = xmin * (1.0 - rng.random(5000)) ** (-1.0 / alpha)
        fit = fit_distribution(x, "pareto")
        assert fit.params["alpha"] == pytest.approx(alpha, rel=0.08)
        assert fit.params["xmin"] == pytest.approx(xmin, rel=0.02)
        assert fit.mean() == pytest.approx(alpha * xmin / (alpha - 1), rel=0.1)

    def test_pareto_heavy_tail_infinite_mean(self, rng):
        x = 10.0 * (1.0 - rng.random(3000)) ** (-1.0 / 0.8)
        fit = fit_distribution(x, "pareto")
        assert math.isinf(fit.mean())

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            fit_distribution([1.0, 2.0, 3.0], "cauchy")

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_distribution([1.0, 2.0], "exponential")  # too few
        with pytest.raises(ValueError):
            fit_distribution([1.0, -2.0, 3.0], "exponential")
        with pytest.raises(ValueError):
            fit_distribution([1.0, float("inf"), 3.0], "exponential")

    def test_cdf_monotone(self, rng):
        x = rng.exponential(10.0, 100)
        for name in SUPPORTED:
            fit = fit_distribution(x, name)
            grid = np.linspace(0.1, 100.0, 50)
            cdf = fit.cdf(grid)
            assert np.all(np.diff(cdf) >= -1e-12)
            assert np.all((cdf >= 0) & (cdf <= 1))


class TestSelection:
    def test_fit_all_sorted(self, rng):
        fits = fit_all(rng.exponential(10.0, 500))
        assert [f.ks for f in fits] == sorted(f.ks for f in fits)
        assert {f.name for f in fits} == set(SUPPORTED)

    def test_best_fit_identifies_family(self, rng):
        # Exponential data: exponential or weibull (shape ~ 1) must win.
        x = rng.exponential(10.0, 3000)
        assert best_fit(x).name in ("exponential", "weibull")
        # Strongly lognormal data: lognormal must win.
        y = rng.lognormal(2.0, 1.5, 3000)
        assert best_fit(y).name == "lognormal"

    def test_degenerate_constant_samples(self):
        fits = fit_all([5.0, 5.0, 5.0, 5.0])
        assert len(fits) == len(SUPPORTED)  # must not crash
