"""Tests for temporal-pattern analysis."""

import numpy as np
import pytest

from repro.analysis.patterns import (
    day_type_separation,
    diurnal_profile,
    diurnal_strength,
    failure_intensity_by_hour,
    load_autocorrelation,
)
from repro.core.windows import SECONDS_PER_DAY, DayType
from repro.traces.trace import MachineTrace


def sine_trace(n_days=7, period=300.0, amplitude=0.3, noise=0.0, seed=0):
    """A trace whose load is a pure diurnal sine (peak at noon)."""
    rng = np.random.default_rng(seed)
    n_per_day = int(SECONDS_PER_DAY / period)
    tod = np.arange(n_per_day) * period
    day = 0.35 - amplitude * np.cos(2 * np.pi * tod / SECONDS_PER_DAY)
    load = np.tile(day, n_days)
    if noise:
        load = load + rng.normal(0.0, noise, load.shape)
    return MachineTrace(
        "sine", 0.0, period, np.clip(load, 0, 1), np.full(load.shape, 400.0)
    )


class TestDiurnalProfile:
    def test_shape_and_peak(self):
        tr = sine_trace()
        prof = diurnal_profile(tr, DayType.WEEKDAY)
        assert prof.mean.shape == (24,)
        assert prof.peak_hour == 12
        assert prof.trough_hour == 0
        assert prof.n_days == 5

    def test_no_days_rejected(self):
        tr = sine_trace(n_days=2)  # Mon+Tue only
        with pytest.raises(ValueError):
            diurnal_profile(tr, DayType.WEEKEND)


class TestDiurnalStrength:
    def test_pure_pattern_near_one(self):
        assert diurnal_strength(sine_trace(), DayType.WEEKDAY) > 0.95

    def test_noise_reduces_strength(self):
        clean = diurnal_strength(sine_trace(), DayType.WEEKDAY)
        noisy = diurnal_strength(sine_trace(noise=0.3, seed=1), DayType.WEEKDAY)
        assert noisy < clean

    def test_flat_trace_zero(self):
        n = int(7 * SECONDS_PER_DAY / 300.0)
        tr = MachineTrace("flat", 0.0, 300.0, np.full(n, 0.3), np.full(n, 400.0))
        assert diurnal_strength(tr, DayType.WEEKDAY) == pytest.approx(0.0, abs=1e-6)


class TestDayTypeSeparation:
    def test_identical_day_types_zero(self):
        tr = sine_trace(n_days=14)
        assert day_type_separation(tr) == pytest.approx(0.0, abs=1e-9)

    def test_different_day_types_positive(self, long_trace):
        # The synthetic lab has distinct weekday/weekend curves.
        assert day_type_separation(long_trace) > 0.1


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        acf = load_autocorrelation(sine_trace(), 1800.0)
        assert acf[0] == pytest.approx(1.0)

    def test_white_noise_decorrelates(self):
        rng = np.random.default_rng(2)
        n = int(2 * SECONDS_PER_DAY / 60.0)
        tr = MachineTrace(
            "wn", 0.0, 60.0,
            np.clip(rng.normal(0.3, 0.05, n), 0, 1), np.full(n, 400.0),
        )
        acf = load_autocorrelation(tr, 600.0)
        assert np.all(np.abs(acf[1:]) < 0.1)

    def test_smooth_signal_correlates(self):
        acf = load_autocorrelation(sine_trace(), 3600.0)
        assert acf[-1] > 0.9  # a 1 h lag barely moves a 24 h sine

    def test_constant_signal(self):
        n = int(SECONDS_PER_DAY / 300.0)
        tr = MachineTrace("c", 0.0, 300.0, np.full(n, 0.5), np.full(n, 400.0))
        acf = load_autocorrelation(tr, 1500.0)
        assert np.allclose(acf, 1.0)


class TestFailureIntensity:
    def test_quiet_trace_zero(self):
        tr = sine_trace(amplitude=0.1)  # never crosses Th2
        intensity = failure_intensity_by_hour(tr)
        assert intensity.sum() == 0.0

    def test_failures_land_in_their_hour(self):
        n_per_day = int(SECONDS_PER_DAY / 60.0)
        load = np.full(5 * n_per_day, 0.05)
        i0 = int(15 * 3600 / 60.0)  # 15:00
        for d in range(5):
            load[d * n_per_day + i0 : d * n_per_day + i0 + 5] = 0.95
        tr = MachineTrace("f", 0.0, 60.0, load, np.full(load.shape, 400.0))
        intensity = failure_intensity_by_hour(tr)
        assert intensity[15] == pytest.approx(1.0)
        assert intensity.sum() == pytest.approx(1.0)

    def test_day_type_filter(self, long_trace):
        wd = failure_intensity_by_hour(long_trace, dtype=DayType.WEEKDAY)
        we = failure_intensity_by_hour(long_trace, dtype=DayType.WEEKEND)
        both = failure_intensity_by_hour(long_trace)
        assert wd.sum() > we.sum()  # the lab fails more on weekdays
        n_wd = len(long_trace.days(DayType.WEEKDAY))
        n_we = len(long_trace.days(DayType.WEEKEND))
        total_events = wd.sum() * n_wd + we.sum() * n_we
        assert both.sum() * long_trace.n_days == pytest.approx(total_events)
