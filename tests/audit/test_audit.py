"""PredictionAudit facade: window pinning, labeling, drift, replay."""

import numpy as np
import pytest

from repro.audit import AuditConfig, DriftConfig, PredictionAudit
from repro.audit.journal import (
    OUTCOME_AVAILABLE,
    OUTCOME_EXCLUDED,
    OUTCOME_FAILED,
)
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.obs.events import scoped_event_log
from repro.obs.metrics import scoped_registry
from repro.traces.trace import MachineTrace

PERIOD = 300.0


def flat_trace(mid="m0", n_days=5, *, outages=()):
    """All-operational trace; ``outages`` are (t0, t1) spans with up=False."""
    n = int(n_days * SECONDS_PER_DAY / PERIOD)
    up = np.ones(n, dtype=bool)
    for t0, t1 in outages:
        up[int(t0 / PERIOD):int(t1 / PERIOD)] = False
    return MachineTrace(
        mid, 0.0, PERIOD, np.full(n, 0.05), np.full(n, 4000.0), up
    )


def audit_with(**kwargs):
    return PredictionAudit(AuditConfig(**kwargs), step_multiple=1)


def hours(day, h):
    return day * SECONDS_PER_DAY + h * 3600.0


class TestTargetWindow:
    def test_pins_next_matching_day(self):
        # History ends at day-5 start (a Saturday; day 0 is a Monday):
        # the next weekday occurrence of a 9-11h window is Monday, day 7.
        audit = audit_with()
        head = flat_trace(n_days=5)
        record = audit.record_prediction(
            "predict", "m0", ClockWindow.from_hours(9.0, 2.0), DayType.WEEKDAY,
            0.9, history_end=head.end_time,
        )
        assert record.window_start == hours(7, 9)
        assert record.window_duration == 2 * 3600.0

    def test_weekend_target_is_saturday(self):
        audit = audit_with()
        head = flat_trace(n_days=5)
        record = audit.record_prediction(
            "predict", "m0", ClockWindow.from_hours(9.0, 2.0), DayType.WEEKEND,
            0.9, history_end=head.end_time,
        )
        assert record.window_start == hours(5, 9)

    def test_same_day_window_still_ahead(self):
        # History ends Monday 08:00; a 9-11h weekday window is later that
        # same day, so the target is day 7 itself, not day 8.
        audit = audit_with()
        record = audit.record_prediction(
            "predict", "m0", ClockWindow.from_hours(9.0, 2.0), DayType.WEEKDAY,
            0.9, history_end=hours(7, 8),
        )
        assert record.window_start == hours(7, 9)

    def test_elapsed_window_rolls_to_next_matching_day(self):
        # History ends Monday 12:00: the 9-11h window already elapsed
        # today, so the claim is about Tuesday.
        audit = audit_with()
        record = audit.record_prediction(
            "predict", "m0", ClockWindow.from_hours(9.0, 2.0), DayType.WEEKDAY,
            0.9, history_end=hours(7, 12),
        )
        assert record.window_start == hours(8, 9)

    def test_unscorable_probabilities_not_journaled(self):
        audit = audit_with()
        clock = ClockWindow.from_hours(9.0, 2.0)
        assert audit.record_prediction(
            "predict", "m0", clock, DayType.WEEKDAY, float("nan"), history_end=0.0
        ) is None
        assert audit.record_prediction(
            "predict", "m0", clock, DayType.WEEKDAY, 1.5, history_end=0.0
        ) is None
        assert audit.journal.n_predictions == 0
        assert audit.n_pending == 0


class TestResolution:
    def record(self, audit, start_h, p=0.9, dur_h=1.0):
        return audit.record_prediction(
            "predict", "m0", ClockWindow.from_hours(start_h, dur_h),
            DayType.WEEKDAY, p, history_end=hours(7, 0),
        )

    def test_available_failed_excluded_labels(self):
        audit = audit_with()
        self.record(audit, 1.0)   # clean -> available
        self.record(audit, 5.0)   # outage strictly inside -> failed
        self.record(audit, 9.0)   # outage covering the start -> excluded
        grown = flat_trace(
            n_days=9,
            outages=[
                (hours(7, 5.5), hours(7, 5.75)),
                (hours(7, 8.5), hours(7, 9.5)),
            ],
        )
        resolutions = audit.observe_ingest("m0", grown)
        assert [r.outcome for r in resolutions] == [
            OUTCOME_AVAILABLE, OUTCOME_FAILED, OUTCOME_EXCLUDED,
        ]
        # excluded outcomes are journaled but never scored
        assert audit.scoreboard.snapshot()["n"] == 2
        assert audit.n_pending == 0
        quality = audit.quality()
        assert quality["resolved"] == {
            "available": 1, "failed": 1, "excluded": 1,
        }

    def test_unelapsed_windows_stay_pending(self):
        audit = audit_with()
        self.record(audit, 1.0)
        # History grows only to the end of day 6: the Monday (day 7)
        # window has not elapsed yet.
        assert audit.observe_ingest("m0", flat_trace(n_days=7)) == []
        assert audit.n_pending == 1
        assert audit.observe_ingest("m0", flat_trace(n_days=9)) != []
        assert audit.n_pending == 0

    def test_history_replaced_behind_window_excludes(self):
        audit = audit_with()
        self.record(audit, 1.0)
        # A register() swapped in a history that starts after the
        # promised window: nothing left to score.
        n = int(2 * SECONDS_PER_DAY / PERIOD)
        late = MachineTrace(
            "m0", hours(8, 0), PERIOD,
            np.full(n, 0.05), np.full(n, 4000.0), np.ones(n, dtype=bool),
        )
        resolutions = audit.observe_ingest("m0", late)
        assert [r.outcome for r in resolutions] == [OUTCOME_EXCLUDED]

    def test_pending_bounded_per_machine(self):
        audit = audit_with(max_pending_per_machine=3)
        for start in (1.0, 3.0, 5.0, 7.0, 9.0):
            self.record(audit, start)
        assert audit.n_pending == 3
        assert audit.pending_dropped == 2
        # the survivors are the newest three
        starts = sorted(
            r.window_start for r in audit.journal.pending.values()
        )
        assert starts == [hours(7, 5), hours(7, 7), hours(7, 9)]


class TestDriftWiring:
    def test_brier_breach_fires_alarm_and_event(self):
        with scoped_registry(), scoped_event_log() as log:
            audit = audit_with(
                node_id="n7",
                drift=DriftConfig(min_samples=3, brier_threshold=0.2,
                                  ece_threshold=None, ph_lambda=100.0),
            )
            for start in (1.0, 3.0, 5.0, 7.0):
                audit.record_prediction(
                    "predict", "m0", ClockWindow.from_hours(start, 1.0),
                    DayType.WEEKDAY, 0.95, history_end=hours(7, 0),
                )
            outages = [(hours(7, h) + 1200, hours(7, h) + 2400)
                       for h in (1, 3, 5, 7)]
            audit.observe_ingest("m0", flat_trace(n_days=9, outages=outages))
            status = audit.drift.status()
            assert status["degraded"] is True
            assert status["alarms"] >= 1
            assert status["last_alarm"]["reason"] == "brier"
            events = log.events("model_degraded", min_severity="warning")
            assert events and events[0].fields["node"] == "n7"
            assert audit.quality()["drift"]["degraded"] is True

    def test_healthy_stream_raises_nothing(self):
        with scoped_registry(), scoped_event_log() as log:
            audit = audit_with(drift=DriftConfig(min_samples=3))
            for start in (1.0, 3.0, 5.0, 7.0):
                audit.record_prediction(
                    "predict", "m0", ClockWindow.from_hours(start, 1.0),
                    DayType.WEEKDAY, 0.99, history_end=hours(7, 0),
                )
            audit.observe_ingest("m0", flat_trace(n_days=9))
            assert audit.drift.status()["alarms"] == 0
            assert log.events("model_degraded") == []


class TestReplay:
    def test_restart_rebuilds_state_without_reemitting(self, tmp_path):
        config = AuditConfig(
            directory=tmp_path,
            drift=DriftConfig(min_samples=2, brier_threshold=0.2,
                              ece_threshold=None, ph_lambda=100.0),
        )
        with scoped_registry(), scoped_event_log():
            audit = PredictionAudit(config, step_multiple=1)
            for start in (1.0, 3.0, 5.0):
                audit.record_prediction(
                    "predict", "m0", ClockWindow.from_hours(start, 1.0),
                    DayType.WEEKDAY, 0.95, history_end=hours(7, 0),
                )
            outages = [(hours(7, 1) + 1200, hours(7, 1) + 2400)]
            audit.observe_ingest("m0", flat_trace(n_days=9, outages=outages))
            audit.record_prediction(
                "predict", "m0", ClockWindow.from_hours(9.0, 1.0),
                DayType.WEEKDAY, 0.5, history_end=hours(9, 0),
            )
            before = audit.quality()
            audit.close()

        with scoped_registry(), scoped_event_log() as log:
            reborn = PredictionAudit(config, step_multiple=1)
            after = reborn.quality()
            assert after["journaled"] == before["journaled"]
            assert after["resolved"] == before["resolved"]
            assert after["pending"] == before["pending"]
            assert after["aggregate"]["n"] == before["aggregate"]["n"]
            assert after["aggregate"]["brier"] == pytest.approx(
                before["aggregate"]["brier"]
            )
            assert after["drift"]["alarms"] == before["drift"]["alarms"]
            # replay rebuilds detector state silently
            assert log.events("model_degraded") == []
            reborn.close()

    def test_context_manager_closes_journal(self, tmp_path):
        with PredictionAudit(AuditConfig(directory=tmp_path)) as audit:
            audit.record_prediction(
                "predict", "m0", ClockWindow.from_hours(9.0, 1.0),
                DayType.WEEKDAY, 0.9, history_end=0.0,
            )
        reopened = PredictionAudit(AuditConfig(directory=tmp_path))
        assert reopened.journal.recovered_truncated_bytes == 0
        assert reopened.journal.n_predictions == 1
        reopened.close()


class TestQualityShape:
    def test_quality_is_json_strict(self):
        import json

        audit = audit_with()
        json.dumps(audit.quality(), allow_nan=False)
        audit.record_prediction(
            "predict", "m0", ClockWindow.from_hours(9.0, 1.0),
            DayType.WEEKDAY, 0.9, history_end=0.0,
        )
        quality = audit.quality()
        json.dumps(quality, allow_nan=False)
        assert quality["machines"]["m0"]["pending"] == 1

    def test_machine_filter(self):
        audit = audit_with()
        for mid in ("a", "b"):
            audit.record_prediction(
                "predict", mid, ClockWindow.from_hours(9.0, 1.0),
                DayType.WEEKDAY, 0.9, history_end=0.0,
            )
        quality = audit.quality(machine="a")
        assert list(quality["machines"]) == ["a"]
        assert quality["pending"] == 2  # counters stay process-wide
