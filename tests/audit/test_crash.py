"""Crash-durability of the prediction journal: SIGKILL, then recover.

Mirrors the store crash suite (``tests/store/test_crash.py``): with
``fsync=always`` every *acknowledged* journal append survives a process
kill — recovery returns at least the acknowledged prefix in sequence
order and truncates any torn tail without raising.  The drained-shutdown
test asserts the complement: a graceful ``close()`` leaves no torn tail
at all.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.audit import AuditConfig, PredictionAudit
from repro.audit.journal import PredictionJournal

_REPO_ROOT = Path(__file__).resolve().parents[2]

_CHILD_SCRIPT = """
import sys

from repro.audit.journal import PredictionJournal, PredictionRecord

root, n_records = sys.argv[1], int(sys.argv[2])
journal = PredictionJournal(root, fsync="always")
for i in range(n_records):
    seq = journal.next_seq()
    journal.append_prediction(PredictionRecord(
        seq=seq, op="predict", machine="m%d" % (i % 3), probability=0.5,
        window_start=float(i) * 3600.0, window_duration=3600.0,
        day_type="weekday", issued_at=float(i), node="crash",
    ))
    print("ACK %d" % seq, flush=True)
print("DONE", flush=True)
"""


def spawn_journaler(root, n_records=200):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, str(root), str(n_records)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(_REPO_ROOT),
    )


def kill_after_acks(proc, n_acks):
    """Read acks until ``n_acks`` seen, then SIGKILL; returns last acked seq."""
    acked = 0
    seen = 0
    deadline = time.monotonic() + 60.0
    while seen < n_acks:
        assert time.monotonic() < deadline, "journaler produced no acks in time"
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"journaler exited early: {proc.stderr.read()[-2000:]}"
            )
        if line.startswith("ACK "):
            acked = int(line.split()[1])
            seen += 1
    proc.kill()  # SIGKILL: no atexit, no flush, no close
    proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()
    return acked


class TestSigkillDurability:
    def test_acked_records_survive_sigkill(self, tmp_path):
        root = tmp_path / "journal"
        proc = spawn_journaler(root)
        acked = kill_after_acks(proc, n_acks=8)
        assert acked >= 8

        journal = PredictionJournal(root)
        try:
            # Every acknowledged record is back; one final un-acked record
            # may also have landed, but never a torn or reordered one.
            assert journal.n_predictions >= acked
            seqs = sorted(journal.predictions)
            assert seqs == list(range(1, len(seqs) + 1))
            assert journal.next_seq() == len(seqs) + 1
        finally:
            journal.close()

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        root = tmp_path / "journal"
        proc = spawn_journaler(root)
        acked = kill_after_acks(proc, n_acks=5)

        # Simulate the torn half-record a mid-write crash leaves behind.
        segments = sorted(root.glob("audit-*.wal"))
        assert segments
        with open(segments[-1], "ab") as fh:
            fh.write(b"\x85\x00\x00\x00GARBAGE")

        journal = PredictionJournal(root)
        try:
            assert journal.recovered_truncated_bytes > 0
            assert journal.n_predictions >= acked
            # Append-ready after truncation: the next record lands cleanly.
            nxt = journal.next_seq()
            from repro.audit.journal import PredictionRecord

            journal.append_prediction(PredictionRecord(
                seq=nxt, op="predict", machine="m0", probability=0.5,
                window_start=0.0, window_duration=3600.0,
                day_type="weekday", issued_at=0.0, node="crash",
            ))
        finally:
            journal.close()
        reopened = PredictionJournal(root)
        assert reopened.n_predictions >= acked + 1
        assert reopened.recovered_truncated_bytes == 0
        reopened.close()

    def test_sigterm_drain_leaves_no_torn_tail(self, tmp_path):
        # The serve path closes the audit inside its drain handler; this
        # is the facade-level contract that drain relies on: close() then
        # reopen recovers everything with zero truncated bytes.
        audit = PredictionAudit(AuditConfig(directory=tmp_path))
        from repro.core.windows import ClockWindow, DayType

        for start in (1.0, 3.0, 5.0):
            audit.record_prediction(
                "predict", "m0", ClockWindow.from_hours(start, 1.0),
                DayType.WEEKDAY, 0.8, history_end=0.0,
            )
        audit.close()
        audit.close()  # drain + finally both close: must stay idempotent

        reopened = PredictionAudit(AuditConfig(directory=tmp_path))
        assert reopened.journal.recovered_truncated_bytes == 0
        assert reopened.journal.n_predictions == 3
        assert reopened.n_pending == 3
        reopened.close()
