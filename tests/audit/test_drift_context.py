"""Regression: alarms carry model-clock context; promotions reset drift.

An operator (or the retune planner) lining an alarm up against the
trace needs the alarm's position on the *model clock* — the resolved
window's end time, its sample slot, its day index — not the wall time
the resolution happened to be processed at.  And after a promotion the
machine's Page-Hinkley test must restart: the new model answers from
different statistics, so judging it against the old model's error mean
would re-alarm spuriously (or mask a real regression).
"""

from repro.audit import AuditConfig, DriftConfig, PredictionAudit
from repro.audit.drift import DriftDetector
from repro.core.windows import SECONDS_PER_DAY, day_index

PERIOD = 300.0

SENSITIVE = DriftConfig(
    min_samples=3,
    brier_threshold=None,
    ece_threshold=None,
    ph_delta=0.0,
    ph_lambda=0.05,
)


def alarm_machine(detector, machine, *, start_time, n=8):
    """Feed a clean stream, then one large error that trips the alarm.

    Stops right at the alarm: further constant errors would not cross
    the (reset) Page-Hinkley test again and the healthy streak would
    clear the latch.
    """
    t = start_time
    for error in [0.0] * n + [1.0]:
        detector.update(
            error, {"n": 100, "brier": 0.1, "ece": 0.05},
            machine=machine, model_time=t, sample_period=PERIOD,
        )
        t += PERIOD
    return t


class TestAlarmClockContext:
    def test_machine_alarm_records_slot_time_and_day(self):
        detector = DriftDetector(SENSITIVE)
        start = 3 * SECONDS_PER_DAY + 7 * 3600.0
        alarm_machine(detector, "m0", start_time=start)

        status = detector.status()
        assert "m0" in status["machines"]
        last = status["machines"]["m0"]["last_alarm"]
        assert last["reason"] == "page_hinkley"
        assert last["machine"] == "m0"
        assert last["model_time"] is not None
        assert last["slot"] == int(last["model_time"] // PERIOD)
        assert last["day"] == day_index(last["model_time"])
        assert last["day"] == 3
        # The alarm fired inside the fed range, not at a wall-clock stamp.
        assert start <= last["model_time"] < start + 9 * PERIOD

    def test_aggregate_alarm_carries_the_same_context(self):
        detector = DriftDetector(SENSITIVE)
        alarm_machine(detector, "m0", start_time=10 * SECONDS_PER_DAY)
        last = detector.status()["last_alarm"]
        assert last is not None
        assert last["day"] == 10
        assert last["slot"] == int(last["model_time"] // PERIOD)

    def test_context_is_none_safe_without_a_model_time(self):
        detector = DriftDetector(SENSITIVE)
        for error in [0.0] * 4 + [1.0] * 6:
            detector.update(error, {"n": 100}, machine="m0")
        last = detector.status()["machines"]["m0"]["last_alarm"]
        assert last["model_time"] is None
        assert last["slot"] is None
        assert last["day"] is None

    def test_quality_snapshot_exposes_the_alarm_context(self):
        """The served ``quality`` result carries the per-machine alarm."""
        audit = PredictionAudit(AuditConfig(node_id="n0", drift=SENSITIVE))
        try:
            alarm_machine(audit.drift, "m0", start_time=5 * SECONDS_PER_DAY)
            quality = audit.quality()
        finally:
            audit.close()
        machines = quality["drift"]["machines"]
        assert machines["m0"]["degraded"] is True
        last = machines["m0"]["last_alarm"]
        assert last["day"] == 5
        assert last["slot"] == int(last["model_time"] // PERIOD)


class TestResetAfterPromotion:
    def test_reset_machine_clears_state_and_test_statistics(self):
        detector = DriftDetector(SENSITIVE)
        t = alarm_machine(detector, "m0", start_time=0.0)
        assert detector.machine_degraded("m0")

        detector.reset_machine("m0")
        assert not detector.machine_degraded("m0")
        assert "m0" not in detector.status()["machines"]

        # Post-promotion errors start a fresh Page-Hinkley: a healthy
        # stream does NOT re-alarm against the old error mean.
        for _ in range(10):
            detector.update(
                0.0, {"n": 100}, machine="m0",
                model_time=t, sample_period=PERIOD,
            )
            t += PERIOD
        assert not detector.machine_degraded("m0")
        assert "m0" not in detector.status()["machines"]

    def test_reset_is_scoped_to_one_machine(self):
        detector = DriftDetector(SENSITIVE)
        alarm_machine(detector, "m0", start_time=0.0)
        alarm_machine(detector, "m1", start_time=0.0)
        detector.reset_machine("m0")
        assert not detector.machine_degraded("m0")
        assert detector.machine_degraded("m1")

    def test_reset_of_an_unknown_machine_is_a_no_op(self):
        DriftDetector(SENSITIVE).reset_machine("ghost")
