"""Journal durability: recovery, torn tails, segment rolls, memory mode."""

import pytest

from repro.audit.journal import (
    OUTCOME_AVAILABLE,
    OUTCOMES,
    PredictionJournal,
    PredictionRecord,
    ResolutionRecord,
)


def prediction(seq, machine="m", p=0.8, start=0.0):
    return PredictionRecord(
        seq=seq, op="predict", machine=machine, probability=p,
        window_start=start, window_duration=3600.0, day_type="weekday",
        issued_at=1.0, node="n0",
    )


def resolution(seq, machine="m", outcome=OUTCOME_AVAILABLE, p=0.8):
    return ResolutionRecord(
        seq=seq, machine=machine, outcome=outcome, probability=p, resolved_at=2.0
    )


class TestRecordTypes:
    def test_window_end(self):
        assert prediction(1, start=100.0).window_end == 3700.0

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError, match="unknown outcome"):
            resolution(1, outcome="shrug")
        for outcome in OUTCOMES:
            resolution(1, outcome=outcome)  # all legal labels construct


class TestMemoryJournal:
    def test_state_machine_without_directory(self):
        journal = PredictionJournal(None)
        assert not journal.durable
        journal.append_prediction(prediction(journal.next_seq()))
        journal.append_prediction(prediction(journal.next_seq()))
        journal.append_resolution(resolution(1))
        assert journal.n_predictions == 2
        assert journal.n_resolutions == 1
        assert set(journal.pending) == {2}
        journal.close()  # no-op, must not raise


class TestDurableJournal:
    def test_roundtrip_and_pending_rebuild(self, tmp_path):
        with PredictionJournal(tmp_path) as journal:
            for _ in range(5):
                journal.append_prediction(prediction(journal.next_seq()))
            journal.append_resolution(resolution(1))
            journal.append_resolution(resolution(3))
        reopened = PredictionJournal(tmp_path)
        assert reopened.durable
        assert reopened.n_predictions == 5
        assert reopened.n_resolutions == 2
        assert set(reopened.pending) == {2, 4, 5}
        assert reopened.recovered_records == 7
        assert reopened.recovered_truncated_bytes == 0
        assert reopened.next_seq() == 6
        reopened.close()

    def test_torn_tail_truncated(self, tmp_path):
        with PredictionJournal(tmp_path) as journal:
            for _ in range(4):
                journal.append_prediction(prediction(journal.next_seq()))
        segment = sorted(tmp_path.glob("audit-*.wal"))[-1]
        whole = segment.read_bytes()
        segment.write_bytes(whole[:-3])  # tear the last record's CRC
        reopened = PredictionJournal(tmp_path)
        assert reopened.n_predictions == 3
        assert reopened.recovered_truncated_bytes > 0
        # appending after recovery still works and survives another reopen
        reopened.append_prediction(prediction(reopened.next_seq()))
        reopened.close()
        final = PredictionJournal(tmp_path)
        assert final.n_predictions == 4
        assert final.recovered_truncated_bytes == 0
        final.close()

    def test_segment_roll(self, tmp_path):
        journal = PredictionJournal(tmp_path, max_segment_bytes=256)
        for _ in range(20):
            journal.append_prediction(prediction(journal.next_seq()))
        journal.close()
        segments = sorted(tmp_path.glob("audit-*.wal"))
        assert len(segments) > 1
        reopened = PredictionJournal(tmp_path, max_segment_bytes=256)
        assert reopened.n_predictions == 20
        reopened.close()

    def test_garbled_record_skipped(self, tmp_path):
        from repro.store.wal import FsyncPolicy, SegmentWriter

        writer = SegmentWriter(tmp_path / "audit-00000000.wal",
                               FsyncPolicy.parse("never"))
        writer.append(prediction(1).to_payload())
        writer.append(b'{"kind": "mystery", "x": 1}')
        writer.append(b"not json at all")
        writer.append(prediction(2).to_payload())
        writer.close(sync=True)
        journal = PredictionJournal(tmp_path)
        assert journal.n_predictions == 2
        assert set(journal.predictions) == {1, 2}
        journal.close()

    def test_records_iterates_predictions_then_resolutions(self, tmp_path):
        with PredictionJournal(tmp_path) as journal:
            journal.append_prediction(prediction(journal.next_seq()))
            journal.append_resolution(resolution(1))
            records = list(journal.records())
        assert isinstance(records[0], PredictionRecord)
        assert isinstance(records[1], ResolutionRecord)
