"""Scoreboard math: metrics match core/calibration; bins merge exactly."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.scoreboard import (
    Scoreboard,
    bin_index,
    bins_from_pairs,
    derive_metrics,
    empty_bins,
    merge_bins,
    merge_machine_snapshots,
    merge_quality,
)
from repro.core.calibration import (
    brier_score,
    expected_calibration_error,
    reliability_diagram,
)

pairs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
)


def split(pairs):
    return [p for p, _ in pairs], [y for _, y in pairs]


class TestDeriveMetrics:
    @given(pairs=pairs_strategy)
    @settings(max_examples=100, deadline=None)
    def test_matches_core_calibration(self, pairs):
        predictions, outcomes = split(pairs)
        metrics = derive_metrics(bins_from_pairs(predictions, outcomes, 10))
        dec = brier_score(predictions, outcomes, n_bins=10)
        assert metrics["brier_binned"] == pytest.approx(dec.brier, abs=1e-9)
        assert metrics["reliability"] == pytest.approx(dec.reliability, abs=1e-9)
        assert metrics["resolution"] == pytest.approx(dec.resolution, abs=1e-9)
        assert metrics["uncertainty"] == pytest.approx(dec.uncertainty, abs=1e-9)
        ece = expected_calibration_error(predictions, outcomes, n_bins=10)
        assert metrics["ece"] == pytest.approx(ece, abs=1e-9)
        raw = sum(
            (p - (1.0 if y else 0.0)) ** 2 for p, y in zip(predictions, outcomes)
        ) / len(predictions)
        assert metrics["brier"] == pytest.approx(raw, abs=1e-12)

    def test_bin_rule_matches_calibration_clip(self):
        # core/calibration clips int(p * n) into [0, n-1]; p = 1.0 must
        # land in the top bin, not overflow.
        assert bin_index(1.0, 10) == 9
        assert bin_index(0.0, 10) == 0
        assert bin_index(0.55, 10) == 5

    def test_empty_window_yields_none_metrics(self):
        metrics = derive_metrics(empty_bins(10))
        assert metrics["n"] == 0
        assert metrics["brier"] is None
        assert metrics["ece"] is None

    def test_reliability_diagram_equivalence(self):
        predictions = [0.1, 0.12, 0.9, 0.95, 0.5]
        outcomes = [False, False, True, True, False]
        bins = bins_from_pairs(predictions, outcomes, 10)
        diagram = reliability_diagram(predictions, outcomes, n_bins=10)
        populated = [
            (row[1] / row[0], row[2] / row[0], int(row[0]))
            for row in bins
            if row[0]
        ]
        assert len(populated) == len(diagram)
        for (p1, y1, c1), (p2, y2, c2) in zip(populated, diagram):
            assert p1 == pytest.approx(p2, abs=1e-12)
            assert y1 == pytest.approx(y2, abs=1e-12)
            assert c1 == c2


class TestMergeBins:
    @given(shards=st.lists(pairs_strategy, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_merged_bins_equal_pooled_pairs(self, shards):
        # The invariant the cluster router is built on: summing per-node
        # bins gives exactly the bins of the pooled raw pairs.
        per_shard = [bins_from_pairs(*split(s), 10) for s in shards]
        merged = merge_bins(per_shard)
        pooled = [pair for shard in shards for pair in shard]
        expected = bins_from_pairs(*split(pooled), 10)
        for row_m, row_e in zip(merged, expected):
            for a, b in zip(row_m, row_e):
                assert a == pytest.approx(b, abs=1e-9)
        metrics_m = derive_metrics(merged)
        metrics_e = derive_metrics(expected)
        for key in ("brier", "brier_binned", "ece", "reliability"):
            if metrics_e[key] is None:
                assert metrics_m[key] is None
            else:
                assert metrics_m[key] == pytest.approx(metrics_e[key], abs=1e-9)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="widths"):
            merge_bins([empty_bins(10), empty_bins(5)])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_bins([])


class TestMergeQuality:
    def _node(self, node, machine_pairs):
        board = Scoreboard(window=64, n_bins=10)
        for machine, p, y in machine_pairs:
            board.record(machine, p, y)
        machines = {m: board.snapshot(m) for m in board.machine_ids()}
        return {
            "enabled": True,
            "node": node,
            "journaled": {"predict": len(machine_pairs)},
            "pending": 1,
            "resolved": {"available": len(machine_pairs)},
            "aggregate": board.snapshot(),
            "machines": machines,
            "drift": {"degraded": node == "b", "alarms": 2},
        }

    def test_merge_sums_not_dedupes(self):
        a = self._node("a", [("m1", 0.8, True), ("m2", 0.3, False)])
        b = self._node("b", [("m1", 0.8, True), ("m3", 0.6, True)])
        merged = merge_quality([a, b])
        assert merged["enabled"] is True
        assert merged["nodes"] == ["a", "b"]
        # m1 was scored once on each node: both pairs count.
        assert merged["machines"]["m1"]["n"] == 2
        assert merged["aggregate"]["n"] == 4
        assert merged["journaled"] == {"predict": 4}
        assert merged["resolved"] == {"available": 4}
        assert merged["pending"] == 2
        assert merged["drift"]["degraded"] is True
        assert merged["drift"]["alarms"] == 4
        assert merged["drift"]["nodes_degraded"] == ["b"]

    def test_merged_aggregate_equals_pooled(self):
        a = self._node("a", [("m1", 0.8, True), ("m2", 0.3, False)])
        b = self._node("b", [("m1", 0.7, False), ("m3", 0.6, True)])
        merged = merge_quality([a, b])
        pooled = bins_from_pairs([0.8, 0.3, 0.7, 0.6], [True, False, False, True], 10)
        expected = derive_metrics(pooled)
        assert merged["aggregate"]["brier"] == pytest.approx(
            expected["brier"], abs=1e-12
        )
        assert merged["aggregate"]["ece"] == pytest.approx(expected["ece"], abs=1e-12)

    def test_disabled_nodes_are_skipped(self):
        a = self._node("a", [("m1", 0.8, True)])
        merged = merge_quality([{"enabled": False}, a])
        assert merged["nodes"] == ["a"]
        assert merged["aggregate"]["n"] == 1

    def test_all_disabled(self):
        merged = merge_quality([{"enabled": False}, {"enabled": False}])
        assert merged == {"enabled": False, "nodes": []}

    def test_bin_width_disagreement_rejected(self):
        a = self._node("a", [("m1", 0.8, True)])
        b = self._node("b", [("m1", 0.8, True)])
        b["aggregate"] = derive_metrics(empty_bins(5))
        with pytest.raises(ValueError, match="bin width"):
            merge_quality([a, b])


class TestScoreboard:
    def test_sliding_window_evicts_oldest(self):
        board = Scoreboard(window=3, n_bins=10)
        for i in range(5):
            board.record("m", 0.1 * i, True)
        predictions, outcomes = board.pairs()
        assert predictions == pytest.approx([0.2, 0.3, 0.4])
        assert board.snapshot()["n"] == 3
        assert board.n_recorded == 5

    def test_per_machine_and_aggregate_scopes(self):
        board = Scoreboard(window=16, n_bins=10)
        board.record("m1", 0.9, True)
        board.record("m2", 0.2, False)
        assert board.machine_ids() == ["m1", "m2"]
        assert board.snapshot("m1")["n"] == 1
        assert board.snapshot()["n"] == 2
        assert board.snapshot("missing")["n"] == 0

    def test_rejects_out_of_range_prediction(self):
        board = Scoreboard()
        with pytest.raises(ValueError, match="probability"):
            board.record("m", 1.5, True)

    def test_snapshot_is_json_safe(self):
        import json

        board = Scoreboard(window=4, n_bins=10)
        json.dumps(board.snapshot(), allow_nan=False)  # n == 0: all None
        board.record("m", 0.5, True)
        dumped = json.dumps(board.snapshot(), allow_nan=False)
        assert not any(math.isnan(v) for v in json.loads(dumped)["bins"][5])
