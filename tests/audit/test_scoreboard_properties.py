"""Property tests for the scoreboard's mergeable sufficient statistics.

The cluster router leans entirely on one invariant: per-bin sufficient
statistics ``(count, sum_pred, sum_out, sum_sq_err)`` can be summed
across nodes in any order and still derive exactly the metrics of the
pooled raw pairs.  Hypothesis drives arbitrary pair sets through
``merge_bins`` / ``merge_machine_snapshots`` and checks

* order-insensitivity (a scatter's gather order is nondeterministic),
* associativity (tree-shaped merges equal flat merges), and
* pooled equality (merged metrics == metrics of the concatenated pairs).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.scoreboard import (
    bins_from_pairs,
    derive_metrics,
    empty_bins,
    merge_bins,
    merge_machine_snapshots,
)

N_BINS = 10

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
pair_lists = st.lists(st.tuples(probabilities, st.booleans()), max_size=40)
node_sets = st.lists(pair_lists, min_size=1, max_size=4)

METRIC_KEYS = (
    "brier", "brier_binned", "reliability", "resolution",
    "uncertainty", "ece", "base_rate", "mean_prediction",
)


def to_bins(pairs):
    return bins_from_pairs([p for p, _ in pairs], [y for _, y in pairs], N_BINS)


def assert_bins_close(a, b):
    assert len(a) == len(b)
    for row_a, row_b in zip(a, b):
        for x, y in zip(row_a, row_b):
            assert x == pytest.approx(y, rel=1e-9, abs=1e-12)


def assert_metrics_close(a, b):
    assert a["n"] == b["n"]
    for key in METRIC_KEYS:
        if a[key] is None or b[key] is None:
            assert a[key] is None and b[key] is None
        else:
            assert a[key] == pytest.approx(b[key], rel=1e-9, abs=1e-12)


class TestMergeBins:
    @settings(max_examples=60, deadline=None)
    @given(node_sets)
    def test_order_insensitive(self, nodes):
        tables = [to_bins(pairs) for pairs in nodes]
        assert_bins_close(merge_bins(tables), merge_bins(list(reversed(tables))))

    @settings(max_examples=60, deadline=None)
    @given(node_sets, node_sets)
    def test_associative(self, left, right):
        a = [to_bins(pairs) for pairs in left]
        b = [to_bins(pairs) for pairs in right]
        flat = merge_bins(a + b)
        tree = merge_bins([merge_bins(a), merge_bins(b)])
        assert_bins_close(flat, tree)

    @settings(max_examples=100, deadline=None)
    @given(node_sets)
    def test_merged_metrics_equal_pooled_computation(self, nodes):
        merged = derive_metrics(merge_bins([to_bins(pairs) for pairs in nodes]))
        pooled = [pair for pairs in nodes for pair in pairs]
        expected = derive_metrics(to_bins(pooled))
        assert_metrics_close(merged, expected)

    def test_identity_element(self):
        bins = to_bins([(0.3, True), (0.8, False)])
        assert_bins_close(merge_bins([bins, empty_bins(N_BINS)]), bins)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="widths"):
            merge_bins([empty_bins(10), empty_bins(5)])


class TestMergeMachineSnapshots:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["m0", "m1", "m2"]), pair_lists, max_size=3
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_per_machine_merge_equals_pooled(self, per_node_pairs):
        per_node = []
        for machines in per_node_pairs:
            node = {}
            for machine, pairs in machines.items():
                snap = derive_metrics(to_bins(pairs))
                snap["pending"] = len(pairs) % 3
                node[machine] = snap
            per_node.append(node)

        merged = merge_machine_snapshots(per_node)

        pooled: dict[str, list] = {}
        pending: dict[str, int] = {}
        for machines in per_node_pairs:
            for machine, pairs in machines.items():
                pooled.setdefault(machine, []).extend(pairs)
                pending[machine] = pending.get(machine, 0) + len(pairs) % 3
        assert set(merged) == set(pooled)
        for machine, pairs in pooled.items():
            assert_metrics_close(merged[machine], derive_metrics(to_bins(pairs)))
            assert merged[machine]["pending"] == pending[machine]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.dictionaries(st.sampled_from(["a", "b"]), pair_lists,
                                 max_size=2),
                 min_size=1, max_size=3)
    )
    def test_order_insensitive(self, per_node_pairs):
        per_node = []
        for machines in per_node_pairs:
            node = {}
            for machine, pairs in machines.items():
                snap = derive_metrics(to_bins(pairs))
                snap["pending"] = 0
                node[machine] = snap
            per_node.append(node)
        forward = merge_machine_snapshots(per_node)
        backward = merge_machine_snapshots(list(reversed(per_node)))
        assert set(forward) == set(backward)
        for machine in forward:
            assert_metrics_close(forward[machine], backward[machine])
