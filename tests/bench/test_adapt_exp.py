"""The ADAPT experiment: self-healing must actually heal.

Runs the quick scale once (a few seconds) and asserts the acceptance
criteria of the adapt tier: the injected regime shift raises an alarm,
the alarm leads to a promotion within a finite number of days, and the
adapt-on arm's post-recovery Brier/ECE beat the frozen adapt-off arm.
"""

import math

import pytest

from repro.bench.experiments import adapt_exp


@pytest.fixture(scope="module")
def result():
    return adapt_exp.run("quick")


class TestAdaptExperiment:
    def test_alarm_and_recovery_are_finite(self, result):
        bench = result.bench
        assert bench["alarm_day"] is not None
        assert bench["recovery_day"] is not None
        assert bench["alarm_to_recovery_days"] is not None
        assert bench["alarm_to_recovery_days"] >= 0
        # The alarm cannot precede the shift the experiment injected.
        assert bench["alarm_day"] >= result.notes["shift_day"]

    def test_adapt_on_beats_adapt_off_after_recovery(self, result):
        bench = result.bench
        assert (
            bench["post_recovery_brier_adapt_on"]
            < bench["post_recovery_brier_adapt_off"]
        )
        assert bench["final_ece_adapt_on"] < bench["final_ece_adapt_off"]
        assert bench["adapt_recovery_speedup"] > 1.0

    def test_bench_gate_keys_are_present_and_finite(self, result):
        bench = result.bench
        assert bench["gate_keys"] == ["adapt_recovery_speedup:higher"]
        for key in (
            "adapt_recovery_speedup",
            "post_recovery_brier_adapt_on",
            "post_recovery_brier_adapt_off",
            "retune_wall_ms",
        ):
            assert math.isfinite(bench[key])

    def test_table_pairs_both_arms_day_by_day(self, result):
        table = result.tables[0]
        phases = [row[1] for row in table.rows]
        assert "pre" in phases and "post" in phases
        promotions = [row[-1] for row in table.rows]
        assert promotions == sorted(promotions)  # monotone counter
        assert promotions[-1] >= 1
