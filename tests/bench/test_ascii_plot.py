"""Tests for terminal chart rendering."""

import pytest

from repro.bench.ascii_plot import Series, bar_chart, line_chart


class TestSeries:
    def test_validation(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1])
        with pytest.raises(ValueError):
            Series("s", [], [])


class TestLineChart:
    def test_basic_render(self):
        s = Series("errors", [1, 2, 3], [10.0, 20.0, 15.0])
        text = line_chart([s], title="demo", xlabel="T", ylabel="err")
        assert "demo" in text
        assert "o errors" in text
        assert "T" in text
        # Axis labels show the data range.
        assert "10" in text and "20" in text

    def test_multiple_series_distinct_markers(self):
        a = Series("a", [1, 2], [1.0, 2.0])
        b = Series("b", [1, 2], [2.0, 1.0])
        text = line_chart([a, b])
        assert "o a" in text and "x b" in text

    def test_nan_points_skipped(self):
        s = Series("s", [1, 2, 3], [1.0, float("nan"), 3.0])
        text = line_chart([s])
        assert "o" in text

    def test_all_nan_graceful(self):
        s = Series("s", [1.0], [float("nan")])
        text = line_chart([s], title="t")
        assert "no finite data" in text

    def test_log_y(self):
        s = Series("s", [1, 2, 3], [1.0, 100.0, 10000.0])
        text = line_chart([s], log_y=True)
        assert "o" in text

    def test_log_y_no_positive(self):
        s = Series("s", [1.0], [0.0])
        assert "no positive data" in line_chart([s], log_y=True)

    def test_constant_series(self):
        s = Series("s", [1, 2], [5.0, 5.0])
        text = line_chart([s])
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([])
        with pytest.raises(ValueError):
            line_chart([Series("s", [1], [1])], width=4)

    def test_marker_positions_monotone(self):
        # An increasing series must place later markers on higher rows.
        s = Series("s", [0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])
        text = line_chart([s], width=20, height=8)
        rows = [i for i, line in enumerate(text.splitlines()) if "o" in line and "|" in line]
        cols = []
        for i in rows:
            line = text.splitlines()[i]
            cols.append(line.index("o"))
        # Higher rows (smaller index) have larger x positions.
        assert cols == sorted(cols, reverse=True)


class TestBarChart:
    def test_basic(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], title="bars", unit="%")
        lines = text.splitlines()
        assert lines[0] == "bars"
        assert "#" in lines[1] and "#" in lines[2]
        assert lines[2].count("#") > lines[1].count("#")
        assert "2%" in lines[2]

    def test_nan_bar(self):
        text = bar_chart(["a"], [float("nan")])
        assert "nan" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])

    def test_all_zero(self):
        text = bar_chart(["a"], [0.0])
        assert "0" in text
