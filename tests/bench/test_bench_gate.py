"""Tests for the CI perf gate (tools/bench_gate.py) and bench snapshots."""

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.bench.snapshots import (
    SNAPSHOT_VERSION,
    bench_snapshot_path,
    default_gate_keys,
    read_bench_snapshot,
    write_bench_snapshot,
)

_GATE_PATH = Path(__file__).resolve().parents[2] / "tools" / "bench_gate.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("bench_gate", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(directory, experiment, metrics, **kw):
    return write_bench_snapshot(directory, experiment, metrics, **kw)


class TestSnapshots:
    def test_write_read_round_trip(self, tmp_path):
        path = _write(
            tmp_path, "serving",
            {"predict_p50_ms": 1.5, "predict_p99_ms": 4.0, "throughput_rps": 900.0},
        )
        assert path == bench_snapshot_path(tmp_path, "serving")
        snap = read_bench_snapshot(path)
        assert snap["snapshot_version"] == SNAPSHOT_VERSION
        assert snap["experiment"] == "serving"
        assert snap["metrics"]["predict_p99_ms"] == 4.0
        assert snap["gate_keys"] == ["predict_p99_ms"]

    def test_explicit_gate_keys_win(self, tmp_path):
        path = _write(
            tmp_path, "cluster",
            {"predict_p99_ms": 4.0, "failover_ms": 50.0},
            gate_keys=["failover_ms"],
        )
        assert read_bench_snapshot(path)["gate_keys"] == ["failover_ms"]

    def test_default_gate_keys_skip_non_numeric(self):
        assert default_gate_keys(
            {"a_p99_ms": 1.0, "b_p99_ms": "broken", "c_p50_ms": 2.0}
        ) == ["a_p99_ms"]

    def test_read_rejects_non_snapshot(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            read_bench_snapshot(bad)
        bad.write_text(json.dumps({"metrics": {}, "snapshot_version": 99}))
        with pytest.raises(ValueError):
            read_bench_snapshot(bad)


class TestCompare:
    def test_synthetic_2x_p99_regression_fails(self, gate, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "serving", {"predict_p99_ms": 40.0})
        _write(cand, "serving", {"predict_p99_ms": 80.0})  # 2x: must fail
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1

    def test_within_threshold_passes(self, gate, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "serving", {"predict_p99_ms": 40.0})
        _write(cand, "serving", {"predict_p99_ms": 48.0})  # +20% < 30%
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_abs_floor_absorbs_small_jitter(self, gate, tmp_path):
        # +100% relative but only +2ms absolute: under the 5ms floor
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "serving", {"predict_p99_ms": 2.0})
        _write(cand, "serving", {"predict_p99_ms": 4.0})
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        # lowering the floor makes the same delta fail
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand),
             "--min-abs-ms", "0.5"]
        ) == 1

    def test_getting_faster_never_fails(self, gate, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "serving", {"predict_p99_ms": 40.0})
        _write(cand, "serving", {"predict_p99_ms": 10.0})
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_missing_baseline_passes_and_seeds(self, gate, tmp_path, capsys):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(cand, "serving", {"predict_p99_ms": 80.0})
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_empty_candidate_dir_is_usage_error(self, gate, tmp_path):
        cand = tmp_path / "cand"
        cand.mkdir()
        assert gate.main(
            ["--baseline", str(tmp_path), "--candidate", str(cand)]
        ) == 2
        assert gate.main(
            ["--baseline", str(tmp_path), "--candidate", str(tmp_path / "no")]
        ) == 2

    def test_nan_and_missing_metrics_do_not_gate(self, gate, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "store", {"fsync_p99_ms": float("nan"), "other_p99_ms": 1.0})
        _write(cand, "store", {"fsync_p99_ms": 99.0, "renamed_p99_ms": 99.0})
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_higher_suffix_gates_throughput_drop(self, gate, tmp_path):
        # useful_work_rate is higher-is-better: a 50% drop must fail even
        # though the absolute delta is far below the 5ms floor.
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "sched", {"useful_work_rate": 6.0},
               gate_keys=["useful_work_rate:higher"])
        _write(cand, "sched", {"useful_work_rate": 3.0},
               gate_keys=["useful_work_rate:higher"])
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1

    def test_higher_suffix_improvement_and_jitter_pass(self, gate, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "sched", {"useful_work_rate": 6.0},
               gate_keys=["useful_work_rate:higher"])
        # going up never fails
        _write(cand, "sched", {"useful_work_rate": 9.0},
               gate_keys=["useful_work_rate:higher"])
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        # a drop within the relative threshold passes (-10% < 30%)
        _write(cand, "sched", {"useful_work_rate": 5.4},
               gate_keys=["useful_work_rate:higher"])
        assert gate.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_higher_suffix_mixed_with_latency_gate(self, gate):
        # one snapshot can gate latency (lower) and throughput (higher)
        base = {
            "metrics": {"placement_p99_ms": 10.0, "useful_work_rate": 6.0},
            "gate_keys": [],
        }
        cand = {
            "metrics": {"placement_p99_ms": 40.0, "useful_work_rate": 2.0},
            "gate_keys": ["placement_p99_ms", "useful_work_rate:higher"],
        }
        failures = gate.compare_snapshots(
            base, cand, threshold=0.3, min_abs_ms=5.0
        )
        assert len(failures) == 2
        assert any("placement_p99_ms" in f for f in failures)
        assert any("useful_work_rate" in f for f in failures)

    def test_compare_only_gated_keys(self, gate):
        base = {"metrics": {"a_p99_ms": 1.0, "rps": 1000.0}, "gate_keys": []}
        cand = {
            "metrics": {"a_p99_ms": 500.0, "rps": 1.0},
            "gate_keys": ["a_p99_ms"],
        }
        failures = gate.compare_snapshots(
            base, cand, threshold=0.3, min_abs_ms=5.0
        )
        assert len(failures) == 1
        assert "a_p99_ms" in failures[0]
        assert math.isfinite(500.0)  # rps never consulted
