"""Smoke tests of the experiment modules at reduced sizes.

The full quick-scale runs (with their qualitative assertions) live in
``benchmarks/``; here we verify that every registry entry runs and
produces a structurally sound result, using the smallest parameters the
modules accept.
"""

import pytest

from repro.bench.data import evaluation_data
from repro.bench.experiments import REGISTRY, fig4, fig5, fig7, fig8


class TestRegistry:
    def test_covers_design_md_index(self):
        assert set(REGISTRY) == {
            "fig4", "fig5", "fig6", "fig7", "fig8",
            "emp-cpu", "emp-mem", "ovh", "trace", "e2e", "ablations",
            "profiles", "char", "cal", "size", "load", "serving", "store",
            "cluster", "audit", "sched", "ingest", "fleet", "adapt",
        }

    def test_every_entry_has_run(self):
        for module in REGISTRY.values():
            assert callable(module.run)


class TestEvaluationData:
    def test_cached(self):
        a = evaluation_data("quick")
        b = evaluation_data("quick")
        assert a is b

    def test_split_consistent(self):
        data = evaluation_data("quick")
        for mid in data.machine_ids:
            assert data.train[mid].last_day == data.test[mid].first_day

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            evaluation_data("huge")


class TestReducedRuns:
    def test_fig4_reduced(self):
        r = fig4.run("quick", lengths=(1.0, 2.0))
        table = r.tables[0]
        assert len(table.rows) == 2
        assert table.column("horizon_steps") == [600, 1200]
        assert all(v > 0 for v in table.column("total_ms"))

    def test_fig5_reduced(self):
        r = fig5.run("quick", lengths=(1.0,), start_hours=(8, 20))
        assert len(r.tables) == 2  # weekdays + weekends
        for t in r.tables:
            assert len(t.rows) == 1
            assert t.rows[0][4] > 0  # n

    def test_fig7_reduced(self):
        r = fig7.run("quick", lengths=(2.0,))
        table = r.tables[0]
        assert len(table.rows) == 1
        assert len(table.columns) == 7  # T, SMP, 5 models

    def test_fig8_reduced(self):
        r = fig8.run("quick", noise_amounts=(1, 5), lengths=(1.0, 3.0))
        table = r.tables[0]
        assert [row[0] for row in table.rows] == [1, 5]
        assert all(v >= 0 for row in table.rows for v in row[1:])

    def test_experiment_results_render(self):
        r = fig4.run("quick", lengths=(1.0,))
        text = r.format()
        assert "FIG4" in text
