"""Tests for the experiment harness (tables, results)."""

import pytest

from repro.bench.harness import ExperimentResult, ResultTable


class TestResultTable:
    def test_add_and_column(self):
        t = ResultTable(title="t", columns=["a", "b"])
        t.add(1, 2.0)
        t.add(3, 4.0)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.0, 4.0]

    def test_wrong_arity_rejected(self):
        t = ResultTable(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_unknown_column_rejected(self):
        t = ResultTable(title="t", columns=["a"])
        with pytest.raises(ValueError):
            t.column("zz")

    def test_format_alignment(self):
        t = ResultTable(title="widths", columns=["name", "value"])
        t.add("x", 1.5)
        t.add("longer", 0.000123)
        text = t.format()
        lines = text.splitlines()
        assert lines[0] == "widths"
        assert "name" in lines[2]
        # All data lines share the same width.
        assert len(set(len(l) for l in lines[2:])) == 1

    def test_format_handles_nan_and_big(self):
        t = ResultTable(title="t", columns=["v"])
        t.add(float("nan"))
        t.add(123456.789)
        text = t.format()
        assert "nan" in text
        assert "e+" in text or "123" in text

    def test_to_csv(self, tmp_path):
        t = ResultTable(title="t", columns=["a", "b"])
        t.add(1, "x")
        path = t.to_csv(tmp_path / "t.csv")
        assert path.read_text().splitlines() == ["a,b", "1,x"]


class TestExperimentResult:
    def test_table_lookup(self):
        r = ExperimentResult(experiment_id="X", description="d")
        t = ResultTable(title="one", columns=["a"])
        r.tables.append(t)
        assert r.table("one") is t
        with pytest.raises(KeyError):
            r.table("two")

    def test_format_includes_everything(self):
        r = ExperimentResult(experiment_id="X", description="desc")
        t = ResultTable(title="tab", columns=["a"])
        t.add(1)
        r.tables.append(t)
        r.notes["claim"] = True
        text = r.format()
        assert "X" in text and "desc" in text and "tab" in text and "claim" in text

    def test_print(self, capsys):
        r = ExperimentResult(experiment_id="X", description="d")
        r.print()
        assert "X" in capsys.readouterr().out
