"""Cluster test harness: in-process backends + a threaded router.

The router logic tests run against real TCP backends (``ServeServer``
on dedicated event-loop threads) but keep everything in-process so they
are fast and can inspect each backend's ``AvailabilityService``
directly.  Process-level behaviour (SIGKILL, warm restart) lives in
``test_failover.py`` on subprocess backends.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.cluster import RouterConfig, RouterThread
from repro.core.estimator import EstimatorConfig
from repro.core.windows import SECONDS_PER_DAY
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


def flat_trace(mid: str, *, load: float = 0.05, n_days: int = 6,
               period: float = 300.0) -> MachineTrace:
    """A constant-load trace: cheap to ship, deterministic TR."""
    n = int(n_days * SECONDS_PER_DAY / period)
    return MachineTrace(
        mid, 0.0, period,
        np.full(n, load), np.full(n, 400.0), np.ones(n, dtype=bool),
    )


class BackendThread:
    """One in-process backend: service + ServeServer on its own loop."""

    def __init__(self, node_id: str, *, audit: bool = False,
                 adapt: bool = False):
        self.node_id = node_id
        self.service = AvailabilityService(
            estimator_config=EstimatorConfig(step_multiple=5)
        )
        self.audit = None
        if audit or adapt:
            from repro.audit import AuditConfig, PredictionAudit

            self.audit = PredictionAudit(
                AuditConfig(node_id=node_id),  # memory-only: tests inspect it
                classifier=self.service.classifier,
                step_multiple=self.service.config.step_multiple,
            )
        self.adapt = None
        if adapt:
            from repro.adapt import AdaptController

            self.adapt = AdaptController(self.service, self.audit)
        self.loop = asyncio.new_event_loop()
        self.server = ServeServer(
            self.service, port=0, config=DispatchConfig(max_workers=2),
            audit=self.audit, adapt=self.adapt,
        )
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)

    @property
    def address(self) -> tuple[str, int]:
        return "127.0.0.1", self.server.port

    def stop(self) -> None:
        if self.loop.is_closed():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=False), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


class ClusterHarness:
    """Three in-process backends behind one threaded router."""

    def __init__(self, n_nodes: int = 3, *, replicas: int = 2,
                 audit: bool = False, adapt: bool = False):
        self.backends = {
            f"node-{i}": BackendThread(f"node-{i}", audit=audit, adapt=adapt)
            for i in range(n_nodes)
        }
        self.router_thread = RouterThread(
            {nid: b.address for nid, b in self.backends.items()},
            RouterConfig(
                replicas=replicas,
                probe_interval_s=0.1,
                connect_timeout_s=1.0,
                down_after=2,
                up_after=1,
            ),
        )

    @property
    def router(self):
        return self.router_thread.router

    @property
    def port(self) -> int:
        return self.router_thread.port

    def service(self, node_id: str) -> AvailabilityService:
        return self.backends[node_id].service

    def owners(self, machine_id: str) -> list[str]:
        return self.router.ring.owners(machine_id)

    def stop(self) -> None:
        self.router_thread.stop()
        for backend in self.backends.values():
            backend.stop()


@pytest.fixture()
def harness():
    h = ClusterHarness()
    yield h
    h.stop()
