"""Routed ``adapt_status``: scatter to every node, merge the counters.

Adapt state is per-node — each owner runs its own trials for the
machines it serves — so the router sums the counters, unions the
override lists, and keeps the machine entry that saw the most retunes.
``adapt_retune``/``adapt_promote`` ride the existing write path (all R
owners, quorum ack), so a retune lands on every owner of the machine.
"""

import pytest

from repro.serve.client import ServeClient

from tests.cluster.conftest import ClusterHarness, flat_trace


@pytest.fixture()
def adapt_harness():
    h = ClusterHarness(audit=True, adapt=True)
    yield h
    h.stop()


class TestRoutedAdaptStatus:
    def test_merged_status_counts_every_node(self, adapt_harness):
        h = adapt_harness
        with ServeClient(port=h.port) as client:
            merged = client.adapt_status()
        assert merged["enabled"] is True
        assert merged["shards"] == {"queried": 3, "ok": 3, "partial": False}
        assert merged["retunes"] == 0
        assert merged["overrides"] == []

    def test_adapt_free_cluster_reports_disabled(self, harness):
        with ServeClient(port=harness.port) as client:
            merged = client.adapt_status()
        assert merged["enabled"] is False
        assert merged["shards"]["ok"] == 3

    def test_scatter_survives_a_dead_node(self, adapt_harness):
        h = adapt_harness
        h.backends["node-1"].stop()
        with ServeClient(port=h.port) as client:
            merged = client.adapt_status()
        assert merged["enabled"] is True
        assert merged["shards"]["ok"] < merged["shards"]["queried"]
        assert merged["shards"]["partial"] is True

    def test_promotion_on_an_owner_shows_in_the_merged_view(self, adapt_harness):
        h = adapt_harness
        with ServeClient(port=h.port) as client:
            client.register(flat_trace("m0", n_days=10))
            owners = h.owners("m0")
            backend = h.backends[owners[0]]

            from tests.adapt.test_controller import open_trial

            open_trial(backend.adapt, "m0")
            backend.adapt.promote("m0", force=True)

            merged = client.adapt_status()
        assert merged["promotions"] == 1
        assert merged["overrides"] == ["m0"]
        # The promoting node's entry wins the per-machine union.
        assert merged["machines"]["m0"]["promotions"] == 1


class TestRoutedAdaptWrites:
    def test_retune_reaches_the_machine_owners(self, adapt_harness):
        h = adapt_harness
        with ServeClient(port=h.port) as client:
            client.register(flat_trace("m0", n_days=10))
            summary = client.adapt_retune("m0")
            merged = client.adapt_status()
        assert summary["machine"] == "m0"
        # Write quorum: at least ceil((R+1)/2) of the R=2 owners retuned.
        assert merged["retunes"] >= 1
        owners = h.owners("m0")
        per_owner = [
            h.backends[n].adapt.status()["machines"].get("m0", {}).get("retunes", 0)
            for n in owners
        ]
        assert sum(per_owner) == merged["retunes"]

    def test_retune_of_an_unregistered_machine_fails(self, adapt_harness):
        from repro.serve.client import ServeRequestError

        with ServeClient(port=adapt_harness.port) as client:
            with pytest.raises(ServeRequestError, match="not registered"):
                client.adapt_retune("ghost")
