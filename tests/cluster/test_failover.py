"""Process-level failover: SIGKILL under load, warm restart, durability.

This is the acceptance test of the cluster tier: with R=2, SIGKILLing
one backend mid-stream must cost clients nothing (zero failed
responses, only transparent router failovers), and every byte the dead
node quorum-acknowledged must come back byte-identical from its own
warm start.  Backends are real ``repro serve`` subprocesses with
``fsync=always`` stores, supervised back to life on their original
ports.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster import LocalCluster, RouterConfig, RouterThread, wait_for_port
from repro.obs.metrics import scoped_registry
from repro.serve.client import ServeClient
from repro.store import TraceStore
from repro.traces.synthesis import synthesize_testbed


@pytest.fixture(scope="module")
def small_testbed():
    # Coarse sampling keeps register/extend payloads and prediction cost
    # small; the machine count still exercises multi-shard placement.
    return synthesize_testbed(3, n_days=4, sample_period=240.0, seed=5)


def test_kill_under_load_zero_failed_responses(tmp_path, small_testbed):
    cluster = LocalCluster(tmp_path, 3, supervise=True, fsync="always")
    with scoped_registry() as reg:
        cluster.start()
        router = RouterThread(
            cluster.addresses,
            RouterConfig(
                replicas=2,
                probe_interval_s=0.2,
                connect_timeout_s=1.0,
                down_after=2,
                up_after=1,
            ),
        )
        try:
            # --- quorum-replicated ingest: register heads, extend tails --- #
            with ServeClient(port=router.port, retries=5) as client:
                for trace in small_testbed:
                    head, tail = trace.split_by_ratio(0.5)
                    assert client.register(head)["quorum"]["acks"] == 2
                    extended = client.extend(tail)
                    assert extended["quorum"]["acks"] == 2
                    assert extended["n_samples"] == trace.n_samples

            victim_machine = small_testbed.machine_ids[0]
            victim_id = router.router.ring.owners(victim_machine)[0]
            victim = cluster.node(victim_id)

            # --- read load across all machines, kill mid-stream ----------- #
            machines = small_testbed.machine_ids
            failures: list[str] = []
            lock = threading.Lock()
            halfway = threading.Event()
            n_requests = 30

            def pound(offset: int) -> None:
                with ServeClient(port=router.port) as c:
                    for i in range(n_requests):
                        if i == n_requests // 2:
                            halfway.set()
                        resp = c.request(
                            "predict",
                            {
                                "machine": machines[(offset + i) % len(machines)],
                                "start_hour": 6.0 + (i % 8),
                                "hours": 2.0,
                                "day_type": "weekday",
                            },
                        )
                        if not resp.ok:
                            with lock:
                                failures.append(f"{resp.status}: {resp.error}")

            threads = [threading.Thread(target=pound, args=(t,)) for t in range(3)]
            for t in threads:
                t.start()
            assert halfway.wait(timeout=60)
            victim.kill()  # SIGKILL; supervision relaunches on the same port
            for t in threads:
                t.join(timeout=120)
            assert not failures, failures

            # Failovers happened (the victim owned live shards) and the
            # router observed them.
            failovers = reg.get("cluster_failovers_total")
            assert failovers is not None and failovers.value > 0

            # --- the victim comes back and serves again ------------------- #
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and victim.restarts == 0:
                time.sleep(0.1)
            assert victim.restarts >= 1
            host, port = victim.address
            assert wait_for_port(host, port, 30)
            with ServeClient(host, port, retries=5) as direct:
                health = direct.health()
            owned = [
                m for m in machines
                if victim_id in router.router.ring.owners(m)
            ]
            assert health["machines"] == len(owned)
        finally:
            router.stop()
            cluster.stop()

    # --- byte-identical warm start from the victim's own store ---------- #
    # After a clean shutdown no process holds the store; recovery must
    # reproduce exactly the history the router quorum-acknowledged.
    with TraceStore(victim.spec.store_dir) as store:
        assert sorted(store.machine_ids) == sorted(owned)
        for mid in owned:
            recovered = store.load(mid)
            original = small_testbed[mid]
            assert recovered.n_samples == original.n_samples
            assert np.array_equal(recovered.load, original.load)
            assert np.array_equal(recovered.free_mem_mb, original.free_mem_mb)
            assert np.array_equal(recovered.up, original.up)


def test_client_retry_survives_replica_restart(tmp_path, small_testbed):
    """Satellite: ServeClient retries reconnect through a backend restart.

    A client talking *directly* to one backend (no router) sees its
    connection die on SIGKILL; with ``retries`` opted in it reconnects
    to the supervised replacement and the request succeeds.
    """
    cluster = LocalCluster(tmp_path, 1, supervise=True, fsync="always")
    cluster.start()
    node = cluster.nodes[0]
    try:
        host, port = node.address
        trace = small_testbed[small_testbed.machine_ids[0]]
        with ServeClient(host, port, retries=8, retry_backoff_s=0.3) as client:
            client.register(trace)
            assert 0.0 <= client.predict(trace.machine_id, 9, 2) <= 1.0
            node.kill()
            # The very next request hits a dead socket, then a refused
            # connect while the supervisor relaunches; retries cover both.
            tr = client.predict(trace.machine_id, 9, 2)
            assert 0.0 <= tr <= 1.0
    finally:
        cluster.stop()
