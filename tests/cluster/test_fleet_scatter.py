"""Fleet batch ops through the router: shard-local solves, merged once.

Each shard answers ``predict_batch``/``fleet_scan`` for the machines it
owns (the router sets ``missing_ok`` on the scatter); the router merges
per-machine entries first-answer-wins and re-sorts, so the cluster's
answer must equal a single-node deployment's for the same histories.
"""

import pytest

from repro.serve.client import ServeClient, ServeRequestError

from .conftest import flat_trace

MACHINES = [f"m{i:02d}" for i in range(6)]


def register_all(harness, machines=MACHINES):
    with ServeClient(port=harness.port) as client:
        for i, mid in enumerate(machines):
            client.register(flat_trace(mid, load=0.02 + 0.01 * i))


class TestFleetScatter:
    def test_predict_batch_covers_every_machine(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            batch = client.predict_batch(8, 3)
            assert set(batch) == set(MACHINES)
            # Every TR equals the single-machine predict for that id.
            for mid in MACHINES:
                assert batch[mid] == pytest.approx(
                    client.predict(mid, 8, 3), abs=1e-9
                )

    def test_fleet_scan_merges_and_sorts_like_rank(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            scan = client.fleet_scan(8, 3)
            ranking = client.rank(8, 3)
        assert scan["count"] == len(MACHINES)
        assert scan["shards"]["ok"] == 3
        assert scan["shards"]["partial"] is False
        assert [e["machine"] for e in scan["machines"]] == [
            e["machine"] for e in ranking
        ]

    def test_subset_batch_across_shards(self, harness):
        register_all(harness)
        subset = MACHINES[::2]
        with ServeClient(port=harness.port) as client:
            batch = client.predict_batch(8, 3, machines=subset)
        assert set(batch) == set(subset)

    def test_machine_on_no_shard_is_an_error(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            with pytest.raises(ServeRequestError, match="not registered"):
                client.predict_batch(8, 3, machines=[MACHINES[0], "ghost"])

    def test_scan_survives_one_dead_node(self, harness):
        register_all(harness)
        victim = sorted(harness.backends)[0]
        harness.backends[victim].stop()
        with ServeClient(port=harness.port) as client:
            scan = client.fleet_scan(8, 3)
        # R=2 replication: every machine still answered by a survivor.
        assert scan["count"] == len(MACHINES)
        assert scan["shards"]["ok"] >= 2
