"""Routed ``quality``: scatter to every node, merge bins exactly.

Audit state is per-node and never replicated — each owner journaled
only the predictions *it* served — so the router must SUM the per-bin
sufficient statistics across nodes and re-derive the pooled metrics.
The invariant under test: the merged aggregate equals the metrics of
the raw (probability, outcome) pairs pooled from every backend journal.
"""

import numpy as np
import pytest

from repro.audit.journal import OUTCOME_AVAILABLE, OUTCOME_EXCLUDED
from repro.audit.scoreboard import bins_from_pairs, derive_metrics
from repro.core.windows import SECONDS_PER_DAY
from repro.serve.client import ServeClient
from repro.traces.trace import MachineTrace

from tests.cluster.conftest import ClusterHarness

PERIOD = 300.0
HEAD_DAYS = 6


def wobbly_trace(mid, *, n_days=HEAD_DAYS + 3):
    """Clean at even hours, a 20-minute outage inside every odd hour.

    Windows at even start hours predict ~1 and survive; windows at odd
    start hours predict ~0 and fail (they still *start* operational, so
    they are scored, not excluded).
    """
    n = int(n_days * SECONDS_PER_DAY / PERIOD)
    up = np.ones(n, dtype=bool)
    for day in range(n_days):
        for hour in (1, 3, 5):
            t0 = day * SECONDS_PER_DAY + hour * 3600.0 + 1800.0
            up[int(t0 / PERIOD):int((t0 + 1200.0) / PERIOD)] = False
    return MachineTrace(
        mid, 0.0, PERIOD, np.full(n, 0.05), np.full(n, 400.0), up
    )


def head_of(trace):
    return trace.slice_days(0, HEAD_DAYS)


def tail_of(trace):
    n = int(HEAD_DAYS * SECONDS_PER_DAY / PERIOD)
    return MachineTrace(
        trace.machine_id, trace.start_time + n * PERIOD, PERIOD,
        trace.load[n:], trace.free_mem_mb[n:], trace.up[n:],
    )


def pooled_pairs(harness):
    pairs = []
    for backend in harness.backends.values():
        for r in backend.audit.journal.resolutions:
            if r.outcome != OUTCOME_EXCLUDED:
                pairs.append((r.probability, r.outcome == OUTCOME_AVAILABLE))
    return pairs


@pytest.fixture()
def audited_harness():
    h = ClusterHarness(audit=True)
    yield h
    h.stop()


class TestRoutedQuality:
    def test_merged_equals_pooled_raw_pairs(self, audited_harness):
        h = audited_harness
        machines = [f"m{i}" for i in range(4)]
        with ServeClient(port=h.port) as client:
            for mid in machines:
                client.register(head_of(wobbly_trace(mid)))
            for mid in machines:
                for start_hour in (1.0, 2.0, 3.0, 4.0):
                    client.predict(mid, start_hour, 1.0)
            for mid in machines:
                client.extend(tail_of(wobbly_trace(mid)))
            merged = client.quality()

        assert merged["enabled"] is True
        assert merged["shards"] == {"queried": 3, "ok": 3, "partial": False}
        assert merged["nodes"] == sorted(h.backends)

        pairs = pooled_pairs(h)
        assert pairs  # the extends resolved routed predictions
        expected = derive_metrics(
            bins_from_pairs([p for p, _ in pairs], [y for _, y in pairs],
                            merged["n_bins"])
        )
        agg = merged["aggregate"]
        assert agg["n"] == len(pairs)
        for key in ("brier", "brier_binned", "ece", "reliability"):
            assert agg[key] == pytest.approx(expected[key], abs=1e-9)
        # journaled/resolved counters are summed across nodes, not deduped
        assert merged["journaled"]["predict"] == sum(
            b.audit.journal.n_predictions for b in h.backends.values()
        )
        assert sum(merged["resolved"].values()) == sum(
            b.audit.journal.n_resolutions for b in h.backends.values()
        )

    def test_per_machine_bins_merged_across_owners(self, audited_harness):
        h = audited_harness
        with ServeClient(port=h.port) as client:
            client.register(head_of(wobbly_trace("solo")))
            for start_hour in (1.0, 2.0, 3.0, 4.0):
                client.predict("solo", start_hour, 1.0)
            client.extend(tail_of(wobbly_trace("solo")))
            merged = client.quality(machine="solo")

        per_node = [
            b.audit.scoreboard.snapshot("solo")["n"]
            for b in h.backends.values()
        ]
        assert merged["machines"]["solo"]["n"] == sum(per_node)
        assert merged["machines"]["solo"]["n"] > 0

    def test_scatter_survives_a_dead_node(self, audited_harness):
        h = audited_harness
        with ServeClient(port=h.port) as client:
            client.register(head_of(wobbly_trace("m0")))
            client.predict("m0", 2.0, 1.0)
            h.backends["node-2"].stop()
            merged = client.quality()
        assert merged["enabled"] is True
        assert merged["shards"]["ok"] < merged["shards"]["queried"]
        assert merged["shards"]["partial"] is True
        assert "node-2" not in merged["nodes"]

    def test_audit_free_cluster_reports_disabled(self, harness):
        with ServeClient(port=harness.port) as client:
            merged = client.quality()
        assert merged["enabled"] is False
        assert merged["nodes"] == []
        assert merged["shards"]["ok"] == 3
