"""Property-style tests of the consistent-hash ring.

The cluster's correctness rests on three placement properties —
balance, stability under membership change, and replica distinctness —
so they are asserted over many node sets and key universes rather than
a single example.
"""

import pytest

from repro.cluster.ring import HashRing


def keys(n, salt=""):
    return [f"machine-{salt}{i:05d}" for i in range(n)]


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_empty_ring_refuses_lookup(self):
        with pytest.raises(LookupError):
            HashRing().owners("m")

    def test_add_is_idempotent_remove_unknown_raises(self):
        ring = HashRing(["a"])
        ring.add_node("a")
        assert ring.nodes == ["a"]
        with pytest.raises(KeyError):
            ring.remove_node("ghost")


class TestDeterminism:
    @pytest.mark.parametrize("nodes", [["a"], ["a", "b", "c"], ["x", "y", "z", "w"]])
    def test_two_rings_agree(self, nodes):
        # Placement must be identical across processes (and insertion
        # orders): routers built independently have to agree.
        r1 = HashRing(nodes, vnodes=32, replicas=2)
        r2 = HashRing(list(reversed(nodes)), vnodes=32, replicas=2)
        for k in keys(500):
            assert r1.owners(k) == r2.owners(k)


class TestReplicaSets:
    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_owners_distinct_and_sized(self, replicas):
        ring = HashRing(["a", "b", "c", "d"], vnodes=64, replicas=replicas)
        for k in keys(300):
            owners = ring.owners(k)
            assert len(owners) == replicas
            assert len(set(owners)) == replicas

    def test_small_cluster_caps_replicas_at_node_count(self):
        ring = HashRing(["only"], vnodes=64, replicas=2)
        assert ring.owners("m") == ["only"]

    def test_primary_is_first_owner(self):
        ring = HashRing(["a", "b", "c"], vnodes=64, replicas=2)
        for k in keys(100):
            assert ring.primary(k) == ring.owners(k)[0]


class TestBalance:
    @pytest.mark.parametrize("n_nodes", [3, 4, 8])
    def test_primary_shards_balanced_at_64_vnodes(self, n_nodes):
        # With >= 64 vnodes every node's primary shard must be within a
        # factor ~2 band around the fair share 1/N — loose enough for
        # hashing variance, tight enough to catch a broken ring (where
        # one node would own nearly everything or nearly nothing).
        ring = HashRing([f"node-{i}" for i in range(n_nodes)], vnodes=64)
        counts = ring.shard_counts(keys(6000))
        fair = 6000 / n_nodes
        for node, count in counts.items():
            assert 0.45 * fair < count < 1.8 * fair, (node, count, fair)

    def test_more_vnodes_never_leaves_a_node_empty(self):
        ring = HashRing([f"node-{i}" for i in range(10)], vnodes=128)
        counts = ring.shard_counts(keys(5000))
        assert all(c > 0 for c in counts.values())


class TestMinimalMovement:
    def test_adding_one_node_moves_about_one_over_n(self):
        universe = keys(4000)
        for n in (3, 5, 8):
            before = HashRing([f"n{i}" for i in range(n)], vnodes=64)
            after = HashRing([f"n{i}" for i in range(n + 1)], vnodes=64)
            moved = sum(
                1 for k in universe if before.primary(k) != after.primary(k)
            )
            frac = moved / len(universe)
            # ~1/(N+1) of keys land on the new node; allow 2x slack but
            # rule out the mod-N disaster (~N/(N+1) of keys moving).
            assert frac < 2.0 / (n + 1), (n, frac)
            assert frac > 0.2 / (n + 1), (n, frac)

    def test_moved_keys_moved_onto_the_new_node_only(self):
        universe = keys(3000)
        before = HashRing([f"n{i}" for i in range(4)], vnodes=64)
        after = HashRing([f"n{i}" for i in range(4)], vnodes=64)
        after.add_node("n4")
        for k in universe:
            if before.primary(k) != after.primary(k):
                assert after.primary(k) == "n4"

    def test_removing_a_node_reassigns_only_its_keys(self):
        universe = keys(3000)
        before = HashRing([f"n{i}" for i in range(4)], vnodes=64)
        after = HashRing([f"n{i}" for i in range(4)], vnodes=64)
        after.remove_node("n2")
        for k in universe:
            if before.primary(k) == "n2":
                assert after.primary(k) != "n2"
            else:
                assert after.primary(k) == before.primary(k)

    def test_replica_sets_mostly_stable_under_add(self):
        universe = keys(3000)
        before = HashRing([f"n{i}" for i in range(5)], vnodes=64, replicas=2)
        after = HashRing([f"n{i}" for i in range(6)], vnodes=64, replicas=2)
        changed = sum(
            1
            for k in universe
            if set(before.owners(k)) != set(after.owners(k))
        )
        # Each of the R=2 owner slots moves w.p. ~1/(N+1); the set
        # changes for at most the union, ~2/(N+1).
        assert changed / len(universe) < 2 * 2.0 / 6
