"""Router behaviour: quorum writes, sharded reads, merge, failover.

Everything here runs against real sockets but in-process backends (see
``conftest.py``), so each test can cross-check the router's answers
against the backends' ``AvailabilityService`` state directly.
"""

import pytest

from repro.core.windows import ClockWindow, DayType
from repro.obs.metrics import scoped_registry
from repro.serve.client import ServeClient, ServeRequestError

from .conftest import flat_trace

MACHINES = [f"m{i:02d}" for i in range(6)]


def register_all(harness, machines=MACHINES):
    traces = {mid: flat_trace(mid, load=0.02 + 0.01 * i)
              for i, mid in enumerate(machines)}
    with ServeClient(port=harness.port) as client:
        for trace in traces.values():
            result = client.register(trace)
            assert result["quorum"]["acks"] == 2
    return traces


class TestQuorumWrites:
    def test_register_acked_by_full_replica_set(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            result = client.register(flat_trace("extra"))
        q = result["quorum"]
        assert q == {"acks": 2, "replicas": 2, "required": 2, "degraded": False}

    def test_placement_matches_the_ring_exactly(self, harness):
        register_all(harness)
        for mid in MACHINES:
            owners = set(harness.owners(mid))
            for node_id in harness.backends:
                assert (mid in harness.service(node_id)) == (node_id in owners)

    def test_every_machine_stored_on_exactly_r_nodes(self, harness):
        register_all(harness)
        total = sum(len(harness.service(n)) for n in harness.backends)
        assert total == 2 * len(MACHINES)

    def test_extend_reaches_both_replicas(self, harness):
        trace = flat_trace("grow")
        head, tail = trace.split_by_ratio(0.5)
        with ServeClient(port=harness.port) as client:
            client.register(head)
            result = client.extend(tail)
        assert result["quorum"]["acks"] == 2
        assert result["n_samples"] == trace.n_samples
        for node_id in harness.owners("grow"):
            assert (
                harness.service(node_id)._histories["grow"].n_samples
                == trace.n_samples
            )

    def test_write_without_quorum_is_refused(self, harness):
        register_all(harness)
        victim = harness.owners("quorum-probe")[0]
        harness.backends[victim].stop()
        with ServeClient(port=harness.port) as client:
            with pytest.raises(ServeRequestError, match="QuorumNotMet"):
                client.register(flat_trace("quorum-probe"))


class TestSingleMachineReads:
    def test_predict_matches_owning_backend(self, harness):
        register_all(harness)
        window, dtype = ClockWindow.from_hours(9, 2), DayType.WEEKDAY
        with ServeClient(port=harness.port) as client:
            for mid in MACHINES:
                via_router = client.predict(mid, 9, 2)
                direct = harness.service(harness.owners(mid)[0]).predict(
                    mid, window, dtype
                )
                assert via_router == pytest.approx(direct, abs=1e-12)

    def test_unknown_machine_error_propagates(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            with pytest.raises(ServeRequestError, match="KeyError"):
                client.predict("ghost", 9, 2)

    def test_horizon_routed(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            assert client.horizon(MACHINES[0], 8, 5) == pytest.approx(5 * 3600.0)


class TestScatterGather:
    def test_rank_merges_all_shards_without_duplicates(self, harness):
        traces = register_all(harness)
        with ServeClient(port=harness.port) as client:
            ranking = client.rank(9, 2)
        assert [r["machine"] for r in ranking] == sorted(
            traces, key=lambda m: (-dict((r["machine"], r["tr"]) for r in ranking)[m], m)
        )
        assert sorted(r["machine"] for r in ranking) == MACHINES

    def test_select_equals_single_node_math(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            ranking = client.rank(9, 2)
            select = client.select(9, 2, k=3)
        best = [r["machine"] for r in ranking[:3]]
        assert select["machines"] == best
        expected = 1.0
        for r in ranking[:3]:
            expected *= r["tr"]
        assert select["survival"] == pytest.approx(expected, abs=1e-12)

    def test_select_too_large_k_is_an_error(self, harness):
        register_all(harness)
        with ServeClient(port=harness.port) as client:
            with pytest.raises(ServeRequestError, match="ValueError"):
                client.select(9, 2, k=100)

    def test_rank_survives_one_dead_node(self, harness):
        register_all(harness)
        harness.backends["node-1"].stop()
        with ServeClient(port=harness.port) as client:
            ranking = client.rank(9, 2)
        # R=2: every machine has a live replica, so nothing is missing.
        assert sorted(r["machine"] for r in ranking) == MACHINES


class TestFailover:
    def test_reads_fail_over_transparently(self, harness):
        register_all(harness)
        with scoped_registry() as reg:
            victim = harness.owners(MACHINES[0])[0]
            harness.backends[victim].stop()
            with ServeClient(port=harness.port) as client:
                for mid in MACHINES:
                    assert 0.0 <= client.predict(mid, 9, 2) <= 1.0
            failovers = reg.get("cluster_failovers_total")
            assert failovers is not None and failovers.value > 0

    def test_membership_marks_dead_node_down(self, harness):
        import time

        register_all(harness)
        harness.backends["node-2"].stop()
        with ServeClient(port=harness.port) as client:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                health = client.health()
                if health["nodes"]["node-2"]["state"] == "down":
                    break
                time.sleep(0.1)
            health = client.health()
        assert health["nodes"]["node-2"]["state"] == "down"
        assert health["status"] == "degraded"
        assert health["up_nodes"] == 2


class TestRouterHealth:
    def test_health_reports_ring_and_nodes(self, harness):
        with ServeClient(port=harness.port) as client:
            health = client.health()
        assert health["role"] == "router"
        assert health["status"] == "ok"
        assert health["ring"] == {
            "nodes": 3, "replicas": 2, "vnodes": 64, "write_quorum": 2,
        }
        assert set(health["nodes"]) == set(harness.backends)

    def test_malformed_line_answered_not_dropped(self, harness):
        import json
        import socket

        with socket.create_connection(("127.0.0.1", harness.port)) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "error"
            # connection survives; a real request still works
            f.write(json.dumps({"v": 2, "id": "x", "op": "health"}).encode() + b"\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "ok"
            assert resp["id"] == "x"
