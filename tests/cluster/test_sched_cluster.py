"""Scheduler survives a SIGKILLed backend: re-placement + WAL recovery.

The acceptance test of the scheduling tier: jobs submitted through the
router keep making progress when the backend that owns their machines
is SIGKILLed mid-run.  The router's membership prober broadcasts the
node-death ``replace``; surviving JobManagers re-place the affected
jobs by the recovery cost model; the supervised victim relaunches and
recovers its own job table from the scheduler WAL.  Every submitted job
must finish — zero lost forever.
"""

import time

import pytest

from repro.cluster import LocalCluster, RouterConfig, RouterThread, wait_for_port
from repro.obs.events import scoped_event_log
from repro.serve.client import ServeClient
from repro.traces.synthesis import synthesize_testbed


@pytest.fixture(scope="module")
def small_testbed():
    return synthesize_testbed(4, n_days=4, sample_period=240.0, seed=5)


def _job_states(client) -> tuple[dict, list]:
    listing = client.jobs()
    return listing["stats"]["states"], listing["jobs"]


def test_sigkill_mid_run_completes_every_job(tmp_path, small_testbed):
    n_jobs = 6
    # 40x speedup: 90 cpu-seconds of guest work is ~2.3s of wall time —
    # long enough to SIGKILL mid-run, short enough for CI.
    cluster = LocalCluster(
        tmp_path, 3, supervise=True, fsync="always",
        sched=True, sched_speedup=40.0,
    )
    with scoped_event_log() as events:
        cluster.start()
        router = RouterThread(
            cluster.addresses,
            RouterConfig(
                replicas=2,
                probe_interval_s=0.2,
                connect_timeout_s=1.0,
                down_after=2,
                up_after=1,
            ),
        )
        try:
            with ServeClient(port=router.port, retries=8) as client:
                for trace in small_testbed:
                    assert client.register(trace)["quorum"]["acks"] == 2

                # --- submit through the router: placed + quorum-replicated --
                for i in range(n_jobs):
                    out = client.submit(f"job-{i:02d}", 90.0, cpu=0.25)
                    assert out["record"]["state"] == "placed"
                    assert out["quorum"]["acks"] == 2

                # --- informed kill: the primary owner of a machine that
                # actually hosts placed jobs, so its death forces re-placement
                states, jobs = _job_states(client)
                hosting = [j["machine"] for j in jobs if j["machine"]]
                assert hosting, states
                victim_id = router.router.ring.owners(hosting[0])[0]
                victim = cluster.node(victim_id)
                victim.kill()

                # --- every job still completes -----------------------------
                deadline = time.monotonic() + 90
                states = {}
                while time.monotonic() < deadline:
                    states, jobs = _job_states(client)
                    if states.get("completed", 0) == n_jobs:
                        break
                    time.sleep(0.3)
                assert states == {"completed": n_jobs}, states
                assert len(jobs) == n_jobs  # zero lost forever

            # --- the death was reacted to, not raced around ----------------
            # The router broadcast a replace for the dead node's machines;
            # at least one job moved (visible as a multi-attempt record or
            # the router-side replacement event).
            replace_events = [
                e for e in events.events() if e.name == "cluster_jobs_replaced"
            ]
            moved = [j for j in jobs if len(j["attempts"]) >= 2]
            assert replace_events or moved, (
                "no re-placement observed after SIGKILL"
            )

            # --- the victim relaunched and recovered its WAL ---------------
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and victim.restarts == 0:
                time.sleep(0.1)
            assert victim.restarts >= 1
            host, port = victim.address
            assert wait_for_port(host, port, 30)
            with ServeClient(host, port, retries=5) as direct:
                health = direct.health()
                assert health["sched"] is True
                recovered = direct.jobs()
                # the WAL preserved its share of the job table across
                # SIGKILL: every record it held is still there, terminal
                assert recovered["stats"]["jobs"] >= 1
                for job in recovered["jobs"]:
                    assert job["state"] in ("completed", "cancelled", "running",
                                            "placed", "pending")
        finally:
            router.stop()
            cluster.stop()


def test_drain_via_router_moves_jobs_proactively(tmp_path, small_testbed):
    """Router replace broadcast with a drain reason migrates live jobs."""
    cluster = LocalCluster(
        tmp_path, 2, supervise=False, fsync="never",
        sched=True, sched_speedup=1000.0,
    )
    cluster.start()
    router = RouterThread(
        cluster.addresses,
        RouterConfig(replicas=2, probe_interval_s=5.0, connect_timeout_s=1.0),
    )
    try:
        with ServeClient(port=router.port, retries=5) as client:
            for trace in small_testbed:
                client.register(trace)
            placed = client.submit("drainee", 1e6, cpu=0.25)["record"]
            machine = placed["machine"]
            # let real progress accrue: with nothing to carry, the cost
            # model would correctly restart instead of migrating
            time.sleep(0.5)
            out = client.request(
                "replace", {"machines": [machine], "reason": "drain"}
            ).result
            assert out["replaced"] >= 1
            assert out["actions"].get("migrate", 0) >= 1
            status = client.job_status("drainee")
            assert status["machine"] != machine
            # migration carried the progress: nothing wasted
            assert status["wasted_cpu_seconds"] == 0.0
    finally:
        router.stop()
        cluster.stop()
