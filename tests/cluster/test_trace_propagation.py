"""One trace across a real 3-node cluster, including a failover hop.

The acceptance test of the tracing tentpole: a traced predict issued
through the router of a :class:`LocalCluster` (subprocess backends)
must come back as ONE span tree covering the client, router, serve and
predict tiers — merged from the in-process recorder (client + router
spans) and the per-node JSONL sinks (backend spans).  With the primary
owner SIGKILLed first, the tree must additionally show the failover
hop: a ``router.attempt`` that failed against the dead node and a
second, successful attempt against the replica.
"""

import pytest

from repro.cluster import LocalCluster, RouterConfig, RouterThread
from repro.obs.tracing import TraceContext, scoped_recorder, use_context
from repro.obs.traceview import build_traces, critical_path, load_spans
from repro.serve.client import ServeClient
from repro.traces.synthesis import synthesize_testbed


@pytest.fixture(scope="module")
def small_testbed():
    return synthesize_testbed(3, n_days=4, sample_period=240.0, seed=5)


def test_failover_hop_visible_in_one_span_tree(tmp_path, small_testbed):
    cluster = LocalCluster(
        tmp_path, 3, supervise=False, fsync="never", trace=True
    )
    root = None
    with scoped_recorder() as rec:
        cluster.start()
        router = RouterThread(
            cluster.addresses,
            RouterConfig(
                replicas=2,
                probe_interval_s=0.2,
                connect_timeout_s=1.0,
                down_after=2,
                up_after=1,
            ),
        )
        try:
            with ServeClient(port=router.port, retries=5) as client:
                for trace in small_testbed:
                    client.register(trace)
                target = small_testbed.machine_ids[0]
                client.predict(target, 9.0, 2.0)  # warm both replicas

                # kill the primary owner: the traced read must fail over
                victim = cluster.node(router.router.ring.owners(target)[0])
                victim.kill()

                root = TraceContext.new_root()
                with use_context(root):
                    client.predict(target, 9.0, 2.0)
        finally:
            router.stop()
            cluster.stop()
        spans = rec.spans() + load_spans(cluster.trace_files)

    trees = build_traces(spans)
    assert root.trace_id in trees
    tree = trees[root.trace_id]

    # one tree, all four tiers — client and router spans from this
    # process, serve/predict spans from the surviving backend's sink
    assert {"client", "router", "serve", "predict"} <= tree.tiers()
    names = tree.names()
    assert "client.request" in names
    assert "router.route" in names
    assert "dispatch.queue_wait" in names
    assert "dispatch.compute" in names
    assert "predict.query" in names

    # the failover hop: first attempt died against the killed primary,
    # a later attempt succeeded against the replica
    attempts = sorted(
        (s for s in tree.spans if s.name == "router.attempt"),
        key=lambda s: s.attrs.get("attempt", 0),
    )
    assert len(attempts) >= 2
    assert str(attempts[0].attrs.get("outcome", "")).startswith("unreachable")
    assert not attempts[0].attrs.get("failover")
    assert attempts[-1].attrs.get("failover") is True
    assert attempts[-1].attrs.get("outcome") == "ok"
    assert attempts[0].attrs.get("node") != attempts[-1].attrs.get("node")

    # everything hangs off one root and the critical path is non-empty
    assert len(tree.roots) == 1
    assert tree.roots[0].name == "client.request"
    path = critical_path(tree)
    assert path and path[0].name == "client.request"
    assert any(s.tier == "predict" for s in path)
