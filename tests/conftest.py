"""Shared fixtures: small synthetic traces and common components.

Traces are session-scoped because synthesis over two weeks of samples is
the dominant test cost; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import StateClassifier
from repro.traces.synthesis import synthesize_testbed, synthesize_trace


@pytest.fixture(scope="session")
def short_trace():
    """A two-week, 30-second-period lab trace (fast to synthesize)."""
    return synthesize_trace("fix-short", n_days=14, sample_period=30.0, seed=42)


@pytest.fixture(scope="session")
def long_trace():
    """A four-week, 30-second-period lab trace for accuracy tests."""
    return synthesize_trace("fix-long", n_days=28, sample_period=30.0, seed=7)


@pytest.fixture(scope="session")
def testbed():
    """A small 3-machine testbed."""
    return synthesize_testbed(3, n_days=14, sample_period=30.0, seed=11)


@pytest.fixture()
def classifier():
    return StateClassifier()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
