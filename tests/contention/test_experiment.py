"""Tests for the contention study runners and threshold derivation.

The slow full sweeps live in the EMP benchmarks; here we run reduced
versions and verify the paper's structural claims.
"""

import numpy as np
import pytest

from repro.contention.experiment import (
    MemoryRecord,
    cpu_contention_study,
    measure_reduction,
    memory_contention_study,
    priority_alternatives_study,
)
from repro.contention.processes import HostGroup
from repro.contention.thresholds import crossing_load, derive_thresholds


@pytest.fixture(scope="module")
def cpu_records():
    return cpu_contention_study(
        loads=(0.1, 0.3, 0.5, 0.7, 0.9),
        group_sizes=(1, 2),
        reps=2,
        duration=60.0,
    )


class TestMeasureReduction:
    def test_baseline_without_guest(self):
        rec = measure_reduction(HostGroup.single(0.4), None, duration=30.0, reps=1)
        assert rec.reduction == 0.0
        assert rec.guest_nice == -1
        assert rec.guest_usage == 0.0

    def test_record_fields(self):
        rec = measure_reduction(HostGroup.single(0.4), 0, duration=30.0, reps=1)
        assert rec.group_size == 1
        assert rec.isolated_usage == pytest.approx(0.4)
        assert rec.guest_nice == 0
        assert rec.host_usage_isolated > rec.host_usage_together
        assert rec.guest_usage > 0.0


class TestCpuContentionStudy:
    def test_full_grid(self, cpu_records):
        assert len(cpu_records) == 5 * 2 * 2  # loads x sizes x nices
        nices = {r.guest_nice for r in cpu_records}
        assert nices == {0, 19}

    def test_reduction_monotone_trend(self, cpu_records):
        for nice in (0, 19):
            rows = sorted(
                (r for r in cpu_records if r.guest_nice == nice and r.group_size == 1),
                key=lambda r: r.isolated_usage,
            )
            reds = [r.reduction for r in rows]
            assert reds[-1] > reds[0]

    def test_nice0_curve_dominates_nice19(self, cpu_records):
        for size in (1, 2):
            for load in (0.3, 0.5, 0.7, 0.9):
                r0 = next(
                    r.reduction
                    for r in cpu_records
                    if r.guest_nice == 0 and r.group_size == size
                    and abs(r.isolated_usage - load) < 1e-9
                )
                r19 = next(
                    r.reduction
                    for r in cpu_records
                    if r.guest_nice == 19 and r.group_size == size
                    and abs(r.isolated_usage - load) < 1e-9
                )
                assert r0 > r19


class TestCrossingLoad:
    def test_simple_crossing(self):
        x = crossing_load([0.1, 0.3, 0.5], [0.02, 0.04, 0.08], 0.05)
        assert x == pytest.approx(0.35, abs=1e-9)

    def test_no_crossing(self):
        assert crossing_load([0.1, 0.5], [0.01, 0.02], 0.05) is None

    def test_already_above(self):
        assert crossing_load([0.1, 0.5], [0.08, 0.2], 0.05) == pytest.approx(0.1)

    def test_unsorted_input(self):
        x = crossing_load([0.5, 0.1, 0.3], [0.08, 0.02, 0.04], 0.05)
        assert x == pytest.approx(0.35, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            crossing_load([], [], 0.05)
        with pytest.raises(ValueError):
            crossing_load([0.1], [0.1, 0.2], 0.05)


class TestDeriveThresholds:
    def test_paper_band(self, cpu_records):
        d = derive_thresholds(cpu_records)
        # The paper's Linux testbed measured Th1 = 20%, Th2 = 60%; the
        # simulated testbed must land in the same neighbourhood.
        assert 0.10 <= d.th1 <= 0.35
        assert 0.45 <= d.th2 <= 0.80
        assert d.th1 < d.th2

    def test_size1_is_lowest_crossing(self, cpu_records):
        # Paper: "these thresholds would typically be for the host group
        # of size 1".
        d = derive_thresholds(cpu_records)
        c = {k: v for k, v in d.crossings_nice0.items() if v is not None}
        assert min(c, key=c.get) == 1

    def test_as_thresholds_roundtrip(self, cpu_records):
        d = derive_thresholds(cpu_records)
        th = d.as_thresholds()
        assert 0.0 < th.th1 < th.th2 <= 1.0

    def test_missing_nice_rejected(self, cpu_records):
        only0 = [r for r in cpu_records if r.guest_nice == 0]
        with pytest.raises(ValueError):
            derive_thresholds(only0)


class TestPriorityAlternatives:
    @pytest.fixture(scope="class")
    def records(self):
        return priority_alternatives_study(
            loads=(0.1, 0.5), nices=(0, 10, 19), reps=2, duration=60.0
        )

    def test_intermediate_nice_redundant(self, records):
        # Paper: gradual renicing "introduces redundancy" — intermediate
        # nice values behave like nice 19 for the host.
        for load in (0.1, 0.5):
            r10 = next(
                r.host_reduction for r in records
                if r.guest_nice == 10 and r.isolated_usage == load
            )
            r19 = next(
                r.host_reduction for r in records
                if r.guest_nice == 19 and r.isolated_usage == load
            )
            r0 = next(
                r.host_reduction for r in records
                if r.guest_nice == 0 and r.isolated_usage == load
            )
            assert abs(r10 - r19) < 0.35 * max(r0, 0.02)

    def test_always_lowest_priority_wastes_guest_throughput(self, records):
        # Paper: always nice 19 "slows down the guest process
        # unnecessarily under light host workload".
        g0 = next(
            r.guest_usage for r in records if r.guest_nice == 0 and r.isolated_usage == 0.1
        )
        g19 = next(
            r.guest_usage for r in records if r.guest_nice == 19 and r.isolated_usage == 0.1
        )
        assert g19 < g0


class TestMemoryContention:
    @pytest.fixture(scope="class")
    def records(self):
        return memory_contention_study(
            guest_ws_mb=(29.0, 193.0),
            host_ws_mb=(53.0, 213.0),
            host_cpu_usages=(0.35,),
            reps=1,
            duration=30.0,
        )

    def test_thrashing_iff_overcommit(self, records):
        for r in records:
            assert r.thrashing == (r.overcommit_ratio > 1.0)

    def test_largest_pairing_thrashes(self, records):
        big = [r for r in records if r.guest_ws_mb == 193.0 and r.host_ws_mb == 213.0]
        assert big and all(r.thrashing for r in big)

    def test_smallest_pairing_fits(self, records):
        small = [r for r in records if r.guest_ws_mb == 29.0 and r.host_ws_mb == 53.0]
        assert small and not any(r.thrashing for r in small)

    def test_thrashing_priority_insensitive(self, records):
        # Paper: "changing CPU priority does little to prevent thrashing".
        thrash = [r for r in records if r.thrashing]
        by_nice = {r.guest_nice: r.host_reduction for r in thrash if r.guest_ws_mb == 193.0}
        assert abs(by_nice[0] - by_nice[19]) < 0.10
        assert min(by_nice.values()) > 0.05  # always noticeable slowdown

    def test_sufficient_memory_reduces_to_cpu_case(self, records):
        fits = [r for r in records if not r.thrashing and r.guest_nice == 19]
        # Same host CPU usage, different (fitting) working sets: identical
        # reductions — CPU and memory contention are separable.
        vals = {round(r.host_reduction, 6) for r in fits}
        assert len(vals) == 1
