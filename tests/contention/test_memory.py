"""Tests for the memory/thrashing model."""

import pytest

from repro.contention.memory import MemorySystem


class TestMemorySystem:
    def test_paper_defaults(self):
        mem = MemorySystem()
        assert mem.ram_mb == 384.0
        assert mem.available_mb == pytest.approx(344.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(ram_mb=30.0, kernel_mem_mb=40.0)
        with pytest.raises(ValueError):
            MemorySystem(paging_severity=0.0)

    def test_overcommit_ratio(self):
        mem = MemorySystem(ram_mb=384.0, kernel_mem_mb=40.0)
        assert mem.overcommit_ratio([172.0, 172.0]) == pytest.approx(1.0)
        assert mem.overcommit_ratio([]) == 0.0
        with pytest.raises(ValueError):
            mem.overcommit_ratio([-5.0])

    def test_thrashing_criterion_is_overcommit(self):
        mem = MemorySystem()
        assert not mem.is_thrashing([150.0, 150.0])
        assert mem.is_thrashing([200.0, 200.0])

    def test_efficiency_one_when_memory_sufficient(self):
        mem = MemorySystem()
        assert mem.cpu_efficiency([100.0, 100.0]) == 1.0
        assert mem.cpu_efficiency([344.0]) == 1.0

    def test_efficiency_decays_with_overcommit(self):
        mem = MemorySystem()
        e1 = mem.cpu_efficiency([380.0])
        e2 = mem.cpu_efficiency([500.0])
        assert 0.0 < e2 < e1 < 1.0

    def test_thirty_percent_overcommit_is_severe(self):
        # Calibration anchor from the model docstring.
        mem = MemorySystem()
        eff = mem.cpu_efficiency([344.0 * 1.3])
        assert eff < 0.5

    def test_free_for_guest(self):
        mem = MemorySystem()
        assert mem.free_for_guest([144.0]) == pytest.approx(200.0)
        assert mem.free_for_guest([400.0]) == 0.0
