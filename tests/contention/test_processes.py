"""Tests for process and host-group specifications."""

import numpy as np
import pytest

from repro.contention.processes import HostGroup, ProcessSpec, guest_spec


class TestProcessSpec:
    def test_cpu_bound(self):
        p = ProcessSpec(name="g", isolated_usage=1.0)
        assert p.cpu_bound
        assert p.sleep_per_burst == 0.0

    def test_bursty_sleep_ratio(self):
        p = ProcessSpec(name="h", isolated_usage=0.25, burst_mean=0.03)
        # usage = burst / (burst + sleep) = 0.25
        assert p.sleep_per_burst == pytest.approx(0.09)
        assert not p.cpu_bound

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessSpec(name="x", nice=25)
        with pytest.raises(ValueError):
            ProcessSpec(name="x", isolated_usage=0.0)
        with pytest.raises(ValueError):
            ProcessSpec(name="x", isolated_usage=1.2)
        with pytest.raises(ValueError):
            ProcessSpec(name="x", burst_mean=0.0)
        with pytest.raises(ValueError):
            ProcessSpec(name="x", working_set_mb=-1.0)

    def test_guest_spec(self):
        g = guest_spec(19)
        assert g.nice == 19
        assert g.cpu_bound
        assert g.name == "guest"


class TestHostGroup:
    def test_single(self):
        g = HostGroup.single(0.4)
        assert g.size == 1
        assert g.isolated_usage == pytest.approx(0.4)

    def test_aggregate_usage_capped(self):
        g = HostGroup.with_total_usage(0.9, size=3)
        assert g.isolated_usage == pytest.approx(0.9)
        specs = tuple(
            ProcessSpec(name=f"h{i}", isolated_usage=0.8) for i in range(3)
        )
        assert HostGroup(specs).isolated_usage == 1.0

    def test_with_total_usage_splits_evenly(self):
        g = HostGroup.with_total_usage(0.6, size=3)
        assert all(p.isolated_usage == pytest.approx(0.2) for p in g.processes)

    def test_random_groups(self):
        rng = np.random.default_rng(0)
        g = HostGroup.random(rng, size=5)
        assert g.size == 5
        assert all(0.10 <= p.isolated_usage <= 1.00 for p in g.processes)
        names = [p.name for p in g.processes]
        assert len(set(names)) == 5

    def test_working_set_aggregates(self):
        specs = tuple(
            ProcessSpec(name=f"h{i}", working_set_mb=50.0) for i in range(2)
        )
        assert HostGroup(specs).working_set_mb == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HostGroup(())
        with pytest.raises(ValueError):
            HostGroup.random(np.random.default_rng(0), 0)
        with pytest.raises(ValueError):
            HostGroup.with_total_usage(0.5, 0)
