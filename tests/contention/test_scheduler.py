"""Tests for the event-driven scheduler simulator."""

import numpy as np
import pytest

from repro.contention.processes import HostGroup, ProcessSpec, guest_spec
from repro.contention.scheduler import SchedulerParams, SchedulerSimulator


@pytest.fixture(scope="module")
def sim():
    return SchedulerSimulator()


class TestParams:
    def test_timeslice_rule(self):
        p = SchedulerParams()
        assert p.timeslice(0) == pytest.approx(0.100)
        assert p.timeslice(19) == pytest.approx(0.005)
        assert p.timeslice(10) == pytest.approx(0.050)

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerParams(timeslice_unit=0.0)
        with pytest.raises(ValueError):
            SchedulerParams(tick=-1.0)
        with pytest.raises(ValueError):
            SchedulerParams(equal_nice_preempt_prob=1.5)
        with pytest.raises(ValueError):
            SchedulerParams(context_switch_cost=-0.1)


class TestBasicRuns:
    def test_lone_cpu_bound_process_saturates(self, sim):
        res = sim.run([guest_spec(0)], duration=30.0, seed=0)
        assert res.cpu_usage["guest"] == pytest.approx(1.0, abs=0.02)

    def test_lone_bursty_process_hits_target(self, sim):
        for target in (0.1, 0.5, 0.9):
            res = sim.run(
                [ProcessSpec(name="h", isolated_usage=target)], duration=60.0, seed=1
            )
            assert res.cpu_usage["h"] == pytest.approx(target, abs=0.05)

    def test_total_usage_bounded(self, sim):
        specs = [ProcessSpec(name=f"h{i}", isolated_usage=0.6) for i in range(3)]
        res = sim.run(specs, duration=30.0, seed=2)
        assert sum(res.cpu_usage.values()) <= 1.0 + 1e-6

    def test_two_cpu_bound_equal_nice_share_fairly(self, sim):
        specs = [
            ProcessSpec(name="a", isolated_usage=1.0),
            ProcessSpec(name="b", isolated_usage=1.0),
        ]
        res = sim.run(specs, duration=30.0, seed=3)
        assert res.cpu_usage["a"] == pytest.approx(0.5, abs=0.05)
        assert res.cpu_usage["b"] == pytest.approx(0.5, abs=0.05)

    def test_nice19_starves_against_nice0_cpu_bound(self, sim):
        specs = [guest_spec(0), ProcessSpec(name="victim", nice=19, isolated_usage=1.0)]
        res = sim.run(specs, duration=30.0, seed=4)
        # Strict priority: the nice-19 spinner only runs in scheduling gaps.
        assert res.cpu_usage["victim"] < 0.10
        assert res.cpu_usage["guest"] > 0.90

    def test_guest_soaks_idle_cycles(self, sim):
        host = ProcessSpec(name="h", isolated_usage=0.3)
        res = sim.run([host, guest_spec(19)], duration=60.0, seed=5)
        # Guest picks up roughly the idle complement of the host usage.
        assert res.cpu_usage["guest"] > 0.55
        assert res.cpu_usage["h"] + res.cpu_usage["guest"] <= 1.0 + 1e-6

    def test_determinism(self, sim):
        specs = [ProcessSpec(name="h", isolated_usage=0.4), guest_spec(0)]
        a = sim.run(specs, duration=20.0, seed=7)
        b = sim.run(specs, duration=20.0, seed=7)
        assert a.cpu_usage == b.cpu_usage
        assert a.dispatches == b.dispatches

    def test_paired_seeds_stabilize_reduction_estimate(self, sim):
        # The point of per-process RNG streams: the same seed gives the
        # host identical burst/sleep sequences with and without the
        # guest, so per-rep reduction estimates have low variance.
        host = ProcessSpec(name="h", isolated_usage=0.3)
        per_rep = []
        for rep in range(4):
            iso = sim.run([host], duration=60.0, seed=rep).cpu_usage["h"]
            tog = sim.run([host, guest_spec(19)], duration=60.0, seed=rep).cpu_usage["h"]
            per_rep.append((iso - tog) / iso)
        assert np.std(per_rep) < 0.02

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.run([], duration=0.0)
        with pytest.raises(ValueError):
            sim.run([guest_spec(0), guest_spec(0)], duration=10.0)
        with pytest.raises(ValueError):
            sim.run([guest_spec(0)], duration=10.0, warmup=-1.0)


class TestContentionBehaviour:
    """Structural properties of the paper's reduction-rate curves."""

    @staticmethod
    def reduction(sim, load, nice, size=1, reps=3, duration=90.0):
        group = HostGroup.with_total_usage(load, size)
        names = [p.name for p in group.processes]
        vals = []
        for rep in range(reps):
            iso = sim.run(list(group.processes), duration, seed=rep).usage_of(names)
            tog = sim.run(
                list(group.processes) + [guest_spec(nice)], duration, seed=rep
            ).usage_of(names)
            vals.append((iso - tog) / iso)
        return float(np.mean(vals))

    def test_reduction_grows_with_load(self, sim):
        r_low = self.reduction(sim, 0.1, 0)
        r_high = self.reduction(sim, 0.8, 0)
        assert r_high > r_low

    def test_nice19_hurts_less_than_nice0(self, sim):
        r0 = self.reduction(sim, 0.5, 0)
        r19 = self.reduction(sim, 0.5, 19)
        assert r19 < r0

    def test_light_load_nice0_below_limit(self, sim):
        assert self.reduction(sim, 0.10, 0) < 0.05

    def test_heavy_load_nice19_above_limit(self, sim):
        assert self.reduction(sim, 0.85, 19) > 0.05

    def test_mid_load_reniced_guest_acceptable(self, sim):
        # Between Th1 and Th2 a reniced guest keeps the slowdown small —
        # the reason S2 exists.
        assert self.reduction(sim, 0.4, 19) < 0.05
