"""Tests for the probabilistic calibration tooling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.calibration import (
    brier_score,
    expected_calibration_error,
    reliability_diagram,
)


def perfect_forecaster(rng, n=2000):
    """Predictions equal to the true per-event probabilities."""
    p = rng.uniform(0.0, 1.0, n)
    y = rng.random(n) < p
    return p, y


class TestBrierScore:
    def test_perfect_binary_forecaster(self):
        p = [1.0, 0.0, 1.0]
        y = [True, False, True]
        dec = brier_score(p, y)
        assert dec.brier == 0.0
        assert dec.reliability == 0.0

    def test_worst_forecaster(self):
        dec = brier_score([1.0, 0.0], [False, True])
        assert dec.brier == pytest.approx(1.0)

    def test_calibrated_forecaster_low_reliability(self, rng):
        p, y = perfect_forecaster(rng)
        dec = brier_score(p, y)
        assert dec.reliability < 0.01
        assert dec.resolution > 0.05  # it also discriminates

    def test_constant_base_rate_forecast(self, rng):
        y = rng.random(1000) < 0.3
        p = np.full(1000, y.mean())
        dec = brier_score(p, y)
        # Calibrated but zero resolution: brier == uncertainty.
        assert dec.reliability == pytest.approx(0.0, abs=1e-9)
        assert dec.resolution == pytest.approx(0.0, abs=1e-9)
        assert dec.brier == pytest.approx(dec.uncertainty)

    def test_miscalibrated_forecaster_penalized(self, rng):
        y = rng.random(1000) < 0.2
        overconfident = np.full(1000, 0.9)
        dec = brier_score(overconfident, y)
        assert dec.reliability > 0.4

    def test_decomposition_identity(self, rng):
        p, y = perfect_forecaster(rng, 500)
        dec = brier_score(p, y)
        assert dec.brier == pytest.approx(
            dec.reliability - dec.resolution + dec.uncertainty
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            brier_score([], [])
        with pytest.raises(ValueError):
            brier_score([0.5], [True, False])
        with pytest.raises(ValueError):
            brier_score([1.5], [True])
        with pytest.raises(ValueError):
            brier_score([0.5], [True], n_bins=0)


class TestReliabilityDiagram:
    def test_bins_cover_data(self, rng):
        p, y = perfect_forecaster(rng, 1000)
        diagram = reliability_diagram(p, y, n_bins=10)
        assert sum(c for _a, _b, c in diagram) == 1000
        assert 1 <= len(diagram) <= 10

    def test_calibrated_points_near_diagonal(self, rng):
        p, y = perfect_forecaster(rng, 5000)
        for p_bar, y_bar, count in reliability_diagram(p, y):
            if count > 100:
                assert abs(p_bar - y_bar) < 0.1

    def test_empty_bins_omitted(self):
        diagram = reliability_diagram([0.05, 0.06], [True, False], n_bins=10)
        assert len(diagram) == 1

    def test_boundary_prediction(self):
        # p = 1.0 must land in the last bin, not overflow.
        diagram = reliability_diagram([1.0], [True], n_bins=10)
        assert len(diagram) == 1
        assert diagram[0][2] == 1

    def test_all_in_one_bin_yields_single_point(self):
        # A constant predictor degenerates to one diagram point whose
        # observed frequency is the outcome base rate.
        diagram = reliability_diagram([0.42] * 8, [True] * 6 + [False] * 2)
        assert diagram == [(pytest.approx(0.42), pytest.approx(0.75), 8)]

    def test_all_true_and_all_false_outcomes(self):
        # Degenerate outcome vectors are fine: observed frequency is
        # 1.0 (or 0.0) in every populated bin.
        for outcome, freq in ((True, 1.0), (False, 0.0)):
            diagram = reliability_diagram([0.1, 0.5, 0.9], [outcome] * 3)
            assert [y for _p, y, _c in diagram] == [freq] * 3

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            reliability_diagram([], [])


class TestECE:
    def test_perfect(self):
        assert expected_calibration_error([1.0, 0.0], [True, False]) == 0.0

    def test_systematic_bias(self):
        ece = expected_calibration_error([0.8] * 100, [False] * 100)
        assert ece == pytest.approx(0.8)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        p = rng.uniform(0, 1, 50)
        y = rng.random(50) < 0.5
        assert 0.0 <= expected_calibration_error(p, y) <= 1.0

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            expected_calibration_error([], [])

    def test_single_bin_degenerates_to_that_bin(self):
        # Every prediction in one bin: ECE is |mean predicted - observed|.
        ece = expected_calibration_error([0.42] * 8, [True] * 6 + [False] * 2)
        assert ece == pytest.approx(abs(0.42 - 0.75))

    def test_all_true_and_all_false_outcomes(self):
        assert expected_calibration_error(
            [1.0, 0.95, 0.99], [True, True, True]
        ) == pytest.approx(0.02, abs=1e-12)
        assert expected_calibration_error(
            [0.0, 0.05], [False, False]
        ) == pytest.approx(0.025, abs=1e-12)
