"""Tests for the sample-to-state classifier, including the transient rule."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig, StateClassifier
from repro.core.states import State, Thresholds


def classify(load, mem=None, up=None, period=6.0, **cfg):
    load = np.asarray(load, dtype=float)
    mem = np.full(load.shape, 400.0) if mem is None else np.asarray(mem, dtype=float)
    up = np.ones(load.shape, bool) if up is None else np.asarray(up, dtype=bool)
    clf = StateClassifier(ClassifierConfig(**cfg)) if cfg else StateClassifier()
    return clf.classify_arrays(load, mem, up, period)


class TestCpuStates:
    def test_light_load_is_s1(self):
        assert list(classify([0.0, 0.1, 0.19])) == [1, 1, 1]

    def test_heavy_load_is_s2(self):
        assert list(classify([0.2, 0.45, 0.6])) == [2, 2, 2]

    def test_sustained_overload_is_s3(self):
        # 12 samples x 6 s = 72 s > 60 s tolerance.
        states = classify([0.9] * 12)
        assert set(states) == {3}

    def test_threshold_boundaries_match_paper(self):
        # S2 covers Th1 <= L <= Th2.
        out = classify([0.1999, 0.2, 0.6, 0.61] + [0.61] * 11)
        assert out[0] == 1 and out[1] == 2 and out[2] == 2
        assert out[3] == 3


class TestTransientRule:
    def test_short_spike_absorbed_into_s1(self):
        # 5 samples x 6 s = 30 s < 60 s: guest suspended, not killed.
        load = [0.05] * 10 + [0.95] * 5 + [0.05] * 10
        states = classify(load)
        assert set(states) == {1}

    def test_short_spike_absorbed_into_s2(self):
        load = [0.4] * 10 + [0.95] * 5 + [0.4] * 10
        states = classify(load)
        assert set(states) == {2}

    def test_spike_inherits_preceding_state(self):
        # Spike between an S1 run and an S2 run belongs to the preceding S1.
        load = [0.05] * 10 + [0.95] * 3 + [0.4] * 10
        states = classify(load)
        assert list(states[10:13]) == [1, 1, 1]

    def test_leading_spike_inherits_following_state(self):
        load = [0.95] * 3 + [0.05] * 10
        states = classify(load)
        assert list(states[:3]) == [1, 1, 1]

    def test_spike_at_exact_tolerance_is_failure(self):
        # 10 samples x 6 s = 60 s: not strictly less than the tolerance.
        load = [0.05] * 5 + [0.95] * 10 + [0.05] * 5
        states = classify(load)
        assert set(states[5:15]) == {3}

    def test_spike_with_no_operational_neighbour_defaults_to_s2(self):
        # A sequence that is entirely one short spike has no operational
        # neighbour; the conservative S2 is used.
        states = classify([0.95] * 3)
        assert list(states) == [2, 2, 2]

    def test_adjacent_overload_merges_into_one_run(self):
        # A 3-sample spike flowing into a 12-sample overload is a single
        # 15-sample S3 run — longer than the tolerance, so all S3.
        states = classify([0.95] * 3 + [0.7] * 12)
        assert set(states) == {3}

    def test_tolerance_scales_with_period(self):
        # Same 5 samples but 30 s period = 150 s > 60 s: a real S3.
        load = [0.05] * 5 + [0.95] * 5 + [0.05] * 5
        states = classify(load, period=30.0)
        assert set(states[5:10]) == {3}

    def test_custom_tolerance(self):
        load = [0.05] * 5 + [0.95] * 5 + [0.05] * 5
        states = classify(load, transient_tolerance=10.0)
        assert set(states[5:10]) == {3}


class TestMemoryAndRevocation:
    def test_low_memory_is_s4(self):
        states = classify([0.1, 0.1], mem=[100.0, 500.0])
        assert list(states) == [4, 1]

    def test_memory_requirement_configurable(self):
        states = classify([0.1], mem=[100.0], guest_mem_requirement_mb=64.0)
        assert list(states) == [1]

    def test_down_is_s5(self):
        states = classify([0.0, 0.0], up=[False, True])
        assert list(states) == [5, 1]

    def test_s5_overrides_s4_overrides_s3(self):
        # One sample that is down, thrashing and overloaded at once: S5 wins.
        states = classify([0.95] * 12, mem=[10.0] * 12, up=[False] * 12)
        assert set(states) == {5}
        states = classify([0.95] * 12, mem=[10.0] * 12)
        assert set(states) == {4}


class TestClassifierAPI:
    def test_shape_mismatch_rejected(self):
        clf = StateClassifier()
        with pytest.raises(ValueError):
            clf.classify_arrays(np.zeros(3), np.zeros(2), np.ones(3, bool), 6.0)

    def test_bad_period_rejected(self):
        clf = StateClassifier()
        with pytest.raises(ValueError):
            clf.classify_arrays(np.zeros(3), np.zeros(3), np.ones(3, bool), 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClassifierConfig(transient_tolerance=-1.0)
        with pytest.raises(ValueError):
            ClassifierConfig(guest_mem_requirement_mb=-5.0)

    def test_classify_trace_matches_arrays(self, short_trace):
        clf = StateClassifier()
        a = clf.classify_trace(short_trace)
        b = clf.classify_arrays(
            short_trace.load, short_trace.free_mem_mb, short_trace.up, short_trace.sample_period
        )
        assert np.array_equal(a, b)
        assert a.dtype == np.int8
        assert set(np.unique(a)) <= {1, 2, 3, 4, 5}

    def test_classify_window(self, short_trace):
        from repro.core.windows import ClockWindow

        clf = StateClassifier()
        view = short_trace.window_view(ClockWindow.from_hours(8, 2).on_day(2))
        states = clf.classify_window(view)
        assert states.shape[0] == view.n_samples

    def test_custom_thresholds_change_result(self):
        load = [0.3] * 5
        default = classify(load)
        strict = StateClassifier(
            ClassifierConfig(thresholds=Thresholds(th1=0.35, th2=0.8))
        ).classify_arrays(np.array(load), np.full(5, 400.0), np.ones(5, bool), 6.0)
        assert set(default) == {2}
        assert set(strict) == {1}

    def test_transient_tolerance_samples(self):
        clf = StateClassifier()
        assert clf.transient_tolerance_samples(6.0) == 10
        assert clf.transient_tolerance_samples(30.0) == 2
        assert clf.transient_tolerance_samples(120.0) == 1
