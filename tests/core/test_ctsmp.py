"""Tests for the continuous-time (phase-type) SMP approximation."""

import numpy as np
import pytest

from repro.core.ctsmp import ContinuousSmp, fit_phase_type
from repro.core.smp import SLOT_INDEX, SmpKernel, estimate_kernel, temporal_reliability
from repro.core.states import State


def make_kernel(horizon=60, step=6.0, entries=None):
    k = np.zeros((8, horizon + 1))
    for src, dst, l, p in entries or []:
        k[SLOT_INDEX[(src, dst)], l] = p
    return SmpKernel(k, step)


class TestPhaseFit:
    def test_exponential(self):
        fit = fit_phase_type(mean=10.0, scv=1.0)
        assert fit.n_phases == 1
        assert fit.mean() == pytest.approx(10.0)

    def test_erlang_for_low_scv(self):
        fit = fit_phase_type(mean=10.0, scv=0.25)
        assert fit.n_phases == 4  # Erlang-4 has SCV 1/4
        assert fit.mean() == pytest.approx(10.0)

    def test_hyperexponential_for_high_scv(self):
        fit = fit_phase_type(mean=10.0, scv=4.0)
        assert fit.n_phases == 2
        assert fit.mean() == pytest.approx(10.0)
        assert fit.initial.sum() == pytest.approx(1.0)

    def test_near_deterministic_capped(self):
        fit = fit_phase_type(mean=5.0, scv=0.0001)
        assert fit.n_phases <= 20
        assert fit.mean() == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_phase_type(mean=0.0, scv=1.0)
        with pytest.raises(ValueError):
            fit_phase_type(mean=1.0, scv=-0.5)

    def test_exit_rates_balance_generator(self):
        for scv in (0.3, 1.0, 3.0):
            fit = fit_phase_type(mean=7.0, scv=scv)
            row_sums = fit.generator.sum(axis=1) + fit.exit_rates
            assert np.allclose(row_sums, 0.0, atol=1e-9)


class TestContinuousSmp:
    def test_no_hazard_tr_one(self):
        kern = make_kernel(entries=[(1, 2, 5, 0.5), (2, 1, 5, 0.5)])
        ct = ContinuousSmp(kern)
        assert ct.temporal_reliability(init_state=State.S1) == pytest.approx(1.0, abs=1e-6)

    def test_pure_failure_kernel(self):
        # From S1, always fail to S3 after ~5 steps: TR over the horizon
        # should be small (the exponential tail keeps it above 0).
        kern = make_kernel(horizon=60, entries=[(1, 3, 5, 1.0)])
        ct = ContinuousSmp(kern)
        tr = ct.temporal_reliability(init_state=State.S1)
        assert tr < 0.2

    def test_failure_split_respected(self):
        kern = make_kernel(horizon=60, entries=[(1, 3, 5, 0.6), (1, 5, 5, 0.4)])
        ct = ContinuousSmp(kern)
        p = ct.failure_probabilities(60 * 6.0, State.S1)
        # S3 absorbs more mass than S5, in roughly the 60:40 ratio.
        assert p[0] > p[2] > 0.0
        assert p[0] / max(p[2], 1e-12) == pytest.approx(1.5, rel=0.15)

    def test_failure_init_state(self):
        kern = make_kernel(entries=[(1, 2, 5, 0.5)])
        ct = ContinuousSmp(kern)
        p = ct.failure_probabilities(100.0, State.S4)
        assert p[1] == pytest.approx(1.0)
        assert ct.temporal_reliability(100.0, State.S4) == 0.0

    def test_invalid_init(self):
        ct = ContinuousSmp(make_kernel(entries=[(1, 2, 5, 0.5)]))
        with pytest.raises(ValueError):
            ct.failure_probabilities(10.0, 0)
        with pytest.raises(ValueError):
            ct.failure_probabilities(-1.0, State.S1)

    def test_zero_horizon(self):
        ct = ContinuousSmp(make_kernel(entries=[(1, 3, 5, 1.0)]))
        assert ct.temporal_reliability(0.0, State.S1) == pytest.approx(1.0)

    def test_monotone_in_horizon(self):
        ct = ContinuousSmp(make_kernel(horizon=60, entries=[(1, 3, 10, 0.5)]))
        trs = [ct.temporal_reliability(t, State.S1) for t in (30.0, 120.0, 600.0)]
        assert trs[0] >= trs[1] >= trs[2]

    def test_approximates_discrete_on_exponential_process(self, rng):
        # Generate sequences from a process with geometric holding times
        # (the discrete analogue of exponential): the phase-type CTMC
        # should closely agree with the discrete solver.
        def gen():
            seq = []
            state = 1
            while len(seq) < 100:
                hold = int(rng.geometric(0.2))
                if state == 1:
                    nxt = 2 if rng.random() < 0.85 else 3
                else:
                    nxt = 1 if rng.random() < 0.85 else 5
                seq.extend([state] * hold)
                state = nxt
                if nxt in (3, 5):
                    seq.extend([nxt] * (100 - len(seq)))
                    break
            return np.array(seq[:100], dtype=np.int8)

        seqs = [gen() for _ in range(300)]
        kern = estimate_kernel(seqs, horizon=80, step=6.0, censoring="km")
        discrete = temporal_reliability(kern, 1)
        ct = ContinuousSmp(kern)
        continuous = ct.temporal_reliability(init_state=1)
        assert continuous == pytest.approx(discrete, abs=0.12)
