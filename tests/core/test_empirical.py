"""Tests for empirical temporal reliability from test traces."""

import numpy as np
import pytest

from repro.core.classifier import StateClassifier
from repro.core.empirical import empirical_tr, observed_window_outcomes
from repro.core.states import State
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.traces.trace import MachineTrace


def build_trace(day_loads, period=60.0, day_ups=None):
    """One row of per-sample loads per day."""
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.concatenate([np.full(n_per_day, v) for v in day_loads])
    up = np.ones(load.shape, bool)
    if day_ups is not None:
        for d, u in enumerate(day_ups):
            if not u:
                up[d * n_per_day : (d + 1) * n_per_day] = False
    load[~up] = 0.0
    mem = np.where(up, 400.0, 0.0)
    return MachineTrace("emp", 0.0, period, load, mem, up)


class TestEmpiricalTR:
    def test_all_days_available(self):
        trace = build_trace([0.05] * 5)
        res = empirical_tr(trace, StateClassifier(), ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert res.value == pytest.approx(1.0)
        assert res.n_days == 5
        assert res.n_excluded == 0

    def test_fraction_of_failed_days(self):
        # Days 0-4 are weekdays; days 2 and 3 are overloaded all day.
        trace = build_trace([0.05, 0.05, 0.95, 0.95, 0.05])
        res = empirical_tr(trace, StateClassifier(), ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        # Overloaded days start failed -> excluded, not counted as failures.
        assert res.n_days == 3
        assert res.n_excluded == 2
        assert res.value == pytest.approx(1.0)

    def test_unconditioned_counts_failed_starts(self):
        trace = build_trace([0.05, 0.05, 0.95, 0.95, 0.05])
        res = empirical_tr(
            trace,
            StateClassifier(),
            ClockWindow.from_hours(8, 2),
            DayType.WEEKDAY,
            condition_on_operational_start=False,
        )
        assert res.n_days == 5
        assert res.value == pytest.approx(3.0 / 5.0)

    def test_mid_window_failure_counts(self):
        period = 60.0
        n_per_day = int(SECONDS_PER_DAY / period)
        load = np.full(5 * n_per_day, 0.05)
        # Day 1: overload 9:00-9:10 (inside an 8:00+2h window).
        i = n_per_day + int(9 * 3600 / period)
        load[i : i + 10] = 0.95
        trace = MachineTrace("emp", 0.0, period, load, np.full(load.shape, 400.0))
        res = empirical_tr(trace, StateClassifier(), ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert res.n_days == 5
        assert res.value == pytest.approx(4.0 / 5.0)

    def test_down_day_is_failure_or_excluded(self):
        trace = build_trace([0.05] * 5, day_ups=[True, True, False, True, True])
        clf = StateClassifier()
        cond = empirical_tr(trace, clf, ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert cond.n_days == 4 and cond.n_excluded == 1
        uncond = empirical_tr(
            trace, clf, ClockWindow.from_hours(8, 2), DayType.WEEKDAY,
            condition_on_operational_start=False,
        )
        assert uncond.value == pytest.approx(4.0 / 5.0)

    def test_weekend_filtering(self):
        trace = build_trace([0.05] * 7)
        res = empirical_tr(trace, StateClassifier(), ClockWindow.from_hours(8, 2), DayType.WEEKEND)
        assert res.n_days == 2

    def test_empty_history_returns_nan(self):
        trace = build_trace([0.05] * 3)  # Mon-Wed only: no weekend days
        res = empirical_tr(trace, StateClassifier(), ClockWindow.from_hours(8, 2), DayType.WEEKEND)
        assert np.isnan(res.value)
        assert res.n_days == 0


class TestObservedOutcomes:
    def test_rows_have_day_init_and_outcome(self):
        trace = build_trace([0.05, 0.45, 0.95, 0.05, 0.05])
        rows = observed_window_outcomes(
            trace, StateClassifier(), ClockWindow.from_hours(8, 2), DayType.WEEKDAY
        )
        days = [r[0] for r in rows]
        assert days == [0, 1, 3, 4]  # day 2 starts failed
        assert rows[0][1] is State.S1
        assert rows[1][1] is State.S2
        assert all(isinstance(r[2], bool) for r in rows)

    def test_step_multiple_consistency(self, long_trace):
        clf = StateClassifier()
        cw = ClockWindow.from_hours(10, 2)
        # Unconditioned: coarsening takes the max state per group, so a
        # day contains a failure iff the fine sequence does — identical TR.
        fine = empirical_tr(long_trace, clf, cw, DayType.WEEKDAY, step_multiple=1,
                            condition_on_operational_start=False)
        coarse = empirical_tr(long_trace, clf, cw, DayType.WEEKDAY, step_multiple=10,
                              condition_on_operational_start=False)
        assert fine.value == pytest.approx(coarse.value)
