"""Tests for windowed kernel estimation from history traces."""

import numpy as np
import pytest

from repro.core.classifier import StateClassifier
from repro.core.estimator import EstimatorConfig, WindowedKernelEstimator, coarsen_states
from repro.core.states import State
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.traces.trace import MachineTrace


def flat_trace(n_days=14, period=60.0, load=0.05, start_day=0):
    n = int(n_days * SECONDS_PER_DAY / period)
    return MachineTrace(
        machine_id="flat",
        start_time=start_day * SECONDS_PER_DAY,
        sample_period=period,
        load=np.full(n, load),
        free_mem_mb=np.full(n, 400.0),
        up=np.ones(n, bool),
    )


def trace_with_daily_failure(n_days=10, period=60.0, fail_hour=9.0, fail_minutes=5):
    """Every day: S3 from fail_hour for fail_minutes, else idle."""
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    i0 = int(fail_hour * 3600 / period)
    k = int(fail_minutes * 60 / period)
    for d in range(n_days):
        load[d * n_per_day + i0 : d * n_per_day + i0 + k] = 0.95
    return MachineTrace("daily", 0.0, period, load, np.full(load.shape, 400.0))


class TestCoarsenStates:
    def test_identity(self):
        s = np.array([1, 2, 3])
        assert coarsen_states(s, 1) is s

    def test_max_severity_wins(self):
        s = np.array([1, 1, 5, 1, 2, 2])
        out = coarsen_states(s, 3)
        assert list(out) == [5, 2]

    def test_partial_tail_group(self):
        s = np.array([1, 1, 1, 3])
        out = coarsen_states(s, 3)
        assert list(out) == [1, 3]

    def test_failure_never_hidden(self):
        rng = np.random.default_rng(3)
        s = rng.choice([1, 2], size=100).astype(np.int8)
        s[57] = 4
        for mult in (2, 5, 7):
            assert 4 in coarsen_states(s, mult)


class TestConfigValidation:
    def test_rejects_bad_history_days(self):
        with pytest.raises(ValueError):
            EstimatorConfig(history_days=0)

    def test_rejects_negative_lookback(self):
        with pytest.raises(ValueError):
            EstimatorConfig(lookback=-1.0)

    def test_rejects_bad_step_multiple(self):
        with pytest.raises(ValueError):
            EstimatorConfig(step_multiple=0)


class TestHistorySelection:
    def test_day_type_filtering(self):
        est = WindowedKernelEstimator()
        trace = flat_trace(n_days=14)
        cw = ClockWindow.from_hours(8, 2)
        wd = est.history_days(trace, cw, DayType.WEEKDAY)
        we = est.history_days(trace, cw, DayType.WEEKEND)
        assert len(wd) == 10 and len(we) == 4
        assert all(d % 7 < 5 for d in wd)
        assert all(d % 7 >= 5 for d in we)
        # Most recent first.
        assert wd == sorted(wd, reverse=True)

    def test_history_days_limit(self):
        est = WindowedKernelEstimator(config=EstimatorConfig(history_days=3))
        trace = flat_trace(n_days=14)
        days = est.history_days(trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert len(days) == 3
        assert days == [11, 10, 9]

    def test_window_crossing_midnight_excludes_last_day(self):
        est = WindowedKernelEstimator()
        trace = flat_trace(n_days=8)  # days 0..7
        cw = ClockWindow.from_hours(22, 4)  # ends 02:00 next day
        days = est.history_days(trace, cw, DayType.WEEKDAY)
        # Day 7's window would end on day 8, outside the trace.
        assert 7 not in days
        assert 4 in days  # Friday 22:00 -> Saturday 02:00 is still in-trace

    def test_history_windows_have_lookback(self):
        est = WindowedKernelEstimator(config=EstimatorConfig(lookback=3600.0))
        trace = flat_trace(n_days=7, period=60.0)
        hws = est.history_windows(trace, ClockWindow.from_hours(8, 1), DayType.WEEKDAY)
        assert all(hw.lookback_steps == 60 for hw in hws)
        assert all(hw.states.shape[0] == 60 + 60 for hw in hws)

    def test_lookback_clipped_at_trace_start(self):
        est = WindowedKernelEstimator(config=EstimatorConfig(lookback=7200.0))
        trace = flat_trace(n_days=7, period=60.0)
        hws = est.history_windows(trace, ClockWindow.from_hours(1, 1), DayType.WEEKDAY)
        day0 = [hw for hw in hws if hw.day == 0][0]
        assert day0.lookback_steps == 60  # only 1 h exists before 01:00 on day 0


class TestEstimation:
    def test_flat_trace_yields_zero_hazard(self):
        est = WindowedKernelEstimator()
        trace = flat_trace()
        kern = est.estimate(trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert kern.k.sum() == pytest.approx(0.0)

    def test_daily_failure_window_sees_hazard(self):
        est = WindowedKernelEstimator()
        # Overload covers the rest of the window, so each day contributes
        # exactly one S1 visit that certainly transitions to S3.
        trace = trace_with_daily_failure(fail_minutes=180)
        kern = est.estimate(trace, ClockWindow.from_hours(8, 3), DayType.WEEKDAY)
        assert kern.slot(1, 3).sum() > 0.9
        # The transition happens one hour (60 steps) into the window.
        assert kern.slot(1, 3)[60] == pytest.approx(kern.slot(1, 3).sum())

    def test_post_failure_visits_dilute_hazard(self):
        est = WindowedKernelEstimator()
        # A short overload splits each day into a failing S1 visit and a
        # censored post-failure S1 visit: pooled per-visit hazard is 1/2.
        trace = trace_with_daily_failure(fail_minutes=5)
        kern = est.estimate(trace, ClockWindow.from_hours(8, 3), DayType.WEEKDAY)
        assert kern.slot(1, 3).sum() == pytest.approx(0.5)

    def test_unaffected_window_sees_no_hazard(self):
        est = WindowedKernelEstimator()
        trace = trace_with_daily_failure(fail_hour=9.0)
        kern = est.estimate(trace, ClockWindow.from_hours(14, 3), DayType.WEEKDAY)
        assert kern.k.sum() == pytest.approx(0.0)

    def test_estimate_from_absolute_window(self):
        est = WindowedKernelEstimator()
        trace = trace_with_daily_failure(n_days=10, fail_minutes=180)
        target = ClockWindow.from_hours(8, 3).on_day(12)  # future day
        kern = est.estimate(trace, target)
        assert kern.slot(1, 3).sum() > 0.9

    def test_clock_window_requires_day_type(self):
        est = WindowedKernelEstimator()
        with pytest.raises(ValueError):
            est.estimate(flat_trace(), ClockWindow.from_hours(8, 1))

    def test_step_multiple_changes_horizon(self):
        trace = flat_trace(period=60.0)
        cw = ClockWindow.from_hours(8, 1)
        k1 = WindowedKernelEstimator().estimate(trace, cw, DayType.WEEKDAY)
        k5 = WindowedKernelEstimator(config=EstimatorConfig(step_multiple=5)).estimate(
            trace, cw, DayType.WEEKDAY
        )
        assert k1.horizon == 60
        assert k5.horizon == 12
        assert k5.step == pytest.approx(300.0)

    def test_step_property(self):
        est = WindowedKernelEstimator(config=EstimatorConfig(step_multiple=4))
        assert est.step(flat_trace(period=30.0)) == pytest.approx(120.0)


class TestTypicalInitialState:
    def test_idle_start_is_s1(self):
        est = WindowedKernelEstimator()
        trace = flat_trace(load=0.05)
        s = est.typical_initial_state(trace, ClockWindow.from_hours(8, 1), DayType.WEEKDAY)
        assert s is State.S1

    def test_busy_start_is_s2(self):
        est = WindowedKernelEstimator()
        trace = flat_trace(load=0.45)
        s = est.typical_initial_state(trace, ClockWindow.from_hours(8, 1), DayType.WEEKDAY)
        assert s is State.S2

    def test_no_history_falls_back_to_s1(self):
        est = WindowedKernelEstimator()
        trace = flat_trace(n_days=2, start_day=5)  # only weekend days 5, 6
        s = est.typical_initial_state(trace, ClockWindow.from_hours(8, 1), DayType.WEEKDAY)
        assert s is State.S1


class TestOnSyntheticTrace:
    def test_estimation_runs_on_synthetic(self, short_trace):
        est = WindowedKernelEstimator()
        kern = est.estimate(short_trace, ClockWindow.from_hours(12, 2), DayType.WEEKDAY)
        assert kern.horizon == 240  # 2 h at 30 s
        assert 0.0 <= kern.k.sum() <= 2.0

    def test_busy_hours_have_more_hazard_than_night(self, long_trace):
        est = WindowedKernelEstimator()
        k_day = est.estimate(long_trace, ClockWindow.from_hours(13, 3), DayType.WEEKDAY)
        k_night = est.estimate(long_trace, ClockWindow.from_hours(2, 3), DayType.WEEKDAY)
        day_fail = sum(k_day.slot(s, j).sum() for s in (1, 2) for j in (3, 4, 5))
        night_fail = sum(k_night.slot(s, j).sum() for s in (1, 2) for j in (3, 4, 5))
        assert day_fail > night_fail
