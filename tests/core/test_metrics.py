"""Tests for the evaluation metrics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    ErrorSummary,
    accuracy_from_error,
    prediction_discrepancy,
    relative_error,
    summarize_errors,
)

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestRelativeError:
    def test_exact_prediction(self):
        assert relative_error(0.8, 0.8) == 0.0

    def test_paper_definition(self):
        assert relative_error(0.9, 0.6) == pytest.approx(0.5)
        assert relative_error(0.3, 0.6) == pytest.approx(0.5)

    def test_zero_empirical_zero_prediction(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_empirical_nonzero_prediction(self):
        assert math.isinf(relative_error(0.5, 0.0))

    def test_nan_propagates(self):
        assert math.isnan(relative_error(float("nan"), 0.5))
        assert math.isnan(relative_error(0.5, float("nan")))

    @given(probs, st.floats(min_value=1e-6, max_value=1.0))
    def test_symmetric_in_difference(self, p, e):
        assert relative_error(p, e) == pytest.approx(abs(p - e) / e)
        assert relative_error(p, e) >= 0.0


class TestPredictionDiscrepancy:
    def test_identical_predictions(self):
        assert prediction_discrepancy(0.7, 0.7) == 0.0

    def test_relative_to_clean(self):
        assert prediction_discrepancy(0.5, 1.0) == pytest.approx(0.5)

    def test_zero_clean(self):
        assert prediction_discrepancy(0.0, 0.0) == 0.0
        assert math.isinf(prediction_discrepancy(0.2, 0.0))


class TestAccuracy:
    def test_complement(self):
        assert accuracy_from_error(0.135) == pytest.approx(0.865)

    def test_clamped_at_zero(self):
        assert accuracy_from_error(1.5) == 0.0

    def test_nan(self):
        assert math.isnan(accuracy_from_error(float("nan")))


class TestErrorSummary:
    def test_basic_stats(self):
        s = summarize_errors([0.1, 0.2, 0.3])
        assert s.mean == pytest.approx(0.2)
        assert s.minimum == pytest.approx(0.1)
        assert s.maximum == pytest.approx(0.3)
        assert s.n == 3
        assert s.n_dropped == 0

    def test_drops_non_finite(self):
        s = summarize_errors([0.1, float("inf"), float("nan"), 0.3])
        assert s.n == 2
        assert s.n_dropped == 2
        assert s.mean == pytest.approx(0.2)

    def test_all_dropped(self):
        s = summarize_errors([float("nan")])
        assert s.n == 0
        assert math.isnan(s.mean)

    def test_empty_sequence_raises(self):
        # Empty input is a caller bug (no figure point to summarize), and
        # is distinct from all-non-finite input, which stays a NaN summary.
        with pytest.raises(ValueError, match="empty error sequence"):
            summarize_errors([])
        with pytest.raises(ValueError, match="empty error sequence"):
            ErrorSummary.from_errors(iter(()))

    def test_accuracies(self):
        s = summarize_errors([0.1, 0.2])
        assert s.mean_accuracy == pytest.approx(0.85)
        assert s.worst_accuracy == pytest.approx(0.8)

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50))
    def test_bounds_property(self, errors):
        s = ErrorSummary.from_errors(errors)
        assert s.minimum <= s.mean + 1e-12 and s.mean <= s.maximum + 1e-12
        assert s.n == len(errors)
