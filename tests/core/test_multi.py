"""Tests for multi-machine reliability and completion-time models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multi import (
    any_survival,
    expected_completion_time,
    expected_completion_with_checkpointing,
    group_survival,
    replication_needed,
    select_best_k,
)

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestGroupSurvival:
    def test_product(self):
        assert group_survival([0.9, 0.8]) == pytest.approx(0.72)

    def test_single(self):
        assert group_survival([0.5]) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            group_survival([])
        with pytest.raises(ValueError):
            group_survival([1.2])

    @given(st.lists(probs, min_size=1, max_size=8))
    def test_bounded_by_worst_machine(self, trs):
        assert group_survival(trs) <= min(trs) + 1e-12


class TestAnySurvival:
    def test_complement_product(self):
        assert any_survival([0.5, 0.5]) == pytest.approx(0.75)

    def test_one_reliable_machine_suffices(self):
        assert any_survival([1.0, 0.0]) == 1.0

    @given(st.lists(probs, min_size=1, max_size=8))
    def test_at_least_best_machine(self, trs):
        assert any_survival(trs) >= max(trs) - 1e-12

    @given(st.lists(probs, min_size=1, max_size=8))
    def test_ordering(self, trs):
        assert any_survival(trs) >= group_survival(trs) - 1e-12


class TestSelectBestK:
    def test_ranking(self):
        trs = {"a": 0.5, "b": 0.9, "c": 0.7}
        assert select_best_k(trs, 2) == ["b", "c"]

    def test_tie_break_by_id(self):
        trs = {"z": 0.5, "a": 0.5}
        assert select_best_k(trs, 1) == ["a"]

    def test_insufficient_machines(self):
        with pytest.raises(ValueError):
            select_best_k({"a": 0.5}, 2)
        with pytest.raises(ValueError):
            select_best_k({"a": 0.5}, 0)


class TestReplication:
    def test_already_sufficient(self):
        assert replication_needed(0.95, 0.9) == 1

    def test_known_case(self):
        # 1 - 0.5^n >= 0.95  ->  n >= 4.32 -> 5
        assert replication_needed(0.5, 0.95) == 5

    def test_achieves_target(self):
        for tr in (0.2, 0.5, 0.8):
            for target in (0.9, 0.99):
                n = replication_needed(tr, target)
                assert any_survival([tr] * n) >= target - 1e-12
                if n > 1:
                    assert any_survival([tr] * (n - 1)) < target

    def test_validation(self):
        with pytest.raises(ValueError):
            replication_needed(0.0, 0.9)
        with pytest.raises(ValueError):
            replication_needed(0.5, 1.0)


class TestExpectedCompletion:
    def test_no_failures(self):
        assert expected_completion_time(100.0, 0.0) == 100.0

    def test_formula(self):
        lam, w = 0.01, 100.0
        expected = (math.exp(lam * w) - 1.0) / lam
        assert expected_completion_time(w, lam) == pytest.approx(expected)

    def test_restart_delay_adds(self):
        base = expected_completion_time(100.0, 0.01)
        with_delay = expected_completion_time(100.0, 0.01, restart_delay=30.0)
        assert with_delay > base

    def test_monotone_in_rate(self):
        assert expected_completion_time(100.0, 0.001) < expected_completion_time(100.0, 0.05)

    def test_hopeless_job_infinite(self):
        assert math.isinf(expected_completion_time(1e6, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_completion_time(0.0, 0.1)
        with pytest.raises(ValueError):
            expected_completion_time(10.0, -0.1)
        with pytest.raises(ValueError):
            expected_completion_time(10.0, 0.1, restart_delay=-1.0)


class TestCheckpointedCompletion:
    def test_no_failures_pays_checkpoint_cost(self):
        t = expected_completion_with_checkpointing(100.0, 0.0, 50.0, 5.0)
        assert t == pytest.approx(100.0 + 5.0)  # one intermediate checkpoint

    def test_checkpointing_helps_under_failures(self):
        lam, w = 0.005, 2000.0
        plain = expected_completion_time(w, lam)
        ckpt = expected_completion_with_checkpointing(w, lam, 200.0, 10.0)
        assert ckpt < plain

    def test_checkpointing_wasteful_when_reliable(self):
        lam, w = 1e-7, 2000.0
        plain = expected_completion_time(w, lam)
        ckpt = expected_completion_with_checkpointing(w, lam, 100.0, 10.0)
        assert ckpt > plain  # pays 19 checkpoints for nothing

    def test_young_interval_near_optimal(self):
        from repro.sim.checkpoint import young_interval

        lam, w, cost = 0.002, 5000.0, 10.0
        t_young = expected_completion_with_checkpointing(
            w, lam, young_interval(cost, 1.0 / lam), cost
        )
        # Young's interval beats 4x-off intervals in either direction.
        for factor in (0.25, 4.0):
            t_other = expected_completion_with_checkpointing(
                w, lam, young_interval(cost, 1.0 / lam) * factor, cost
            )
            assert t_young <= t_other * 1.02

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_completion_with_checkpointing(100.0, 0.01, 0.0, 5.0)
        with pytest.raises(ValueError):
            expected_completion_with_checkpointing(100.0, 0.01, 10.0, -1.0)
