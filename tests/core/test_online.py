"""Tests for the incremental (online) predictor."""

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.online import IncrementalPredictor
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.windows import ClockWindow, DayType


@pytest.fixture()
def incremental():
    return IncrementalPredictor(config=EstimatorConfig(step_multiple=10))


WINDOWS = [(2, 1.0), (8, 2.0), (11, 3.0), (14, 5.0), (20, 10.0)]


class TestEquivalenceWithBatch:
    def test_same_tr_as_batch(self, long_trace, incremental):
        batch = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        for h, T in WINDOWS:
            cw = ClockWindow.from_hours(h, T)
            for dtype in (DayType.WEEKDAY, DayType.WEEKEND):
                tr_batch = batch.predict(cw, dtype)
                tr_inc = incremental.predict(long_trace, cw, dtype)
                assert tr_inc == pytest.approx(tr_batch, abs=1e-12), (h, T, dtype)

    def test_same_kernel_as_batch(self, long_trace, incremental):
        batch = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        cw = ClockWindow.from_hours(9, 3)
        k_batch = batch.kernel(cw, DayType.WEEKDAY)
        k_inc = incremental.kernel(long_trace, cw, DayType.WEEKDAY)
        assert np.allclose(k_batch.k, k_inc.k)

    def test_same_initial_state(self, long_trace, incremental):
        batch = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        for h in (2, 9, 14):
            cw = ClockWindow.from_hours(h, 2)
            assert incremental.typical_initial_state(
                long_trace, cw, DayType.WEEKDAY
            ) is batch.estimator.typical_initial_state(long_trace, cw, DayType.WEEKDAY)


class TestCaching:
    def test_second_query_reuses_days(self, long_trace, incremental):
        cw = ClockWindow.from_hours(9, 2)
        incremental.predict(long_trace, cw, DayType.WEEKDAY)
        classified_first = incremental.days_classified
        assert incremental.days_reused == 0
        incremental.predict(long_trace, cw, DayType.WEEKDAY)
        assert incremental.days_classified == classified_first
        assert incremental.days_reused == classified_first

    def test_growing_trace_classifies_only_new_days(self, incremental):
        from repro.traces.synthesis import synthesize_trace

        full = synthesize_trace("grow", n_days=21, sample_period=60.0, seed=4)
        cw = ClockWindow.from_hours(9, 2)
        short = full.slice_days(0, 14)
        incremental.predict(short, cw, DayType.WEEKDAY)
        n_first = incremental.days_classified
        incremental.predict(full, cw, DayType.WEEKDAY)
        new_days = incremental.days_classified - n_first
        assert new_days == 5  # days 14..20 add one working week

    def test_prediction_correct_after_growth(self, incremental):
        from repro.traces.synthesis import synthesize_trace

        full = synthesize_trace("grow2", n_days=21, sample_period=60.0, seed=6)
        cw = ClockWindow.from_hours(10, 3)
        short = full.slice_days(0, 14)
        incremental.predict(short, cw, DayType.WEEKDAY)
        tr_inc = incremental.predict(full, cw, DayType.WEEKDAY)
        batch = TemporalReliabilityPredictor(
            full, estimator_config=incremental.config
        )
        assert tr_inc == pytest.approx(batch.predict(cw, DayType.WEEKDAY), abs=1e-12)

    def test_distinct_windows_cached_separately(self, long_trace, incremental):
        incremental.predict(long_trace, ClockWindow.from_hours(9, 2), DayType.WEEKDAY)
        n = incremental.days_classified
        incremental.predict(long_trace, ClockWindow.from_hours(10, 2), DayType.WEEKDAY)
        assert incremental.days_classified > n

    def test_invalidate_machine(self, long_trace, incremental):
        cw = ClockWindow.from_hours(9, 2)
        incremental.predict(long_trace, cw, DayType.WEEKDAY)
        incremental.invalidate(long_trace.machine_id)
        reused_before = incremental.days_reused
        incremental.predict(long_trace, cw, DayType.WEEKDAY)
        assert incremental.days_reused == reused_before  # nothing reused

    def test_invalidate_all(self, long_trace, incremental):
        cw = ClockWindow.from_hours(9, 2)
        incremental.predict(long_trace, cw, DayType.WEEKDAY)
        incremental.invalidate()
        assert incremental._caches == {}

    def test_subsecond_windows_do_not_share_cache(self, long_trace, incremental):
        # Regression: _clock_key used to round start/duration to whole
        # seconds, so windows 0.2 s apart collided on one cache entry and
        # the second query silently reused the first window's observations.
        a = ClockWindow(start=9 * 3600.0 + 0.2, duration=2 * 3600.0)
        b = ClockWindow(start=9 * 3600.0 + 0.4, duration=2 * 3600.0)
        incremental.predict(long_trace, a, DayType.WEEKDAY)
        n = incremental.days_classified
        reused = incremental.days_reused
        incremental.predict(long_trace, b, DayType.WEEKDAY)
        assert incremental.days_classified > n  # b classified fresh days
        assert incremental.days_reused == reused  # nothing leaked from a
        assert len(incremental._caches) == 2

    def test_subsecond_windows_match_batch(self, long_trace, incremental):
        batch = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        for offset in (0.2, 0.4):
            cw = ClockWindow(start=9 * 3600.0 + offset, duration=2 * 3600.0)
            tr_inc = incremental.predict(long_trace, cw, DayType.WEEKDAY)
            assert tr_inc == pytest.approx(
                batch.predict(cw, DayType.WEEKDAY), abs=1e-12
            ), offset


class TestLruBound:
    def test_unbounded_when_none(self, long_trace):
        pred = IncrementalPredictor(
            config=EstimatorConfig(step_multiple=10), max_cache_entries=None
        )
        for h in range(12):
            pred.predict(long_trace, ClockWindow.from_hours(h, 1.0), DayType.WEEKDAY)
        assert len(pred) == 12

    def test_eviction_bounds_entries(self, long_trace):
        from repro.obs.metrics import scoped_registry

        with scoped_registry() as reg:
            pred = IncrementalPredictor(
                config=EstimatorConfig(step_multiple=10), max_cache_entries=4
            )
            for h in range(10):
                pred.predict(
                    long_trace, ClockWindow.from_hours(h, 1.0), DayType.WEEKDAY
                )
            assert len(pred) == 4
            assert reg.get("incremental_cache_evictions_total").value == 6.0

    def test_lru_order_keeps_hot_entries(self, long_trace):
        pred = IncrementalPredictor(
            config=EstimatorConfig(step_multiple=10), max_cache_entries=2
        )
        hot = ClockWindow.from_hours(9, 1.0)
        pred.predict(long_trace, hot, DayType.WEEKDAY)
        before = pred.days_classified
        # touch hot, then push one cold window through; hot must survive
        for h in (14, 9, 16, 9, 18, 9):
            pred.predict(long_trace, ClockWindow.from_hours(h, 1.0), DayType.WEEKDAY)
        after = pred.days_classified
        pred.predict(long_trace, hot, DayType.WEEKDAY)
        assert pred.days_classified == after  # hot was never evicted
        assert after > before  # the cold windows did classify

    def test_evicted_entry_recomputes_identically(self, long_trace):
        pred = IncrementalPredictor(
            config=EstimatorConfig(step_multiple=10), max_cache_entries=1
        )
        cw = ClockWindow.from_hours(9, 2.0)
        first = pred.predict(long_trace, cw, DayType.WEEKDAY)
        pred.predict(long_trace, ClockWindow.from_hours(15, 2.0), DayType.WEEKDAY)
        assert len(pred) == 1  # the 9h window was evicted
        assert pred.predict(long_trace, cw, DayType.WEEKDAY) == pytest.approx(
            first, abs=1e-15
        )

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            IncrementalPredictor(max_cache_entries=0)


class TestApi:
    def test_absolute_window(self, long_trace, incremental):
        aw = ClockWindow.from_hours(9, 2).on_day(long_trace.last_day + 1)
        tr = incremental.predict(long_trace, aw)
        assert 0.0 <= tr <= 1.0

    def test_clock_window_requires_day_type(self, long_trace, incremental):
        with pytest.raises(ValueError):
            incremental.predict(long_trace, ClockWindow.from_hours(9, 2))

    def test_explicit_init_state(self, long_trace, incremental):
        from repro.core.states import State

        cw = ClockWindow.from_hours(9, 2)
        tr = incremental.predict(long_trace, cw, DayType.WEEKDAY, init_state=State.S5)
        assert tr == 0.0
