"""Tests for the end-to-end temporal-reliability predictor."""

import numpy as np
import pytest

from repro.core.classifier import ClassifierConfig
from repro.core.estimator import EstimatorConfig
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.states import State, Thresholds
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.traces.trace import MachineTrace


def deterministic_trace(n_days=10, period=60.0, fail_prob_by_day=None, seed=0):
    """Idle trace with an optional 10-min overload at 09:00 on chosen days."""
    rng = np.random.default_rng(seed)
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    i0 = int(9 * 3600 / period)
    for d in range(n_days):
        p = (fail_prob_by_day or {}).get(d, 0.0)
        if rng.random() < p:
            load[d * n_per_day + i0 : d * n_per_day + i0 + 10] = 0.95
    return MachineTrace("det", 0.0, period, load, np.full(load.shape, 400.0))


class TestPredictorBasics:
    def test_idle_history_predicts_one(self):
        pred = TemporalReliabilityPredictor(deterministic_trace())
        tr = pred.predict(ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert tr == pytest.approx(1.0)

    def test_certain_failure_predicts_zero(self):
        trace = deterministic_trace(fail_prob_by_day={d: 1.0 for d in range(10)})
        pred = TemporalReliabilityPredictor(trace)
        tr = pred.predict(ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert tr == pytest.approx(0.0, abs=1e-9)

    def test_partial_failure_fraction(self):
        # Failure on every weekday with probability ~0.5 (seeded).
        trace = deterministic_trace(
            n_days=40, fail_prob_by_day={d: 0.5 for d in range(40)}, seed=5
        )
        pred = TemporalReliabilityPredictor(trace)
        tr = pred.predict(ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert 0.2 < tr < 0.8

    def test_window_outside_failure_hour_is_safe(self):
        trace = deterministic_trace(fail_prob_by_day={d: 1.0 for d in range(10)})
        pred = TemporalReliabilityPredictor(trace)
        tr = pred.predict(ClockWindow.from_hours(14, 2), DayType.WEEKDAY)
        assert tr == pytest.approx(1.0)

    def test_failure_init_state_gives_zero(self):
        pred = TemporalReliabilityPredictor(deterministic_trace())
        tr = pred.predict(ClockWindow.from_hours(8, 2), DayType.WEEKDAY, init_state=State.S5)
        assert tr == 0.0

    def test_absolute_window_infers_day_type(self):
        trace = deterministic_trace(fail_prob_by_day={d: 1.0 for d in range(10)})
        pred = TemporalReliabilityPredictor(trace)
        # Day 12 is a Saturday: weekend history (days 5, 6) has no failure
        # only if those days drew no event — they did (prob 1), so expect 0.
        tr_wd = pred.predict(ClockWindow.from_hours(8, 2).on_day(14))  # Monday
        assert tr_wd == pytest.approx(0.0, abs=1e-9)

    def test_clock_window_requires_day_type(self):
        pred = TemporalReliabilityPredictor(deterministic_trace())
        with pytest.raises(ValueError):
            pred.predict(ClockWindow.from_hours(8, 2))


class TestPredictDetailed:
    def test_result_fields(self):
        pred = TemporalReliabilityPredictor(deterministic_trace(n_days=14))
        res = pred.predict_detailed(ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert res.tr == pytest.approx(1.0)
        assert res.init_state is State.S1
        assert res.n_history_days == 10
        assert res.horizon == 120  # 2 h at 60 s
        assert res.step == pytest.approx(60.0)
        assert res.estimation_seconds >= 0.0
        assert res.solve_seconds >= 0.0
        assert res.total_seconds == pytest.approx(
            res.estimation_seconds + res.solve_seconds
        )

    def test_explicit_init_state_s2(self):
        trace = deterministic_trace(fail_prob_by_day={d: 1.0 for d in range(10)})
        pred = TemporalReliabilityPredictor(trace)
        res = pred.predict_detailed(
            ClockWindow.from_hours(8, 2), DayType.WEEKDAY, init_state=State.S2
        )
        assert res.init_state is State.S2

    def test_kernel_access(self):
        pred = TemporalReliabilityPredictor(deterministic_trace())
        kern = pred.kernel(ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert kern.horizon == 120

    def test_update_history(self):
        quiet = deterministic_trace()
        busy = deterministic_trace(fail_prob_by_day={d: 1.0 for d in range(10)})
        pred = TemporalReliabilityPredictor(quiet)
        cw = ClockWindow.from_hours(8, 2)
        assert pred.predict(cw, DayType.WEEKDAY) == pytest.approx(1.0)
        pred.update_history(busy)
        assert pred.predict(cw, DayType.WEEKDAY) == pytest.approx(0.0, abs=1e-9)


class TestPredictorConfiguration:
    def test_custom_thresholds_affect_prediction(self):
        # Load 0.5 all day: S2 by default (safe), S3 with th2=0.4 (failure).
        n = int(5 * SECONDS_PER_DAY / 60.0)
        trace = MachineTrace(
            "halfload", 0.0, 60.0, np.full(n, 0.5), np.full(n, 400.0)
        )
        cw = ClockWindow.from_hours(8, 2)
        default = TemporalReliabilityPredictor(trace)
        assert default.predict(cw, DayType.WEEKDAY, init_state=State.S2) == pytest.approx(1.0)
        strict = TemporalReliabilityPredictor(
            trace,
            classifier_config=ClassifierConfig(thresholds=Thresholds(th1=0.2, th2=0.4)),
        )
        assert strict.predict(cw, DayType.WEEKDAY) == 0.0

    def test_step_multiple_speeds_and_approximates(self, long_trace):
        cw = ClockWindow.from_hours(10, 3)
        fine = TemporalReliabilityPredictor(long_trace)
        coarse = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        tr_f = fine.predict(cw, DayType.WEEKDAY)
        tr_c = coarse.predict(cw, DayType.WEEKDAY)
        # Coarse discretization approximates the fine TR (paper Section
        # 4.1's accuracy/efficiency trade-off).
        assert tr_c == pytest.approx(tr_f, abs=0.15)

    def test_prediction_in_unit_interval(self, long_trace):
        pred = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        for h in (0, 6, 12, 18):
            for T in (1, 5):
                tr = pred.predict(ClockWindow.from_hours(h, T), DayType.WEEKDAY)
                assert 0.0 <= tr <= 1.0
