"""Tests for the TR-profile API (TR as a function of window length)."""

import numpy as np
import pytest

from repro.core.predictor import TemporalReliabilityPredictor, max_reliable_horizon
from repro.core.smp import (
    SLOT_INDEX,
    SmpKernel,
    temporal_reliability,
    temporal_reliability_profile,
)
from repro.core.states import State


def make_kernel(horizon=40, step=6.0, entries=None):
    k = np.zeros((8, horizon + 1))
    for src, dst, l, p in entries or []:
        k[SLOT_INDEX[(src, dst)], l] = p
    return SmpKernel(k, step)


class TestProfileSolver:
    def test_starts_at_one(self):
        kern = make_kernel(entries=[(1, 3, 5, 0.5)])
        profile = temporal_reliability_profile(kern, 1)
        assert profile[0] == 1.0
        assert profile.shape == (41,)

    def test_non_increasing(self):
        rng = np.random.default_rng(0)
        k = np.zeros((8, 31))
        for rows in (slice(0, 4), slice(4, 8)):
            raw = rng.random((4, 30))
            raw /= raw.sum()
            k[rows, 1:] = raw * 0.9
        profile = temporal_reliability_profile(SmpKernel(k, 6.0), 1)
        assert np.all(np.diff(profile) <= 1e-12)

    def test_endpoint_matches_point_solver(self):
        rng = np.random.default_rng(1)
        k = np.zeros((8, 25))
        for rows in (slice(0, 4), slice(4, 8)):
            raw = rng.random((4, 24))
            raw /= raw.sum()
            k[rows, 1:] = raw * 0.7
        kern = SmpKernel(k, 6.0)
        for init in (1, 2):
            profile = temporal_reliability_profile(kern, init)
            assert profile[-1] == pytest.approx(temporal_reliability(kern, init), abs=1e-12)

    def test_every_prefix_matches_truncated_kernel(self):
        kern = make_kernel(horizon=20, entries=[(1, 3, 4, 0.3), (1, 2, 2, 0.5), (2, 5, 3, 0.6)])
        profile = temporal_reliability_profile(kern, 1)
        for m in (1, 5, 10, 20):
            truncated = SmpKernel(kern.k[:, : m + 1].copy(), kern.step)
            assert profile[m] == pytest.approx(
                temporal_reliability(truncated, 1), abs=1e-12
            )

    def test_failure_init(self):
        profile = temporal_reliability_profile(make_kernel(), State.S5)
        assert profile[0] == 1.0
        assert np.all(profile[1:] == 0.0)

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            temporal_reliability_profile(make_kernel(), 0)


class TestMaxReliableHorizon:
    def test_threshold_crossing(self):
        profile = np.array([1.0, 0.95, 0.85, 0.7])
        assert max_reliable_horizon(profile, 60.0, 0.9) == pytest.approx(60.0)
        assert max_reliable_horizon(profile, 60.0, 0.8) == pytest.approx(120.0)
        assert max_reliable_horizon(profile, 60.0, 0.5) == pytest.approx(180.0)

    def test_never_reliable(self):
        # Entry 0 is always 1.0 in real profiles; a synthetic all-low
        # profile yields 0.
        assert max_reliable_horizon(np.array([0.5, 0.4]), 60.0, 0.9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            max_reliable_horizon(np.array([1.0]), 60.0, 0.0)


class TestPredictorProfileApi:
    def test_profile_consistent_with_predict(self, long_trace):
        from repro.core.estimator import EstimatorConfig
        from repro.core.windows import ClockWindow, DayType

        pred = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        cw = ClockWindow.from_hours(9, 5)
        profile, step = pred.predict_profile(cw, DayType.WEEKDAY)
        assert profile[-1] == pytest.approx(pred.predict(cw, DayType.WEEKDAY), abs=1e-12)
        assert step == pytest.approx(300.0)
        assert profile.shape[0] == 61  # 5 h at 300 s + entry 0
