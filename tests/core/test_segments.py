"""Tests for run-length utilities over state sequences."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.segments import (
    failure_free,
    run_length_encode,
    transition_pairs,
    visits,
)
from repro.core.states import State

state_arrays = hnp.arrays(
    dtype=np.int8,
    shape=st.integers(min_value=0, max_value=200),
    elements=st.integers(min_value=1, max_value=5),
)


class TestRunLengthEncode:
    def test_empty(self):
        vals, starts, lengths = run_length_encode(np.array([], dtype=np.int8))
        assert len(vals) == len(starts) == len(lengths) == 0

    def test_single_run(self):
        vals, starts, lengths = run_length_encode(np.array([2, 2, 2]))
        assert list(vals) == [2]
        assert list(starts) == [0]
        assert list(lengths) == [3]

    def test_alternating(self):
        vals, starts, lengths = run_length_encode(np.array([1, 2, 1, 2]))
        assert list(vals) == [1, 2, 1, 2]
        assert list(lengths) == [1, 1, 1, 1]
        assert list(starts) == [0, 1, 2, 3]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            run_length_encode(np.zeros((2, 2)))

    @given(state_arrays)
    def test_reconstruction_property(self, arr):
        vals, starts, lengths = run_length_encode(arr)
        rebuilt = np.concatenate(
            [np.full(ln, v) for v, ln in zip(vals, lengths)]
        ) if len(vals) else np.array([], dtype=arr.dtype)
        assert np.array_equal(rebuilt, arr)
        # Runs are maximal: adjacent run values differ.
        assert all(vals[i] != vals[i + 1] for i in range(len(vals) - 1))
        assert int(np.sum(lengths)) == arr.size


class TestVisits:
    def test_basic(self):
        vs = visits(np.array([1, 1, 2, 3, 3, 3]))
        assert [(v.state, v.start_index, v.length) for v in vs] == [
            (State.S1, 0, 2),
            (State.S2, 2, 1),
            (State.S3, 3, 3),
        ]
        assert vs[-1].end_index == 6

    @given(state_arrays)
    def test_visits_cover_sequence(self, arr):
        vs = visits(arr)
        assert sum(v.length for v in vs) == arr.size
        cursor = 0
        for v in vs:
            assert v.start_index == cursor
            cursor = v.end_index


class TestTransitionPairs:
    def test_counts_holdings(self):
        pairs = transition_pairs(np.array([1, 1, 1, 2, 2, 5]))
        assert pairs == [(State.S1, State.S2, 3), (State.S2, State.S5, 2)]

    def test_last_visit_censored(self):
        assert transition_pairs(np.array([1, 1])) == []

    @given(state_arrays)
    def test_one_fewer_than_visits(self, arr):
        assert len(transition_pairs(arr)) == max(0, len(visits(arr)) - 1)


class TestFailureFree:
    def test_operational_only(self):
        assert failure_free(np.array([1, 2, 1, 2]))

    def test_any_failure(self):
        for bad in (3, 4, 5):
            assert not failure_free(np.array([1, 2, bad, 1]))

    def test_empty_is_failure_free(self):
        assert failure_free(np.array([], dtype=np.int8))
