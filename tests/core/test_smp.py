"""Tests for the semi-Markov kernel: estimation and the Eq.-3 solver."""

import numpy as np
import numpy.testing as npt
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.smp import (
    SLOT_INDEX,
    SLOTS,
    SmpKernel,
    VisitObservation,
    collect_observations,
    estimate_kernel,
    failure_probabilities,
    failure_probabilities_dense,
    kernel_from_observations,
    temporal_reliability,
)
from repro.core.states import State


def make_kernel(horizon=20, step=6.0, entries=None):
    """Construct a kernel with explicit (src, dst, l, p) entries."""
    k = np.zeros((8, horizon + 1))
    for src, dst, l, p in entries or []:
        k[SLOT_INDEX[(src, dst)], l] = p
    return SmpKernel(k, step)


# --------------------------------------------------------------------- #
# kernel construction & invariants
# --------------------------------------------------------------------- #


class TestSmpKernel:
    def test_slots_cover_paper_sparsity(self):
        # Paper Fig. 3: 8 non-zero elements, sources S1/S2 only.
        assert len(SLOTS) == 8
        assert {s for s, _ in SLOTS} == {1, 2}
        assert all(d != s for s, d in SLOTS)
        assert (2, 1) in SLOT_INDEX and (1, 2) in SLOT_INDEX

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            SmpKernel(np.zeros((7, 10)), 6.0)
        with pytest.raises(ValueError):
            SmpKernel(np.zeros((8, 1)), 6.0)

    def test_rejects_negative(self):
        k = np.zeros((8, 5))
        k[0, 1] = -0.1
        with pytest.raises(ValueError):
            SmpKernel(k, 6.0)

    def test_rejects_zero_holding_mass(self):
        k = np.zeros((8, 5))
        k[0, 0] = 0.5
        with pytest.raises(ValueError):
            SmpKernel(k, 6.0)

    def test_rejects_mass_over_one(self):
        k = np.zeros((8, 5))
        k[SLOT_INDEX[(1, 2)], 1] = 0.7
        k[SLOT_INDEX[(1, 3)], 2] = 0.5
        with pytest.raises(ValueError):
            SmpKernel(k, 6.0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            SmpKernel(np.zeros((8, 5)), 0.0)

    def test_q_matrix(self):
        kern = make_kernel(entries=[(1, 2, 3, 0.4), (1, 3, 5, 0.2), (2, 1, 2, 0.9)])
        q = kern.q
        assert q[0, 1] == pytest.approx(0.4)
        assert q[0, 2] == pytest.approx(0.2)
        assert q[1, 0] == pytest.approx(0.9)
        # Failure-state rows are structurally zero.
        assert np.all(q[2:] == 0.0)

    def test_holding_pmf_normalized(self):
        kern = make_kernel(entries=[(1, 2, 3, 0.2), (1, 2, 7, 0.2)])
        pmf = kern.holding_pmf(1, 2)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[3] == pytest.approx(0.5)

    def test_holding_pmf_unobserved_is_zero(self):
        kern = make_kernel()
        assert kern.holding_pmf(1, 5).sum() == 0.0

    def test_expected_holding(self):
        kern = make_kernel(entries=[(1, 2, 4, 0.5)])
        assert kern.expected_holding(1, 2) == pytest.approx(4.0)

    def test_horizon(self):
        assert make_kernel(horizon=33).horizon == 33


# --------------------------------------------------------------------- #
# observation collection
# --------------------------------------------------------------------- #


class TestCollectObservations:
    def test_completed_and_censored(self):
        seq = np.array([1, 1, 1, 2, 2, 1, 1])
        obs = collect_observations([seq])
        assert [(o.state, o.holding, o.target) for o in obs] == [
            (1, 3, 2),
            (2, 2, 1),
            (1, 2, None),
        ]
        assert obs[-1].censored

    def test_failure_targets(self):
        seq = np.array([2, 2, 5, 5])
        obs = collect_observations([seq])
        assert [(o.state, o.holding, o.target) for o in obs] == [(2, 2, 5)]

    def test_failure_visits_skipped(self):
        # The S3 visit itself produces no observation (absorbing model),
        # but the operational visit after it does.
        seq = np.array([3, 3, 1, 1])
        obs = collect_observations([seq])
        assert [(o.state, o.target) for o in obs] == [(1, None)]

    def test_lookback_prefix_visits_excluded(self):
        # The first visit ends inside the lookback; only later ones count.
        seq = np.array([1, 1, 2, 2, 2, 1])
        obs = collect_observations([seq], lookback_steps=2)
        assert [(o.state, o.holding, o.target) for o in obs] == [(2, 3, 1), (1, 1, None)]

    def test_lookback_extends_holding(self):
        # Visit starts in the lookback but ends in the window: full length.
        seq = np.array([1, 1, 1, 1, 2])
        obs = collect_observations([seq], lookback_steps=2)
        assert obs[0].holding == 4

    def test_pooling_multiple_sequences(self):
        obs = collect_observations([np.array([1, 2]), np.array([2, 1])])
        assert len(obs) == 4

    def test_rejects_sequence_shorter_than_lookback(self):
        with pytest.raises(ValueError):
            collect_observations([np.array([1, 1])], lookback_steps=2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            collect_observations([np.zeros((2, 2), dtype=np.int8)])


# --------------------------------------------------------------------- #
# estimation
# --------------------------------------------------------------------- #


class TestEstimateKernel:
    def test_deterministic_sequence(self):
        # Two identical days: S1 (3 steps) -> S3.  All mass on one slot.
        seqs = [np.array([1, 1, 1, 3, 3]), np.array([1, 1, 1, 3, 3])]
        kern = estimate_kernel(seqs, horizon=4, step=6.0, censoring="beyond")
        assert kern.slot(1, 3)[3] == pytest.approx(1.0)
        assert kern.q[0, 2] == pytest.approx(1.0)

    def test_split_mass(self):
        seqs = [np.array([1, 3]), np.array([1, 5])]
        kern = estimate_kernel(seqs, horizon=2, step=6.0, censoring="beyond")
        assert kern.slot(1, 3)[1] == pytest.approx(0.5)
        assert kern.slot(1, 5)[1] == pytest.approx(0.5)

    def test_censored_beyond_reduces_mass(self):
        # One completed failure, one censored survival: mass 1/2.
        seqs = [np.array([1, 3]), np.array([1, 1])]
        kern = estimate_kernel(seqs, horizon=2, step=6.0, censoring="beyond")
        assert kern.slot(1, 3)[1] == pytest.approx(0.5)

    def test_censored_drop_ignores_survival(self):
        seqs = [np.array([1, 3]), np.array([1, 1])]
        kern = estimate_kernel(seqs, horizon=2, step=6.0, censoring="drop")
        assert kern.slot(1, 3)[1] == pytest.approx(1.0)

    def test_km_equals_counting_when_uncensored(self):
        # With no censoring, KM reduces to the plain empirical pmf.
        seqs = [
            np.array([1, 1, 3, 3]),
            np.array([1, 2, 2, 5]),
            np.array([1, 1, 1, 4]),
        ]
        km = estimate_kernel(seqs, horizon=3, step=6.0, censoring="km")
        cnt = estimate_kernel(seqs, horizon=3, step=6.0, censoring="beyond")
        # The final visit of each sequence is censored; drop it from both
        # by comparing only slots whose observations completed in-window.
        npt.assert_allclose(km.slot(1, 3)[:4], cnt.slot(1, 3)[:4], atol=1e-12)

    def test_km_handles_pure_censoring(self):
        seqs = [np.array([1, 1, 1])]
        kern = estimate_kernel(seqs, horizon=3, step=6.0, censoring="km")
        assert kern.k.sum() == pytest.approx(0.0)

    def test_laplace_smoothing_shrinks_hazard(self):
        seqs = [np.array([1, 3])]
        plain = estimate_kernel(seqs, horizon=2, step=6.0, censoring="beyond")
        smooth = estimate_kernel(seqs, horizon=2, step=6.0, censoring="beyond", laplace=1.0)
        assert smooth.slot(1, 3)[1] < plain.slot(1, 3)[1]

    def test_holding_beyond_horizon_is_survival(self):
        # Transition at step 5 with horizon 3: contributes no in-window mass.
        seqs = [np.array([1] * 5 + [3])]
        kern = estimate_kernel(seqs, horizon=3, step=6.0, censoring="beyond")
        assert kern.k.sum() == pytest.approx(0.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            estimate_kernel([np.array([1, 2])], horizon=0, step=6.0)

    def test_rejects_negative_laplace(self):
        with pytest.raises(ValueError):
            estimate_kernel([np.array([1, 2])], horizon=2, step=6.0, laplace=-1.0)

    def test_rejects_invalid_transition(self):
        obs = [VisitObservation(state=1, holding=1, target=1)]
        with pytest.raises(ValueError):
            kernel_from_observations(obs, horizon=2, step=6.0, censoring="beyond")


# --------------------------------------------------------------------- #
# solver: hand-computable cases
# --------------------------------------------------------------------- #


class TestSolverHandCases:
    def test_no_hazard_means_tr_one(self):
        kern = make_kernel(entries=[(1, 2, 2, 0.5), (2, 1, 2, 0.5)])
        assert temporal_reliability(kern, State.S1) == pytest.approx(1.0)
        assert temporal_reliability(kern, State.S2) == pytest.approx(1.0)

    def test_direct_failure_only(self):
        # From S1: fail to S3 at step 4 w.p. 0.3.  TR = 0.7.
        kern = make_kernel(horizon=10, entries=[(1, 3, 4, 0.3)])
        p = failure_probabilities(kern, 1)
        npt.assert_allclose(p, [0.3, 0.0, 0.0], atol=1e-12)
        assert temporal_reliability(kern, 1) == pytest.approx(0.7)

    def test_failure_after_horizon_does_not_count(self):
        kern = make_kernel(horizon=3, entries=[(1, 3, 3, 0.3)])
        assert failure_probabilities(kern, 1)[0] == pytest.approx(0.3)
        kern2 = make_kernel(horizon=2, entries=[(1, 3, 2, 0.0)])
        assert temporal_reliability(kern2, 1) == pytest.approx(1.0)

    def test_two_hop_failure(self):
        # S1 -> S2 at l=1 (w.p. 1), S2 -> S4 at l=1 (w.p. 1): fail by m=2.
        kern = make_kernel(horizon=5, entries=[(1, 2, 1, 1.0), (2, 4, 1, 1.0)])
        p = failure_probabilities(kern, 1)
        npt.assert_allclose(p, [0.0, 1.0, 0.0], atol=1e-12)

    def test_two_hop_probability_product(self):
        kern = make_kernel(horizon=5, entries=[(1, 2, 1, 0.5), (2, 5, 1, 0.4)])
        # P(fail) = P(1->2) * P(2->5) = 0.2 within 5 steps.
        p = failure_probabilities(kern, 1)
        assert p[2] == pytest.approx(0.2)
        assert temporal_reliability(kern, 1) == pytest.approx(0.8)

    def test_failure_init_state(self):
        kern = make_kernel()
        for init, idx in [(State.S3, 0), (State.S4, 1), (State.S5, 2)]:
            p = failure_probabilities(kern, init)
            assert p[idx] == 1.0
            assert temporal_reliability(kern, init) == 0.0

    def test_invalid_init_state(self):
        with pytest.raises(ValueError):
            failure_probabilities(make_kernel(), 0)

    def test_oscillation_accumulates_hazard(self):
        # S1 <-> S2 ping-pong with a small per-visit failure hazard: the
        # failure probability must grow with the horizon.
        entries = [(1, 2, 1, 0.9), (1, 3, 1, 0.1), (2, 1, 1, 0.9), (2, 3, 1, 0.1)]
        small = make_kernel(horizon=3, entries=entries)
        large = make_kernel(horizon=30, entries=entries)
        tr_small = temporal_reliability(small, 1)
        tr_large = temporal_reliability(large, 1)
        assert tr_large < tr_small < 1.0
        # Geometric decay: survival after m steps is 0.9^m.
        assert tr_small == pytest.approx(0.9**3)
        assert tr_large == pytest.approx(0.9**30)


# --------------------------------------------------------------------- #
# solver: sparse vs dense reference (property-based)
# --------------------------------------------------------------------- #


@st.composite
def random_kernels(draw):
    horizon = draw(st.integers(min_value=2, max_value=12))
    k = np.zeros((8, horizon + 1))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    for src_rows in (slice(0, 4), slice(4, 8)):
        mass = draw(st.floats(min_value=0.0, max_value=1.0))
        raw = rng.random((4, horizon))
        raw /= raw.sum()
        k[src_rows, 1:] = raw * mass
    return SmpKernel(k, 6.0)


class TestSparseVsDense:
    @settings(max_examples=40, deadline=None)
    @given(random_kernels(), st.sampled_from([1, 2]))
    def test_sparse_matches_dense(self, kern, init):
        sparse = failure_probabilities(kern, init)
        dense = failure_probabilities_dense(kern, init)
        npt.assert_allclose(sparse, dense, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(random_kernels(), st.sampled_from([1, 2]))
    def test_probabilities_well_formed(self, kern, init):
        p = failure_probabilities(kern, init)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)
        assert p.sum() <= 1.0 + 1e-9
        tr = temporal_reliability(kern, init)
        assert 0.0 <= tr <= 1.0
        assert tr == pytest.approx(1.0 - p.sum(), abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(random_kernels())
    def test_failure_probability_monotone_in_horizon(self, kern):
        # Truncating the kernel to a shorter horizon can only lower the
        # probability of failing within the window.
        short = SmpKernel(kern.k[:, : kern.horizon // 2 + 1].copy(), kern.step)
        p_short = failure_probabilities(short, 1).sum()
        p_full = failure_probabilities(kern, 1).sum()
        assert p_short <= p_full + 1e-9


# --------------------------------------------------------------------- #
# estimation + solution round trips
# --------------------------------------------------------------------- #


class TestEndToEnd:
    def test_tr_matches_analytic_geometric(self):
        # Synthetic process: from S1, fail at the next step w.p. 1/3
        # (pooled across days).  TR over n steps where the sequence shows
        # exactly one step: with horizon 1, TR = 2/3.
        seqs = [np.array([1, 3]), np.array([1, 1]), np.array([1, 1])]
        kern = estimate_kernel(seqs, horizon=1, step=6.0, censoring="beyond")
        assert temporal_reliability(kern, 1) == pytest.approx(2.0 / 3.0)

    def test_more_failures_lower_tr(self):
        quiet = [np.array([1] * 50) for _ in range(5)]
        busy = [np.concatenate([[1] * 10, [3] * 5, [1] * 35]) for _ in range(5)]
        k_quiet = estimate_kernel(quiet, horizon=40, step=6.0, censoring="km")
        k_busy = estimate_kernel(busy, horizon=40, step=6.0, censoring="km")
        assert temporal_reliability(k_quiet, 1) > temporal_reliability(k_busy, 1)

    def test_stochastic_recovery(self, rng):
        # Generate days from a known SMP and verify the estimated TR is
        # close to the empirical failure-free fraction.
        def gen_day():
            seq = []
            state = 1
            while len(seq) < 120:
                if state == 1:
                    hold = rng.integers(2, 8)
                    nxt = 2 if rng.random() < 0.9 else 3
                elif state == 2:
                    hold = rng.integers(2, 6)
                    nxt = 1 if rng.random() < 0.92 else 5
                else:
                    seq.extend([state] * (120 - len(seq)))
                    break
                seq.extend([state] * int(hold))
                state = nxt
            return np.array(seq[:120], dtype=np.int8)

        days = [gen_day() for _ in range(400)]
        horizon = 60
        kern = estimate_kernel([d[:horizon] for d in days], horizon, 6.0, censoring="km")
        tr = temporal_reliability(kern, 1)
        empirical = float(np.mean([np.all(d[:horizon] <= 2) for d in days]))
        assert tr == pytest.approx(empirical, abs=0.08)
