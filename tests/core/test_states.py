"""Tests for the five-state availability model."""

import pytest

from repro.core.states import (
    DEFAULT_THRESHOLDS,
    FAILURE_STATES,
    N_STATES,
    OPERATIONAL_STATES,
    State,
    Thresholds,
)


class TestState:
    def test_values_match_paper(self):
        assert [s.value for s in State] == [1, 2, 3, 4, 5]
        assert N_STATES == 5

    def test_operational_partition(self):
        assert set(OPERATIONAL_STATES) | set(FAILURE_STATES) == set(State)
        assert not set(OPERATIONAL_STATES) & set(FAILURE_STATES)

    def test_is_operational(self):
        assert State.S1.is_operational
        assert State.S2.is_operational
        assert not State.S3.is_operational

    def test_is_failure(self):
        assert not State.S1.is_failure
        assert State.S3.is_failure and State.S4.is_failure and State.S5.is_failure

    def test_uec_vs_urr(self):
        assert State.S3.is_uec and State.S4.is_uec
        assert not State.S5.is_uec
        assert State.S5.is_urr
        assert not State.S3.is_urr
        assert not State.S1.is_uec and not State.S1.is_urr

    def test_describe(self):
        for s in State:
            assert isinstance(s.describe(), str) and s.describe()


class TestThresholds:
    def test_paper_defaults(self):
        assert DEFAULT_THRESHOLDS.th1 == pytest.approx(0.20)
        assert DEFAULT_THRESHOLDS.th2 == pytest.approx(0.60)
        assert DEFAULT_THRESHOLDS.slowdown_limit == pytest.approx(0.05)

    def test_cpu_state_boundaries(self):
        th = DEFAULT_THRESHOLDS
        assert th.cpu_state(0.0) is State.S1
        assert th.cpu_state(0.1999) is State.S1
        # Paper: S2 when Th1 <= L_H <= Th2 (inclusive at both ends).
        assert th.cpu_state(0.20) is State.S2
        assert th.cpu_state(0.60) is State.S2
        assert th.cpu_state(0.601) is State.S3
        assert th.cpu_state(1.0) is State.S3

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            Thresholds(th1=0.7, th2=0.6)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Thresholds(th1=0.0, th2=0.6)
        with pytest.raises(ValueError):
            Thresholds(th1=0.2, th2=1.2)
        with pytest.raises(ValueError):
            Thresholds(slowdown_limit=0.0)

    def test_custom_thresholds(self):
        th = Thresholds(th1=0.3, th2=0.8)
        assert th.cpu_state(0.25) is State.S1
        assert th.cpu_state(0.7) is State.S2
        assert th.cpu_state(0.85) is State.S3
