"""Tests for bootstrap confidence intervals on TR predictions."""

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig, WindowedKernelEstimator
from repro.core.uncertainty import TrInterval, bootstrap_tr
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.traces.trace import MachineTrace


def bernoulli_failure_trace(n_days=30, period=60.0, fail_days=(), fail_hour=9.0):
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    i0 = int(fail_hour * 3600 / period)
    for d in fail_days:
        load[d * n_per_day + i0 : d * n_per_day + i0 + 15] = 0.95
    return MachineTrace("u", 0.0, period, load, np.full(load.shape, 400.0))


class TestTrInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrInterval(point=0.9, lower=0.1, upper=0.5, confidence=0.9,
                       n_resamples=10, n_history_days=5)

    def test_width(self):
        iv = TrInterval(point=0.5, lower=0.4, upper=0.7, confidence=0.9,
                        n_resamples=10, n_history_days=5)
        assert iv.width == pytest.approx(0.3)


class TestBootstrapTr:
    def test_certain_trace_tight_interval(self):
        trace = bernoulli_failure_trace(fail_days=())
        est = WindowedKernelEstimator()
        iv = bootstrap_tr(est, trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY,
                          n_resamples=50, rng=0)
        assert iv.point == pytest.approx(1.0)
        assert iv.width == pytest.approx(0.0, abs=1e-9)

    def test_mixed_trace_interval_contains_point(self):
        # Weekday indices among days 0..29; fail on roughly half.
        fail = [d for d in range(30) if d % 7 < 5 and d % 2 == 0]
        trace = bernoulli_failure_trace(fail_days=fail)
        est = WindowedKernelEstimator()
        iv = bootstrap_tr(est, trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY,
                          n_resamples=100, rng=1)
        assert iv.lower <= iv.point <= iv.upper
        assert 0.0 < iv.point < 1.0
        assert iv.width > 0.05  # genuine uncertainty

    def test_more_history_narrower_interval(self):
        def width(n_days):
            fail = [d for d in range(n_days) if d % 7 < 5 and d % 3 == 0]
            trace = bernoulli_failure_trace(n_days=n_days, fail_days=fail)
            est = WindowedKernelEstimator()
            return bootstrap_tr(
                est, trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY,
                n_resamples=150, rng=2,
            ).width

        assert width(84) < width(14)

    def test_deterministic_with_seed(self):
        fail = [d for d in range(30) if d % 7 < 5 and d % 2 == 0]
        trace = bernoulli_failure_trace(fail_days=fail)
        est = WindowedKernelEstimator()
        a = bootstrap_tr(est, trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY,
                         n_resamples=50, rng=7)
        b = bootstrap_tr(est, trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY,
                         n_resamples=50, rng=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_validation(self):
        trace = bernoulli_failure_trace()
        est = WindowedKernelEstimator()
        cw = ClockWindow.from_hours(8, 2)
        with pytest.raises(ValueError):
            bootstrap_tr(est, trace, cw, DayType.WEEKDAY, n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_tr(est, trace, cw, DayType.WEEKDAY, confidence=1.5)

    def test_no_history_rejected(self):
        # Two weekend-only days cannot answer a weekday query.
        n = int(2 * SECONDS_PER_DAY / 60.0)
        trace = MachineTrace(
            "we", 5 * SECONDS_PER_DAY, 60.0, np.full(n, 0.05), np.full(n, 400.0)
        )
        est = WindowedKernelEstimator()
        with pytest.raises(ValueError):
            bootstrap_tr(est, trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY)

    def test_works_on_synthetic_trace(self, long_trace):
        est = WindowedKernelEstimator(config=EstimatorConfig(step_multiple=10))
        iv = bootstrap_tr(
            est, long_trace, ClockWindow.from_hours(10, 3), DayType.WEEKDAY,
            n_resamples=60, rng=3,
        )
        assert 0.0 <= iv.lower <= iv.upper <= 1.0
        assert iv.n_history_days > 0
        assert "CI" in str(iv)
