"""Tests for the simulation calendar and window arithmetic."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import windows as win
from repro.core.windows import AbsoluteWindow, ClockWindow, DayType


class TestDayArithmetic:
    def test_epoch_is_monday(self):
        assert win.day_of_week(0) == 0
        assert win.day_name(0) == "Mon"

    def test_day_index_at_boundaries(self):
        assert win.day_index(0.0) == 0
        assert win.day_index(win.SECONDS_PER_DAY - 1e-3) == 0
        assert win.day_index(win.SECONDS_PER_DAY) == 1

    def test_day_start_round_trip(self):
        for day in (0, 1, 6, 100):
            assert win.day_index(win.day_start(day)) == day

    def test_time_of_day(self):
        t = 3 * win.SECONDS_PER_DAY + 5 * win.SECONDS_PER_HOUR + 42.0
        assert win.time_of_day(t) == pytest.approx(5 * win.SECONDS_PER_HOUR + 42.0)

    def test_week_classification(self):
        # Day 0 is a Monday; days 5, 6 are the first weekend.
        assert [win.day_type(d) for d in range(7)] == [
            DayType.WEEKDAY,
            DayType.WEEKDAY,
            DayType.WEEKDAY,
            DayType.WEEKDAY,
            DayType.WEEKDAY,
            DayType.WEEKEND,
            DayType.WEEKEND,
        ]

    def test_day_type_of_time(self):
        assert win.day_type_of_time(5.5 * win.SECONDS_PER_DAY) is DayType.WEEKEND

    def test_days_of_type(self):
        assert win.days_of_type(0, 14, DayType.WEEKEND) == [5, 6, 12, 13]
        assert len(win.days_of_type(0, 14, DayType.WEEKDAY)) == 10

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_day_index_consistent_with_time_of_day(self, t):
        d = win.day_index(t)
        tod = win.time_of_day(t)
        assert 0.0 <= tod < win.SECONDS_PER_DAY + 1e-6
        assert win.day_start(d) + tod == pytest.approx(t, abs=1e-6)


class TestClockWindow:
    def test_from_hours(self):
        cw = ClockWindow.from_hours(8.0, 2.5)
        assert cw.start == pytest.approx(8 * 3600)
        assert cw.duration == pytest.approx(2.5 * 3600)
        assert cw.start_hour == pytest.approx(8.0)
        assert cw.duration_hours == pytest.approx(2.5)

    def test_on_day(self):
        cw = ClockWindow.from_hours(8.0, 2.0)
        aw = cw.on_day(3)
        assert aw.start == pytest.approx(3 * win.SECONDS_PER_DAY + 8 * 3600)
        assert aw.duration == pytest.approx(2 * 3600)
        assert aw.day == 3

    def test_rejects_bad_start(self):
        with pytest.raises(ValueError):
            ClockWindow(start=-1.0, duration=100.0)
        with pytest.raises(ValueError):
            ClockWindow(start=win.SECONDS_PER_DAY, duration=100.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            ClockWindow(start=0.0, duration=0.0)

    def test_may_cross_midnight(self):
        cw = ClockWindow.from_hours(22.0, 5.0)
        aw = cw.on_day(1)
        assert aw.end > win.day_start(2)
        # Day type is defined by the start day.
        assert aw.day == 1


class TestAbsoluteWindow:
    def test_end_and_contains(self):
        aw = AbsoluteWindow(start=100.0, duration=50.0)
        assert aw.end == 150.0
        assert aw.contains(100.0)
        assert aw.contains(149.999)
        assert not aw.contains(150.0)
        assert not aw.contains(99.9)

    def test_overlaps(self):
        a = AbsoluteWindow(0.0, 100.0)
        assert a.overlaps(AbsoluteWindow(50.0, 100.0))
        assert not a.overlaps(AbsoluteWindow(100.0, 10.0))
        assert a.overlaps(AbsoluteWindow(99.9, 10.0))

    def test_clock_window_round_trip(self):
        aw = ClockWindow.from_hours(9.0, 3.0).on_day(8)
        cw = aw.clock_window()
        assert cw.start_hour == pytest.approx(9.0)
        assert cw.on_day(8) == aw

    def test_day_type(self):
        assert ClockWindow.from_hours(8, 1).on_day(5).day_type is DayType.WEEKEND

    def test_iter_history_days_same_type(self):
        # Day 7 is a Monday; its history weekdays are 4, 3, 2, 1, 0.
        aw = ClockWindow.from_hours(8, 1).on_day(7)
        assert list(aw.iter_history_days(3)) == [4, 3, 2]
        assert list(aw.iter_history_days(10)) == [4, 3, 2, 1, 0]

    def test_iter_history_days_any_type(self):
        aw = ClockWindow.from_hours(8, 1).on_day(7)
        assert list(aw.iter_history_days(3, same_type_only=False)) == [6, 5, 4]

    def test_iter_history_days_weekend(self):
        # Day 12 is a Saturday; prior weekend days are 6, 5.
        aw = ClockWindow.from_hours(8, 1).on_day(12)
        assert list(aw.iter_history_days(5)) == [6, 5]


class TestNSteps:
    def test_exact_multiple(self):
        assert win.n_steps(3600.0, 6.0) == 600

    def test_rounding(self):
        assert win.n_steps(10.0, 6.0) == 2
        assert win.n_steps(8.0, 6.0) == 1

    def test_at_least_one(self):
        assert win.n_steps(1.0, 600.0) == 1

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            win.n_steps(100.0, 0.0)

    @given(
        st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
    )
    def test_n_steps_close_to_ratio(self, duration, step):
        n = win.n_steps(duration, step)
        assert n >= 1
        assert abs(n - duration / step) <= 0.5 + 1e-9 or n == 1
