"""The batched fleet solver against its scalar reference, exactly."""

import numpy as np
import pytest

from repro.core.smp import (
    SmpKernel,
    failure_probabilities,
    temporal_reliability,
    temporal_reliability_profile,
)
from repro.core.states import State
from repro.fleet import (
    FleetKernel,
    fleet_failure_probabilities,
    fleet_reliability_profiles,
    fleet_temporal_reliability,
    solve_fleet,
)


def random_kernel(rng, horizon, mass=0.8):
    k = np.zeros((8, horizon + 1))
    for rows in (slice(0, 4), slice(4, 8)):
        raw = rng.random((4, horizon))
        raw /= raw.sum()
        k[rows, 1:] = raw * mass
    return SmpKernel(k, 6.0)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestFleetKernel:
    def test_stacks_and_pads_ragged_horizons(self, rng):
        kernels = [random_kernel(rng, h) for h in (5, 12, 9)]
        fleet = FleetKernel(["a", "b", "c"], kernels)
        assert len(fleet) == 3
        assert fleet.max_horizon == 12
        assert fleet.k.shape == (3, 8, 13)
        np.testing.assert_array_equal(fleet.horizons, [5, 12, 9])
        # Machine a's real kernel sits in the first 6 columns, zeros after.
        np.testing.assert_array_equal(fleet.k[0, :, :6], kernels[0].k)
        assert not fleet.k[0, :, 6:].any()

    def test_all_tensors_contiguous_float64(self, rng):
        fleet = FleetKernel(["a", "b"], [random_kernel(rng, 8) for _ in range(2)])
        for name in ("k", "k12r", "k21r", "c1", "c2"):
            arr = getattr(fleet, name)
            assert arr.flags["C_CONTIGUOUS"]
            assert arr.dtype == np.float64
            assert arr.base is None

    def test_index_lookup(self, rng):
        fleet = FleetKernel(["x", "y"], [random_kernel(rng, 4) for _ in range(2)])
        assert fleet.index("y") == 1
        with pytest.raises(KeyError, match="not in this fleet"):
            fleet.index("z")

    def test_rejects_mismatched_lengths(self, rng):
        with pytest.raises(ValueError, match="1 machine ids but 2"):
            FleetKernel(["a"], [random_kernel(rng, 4) for _ in range(2)])

    def test_rejects_duplicate_ids(self, rng):
        with pytest.raises(ValueError, match="unique"):
            FleetKernel(["a", "a"], [random_kernel(rng, 4) for _ in range(2)])

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError, match="at least one machine"):
            FleetKernel([], [])

    def test_rejects_non_kernels(self, rng):
        with pytest.raises(TypeError, match="expected SmpKernel"):
            FleetKernel(["a"], [np.zeros((8, 5))])


class TestSolveFleet:
    def test_matches_scalar_solver_uniform_horizon(self, rng):
        kernels = [random_kernel(rng, 40) for _ in range(20)]
        inits = [State(int(rng.integers(1, 6))) for _ in range(20)]
        fleet = FleetKernel([f"m{i}" for i in range(20)], kernels)
        solution = solve_fleet(fleet, inits)
        for i, (kern, init) in enumerate(zip(kernels, inits)):
            np.testing.assert_allclose(
                solution.fail[i], failure_probabilities(kern, init), atol=1e-9
            )
            assert solution.tr[i] == pytest.approx(
                temporal_reliability(kern, init), abs=1e-9
            )

    def test_matches_scalar_solver_ragged_horizons(self, rng):
        horizons = [3, 17, 30, 8, 1]
        kernels = [random_kernel(rng, h) for h in horizons]
        inits = [1, 2, 1, 2, 1]
        fleet = FleetKernel([f"m{i}" for i in range(5)], kernels)
        solution = solve_fleet(fleet, inits)
        for i, (kern, init) in enumerate(zip(kernels, inits)):
            np.testing.assert_allclose(
                solution.fail[i], failure_probabilities(kern, init), atol=1e-9
            )
            profile = temporal_reliability_profile(kern, init)
            np.testing.assert_allclose(
                solution.profiles[i, : kern.horizon + 1], profile, atol=1e-9
            )
            # Beyond its own horizon the profile holds the last real value.
            np.testing.assert_allclose(
                solution.profiles[i, kern.horizon :], profile[-1], atol=1e-9
            )

    def test_failure_init_states_are_absorbing(self, rng):
        kernels = [random_kernel(rng, 6) for _ in range(3)]
        fleet = FleetKernel(["a", "b", "c"], kernels)
        solution = solve_fleet(fleet, [3, 4, 5])
        np.testing.assert_array_equal(solution.fail, np.eye(3))
        np.testing.assert_array_equal(solution.tr, np.zeros(3))
        for i in range(3):
            assert solution.profiles[i, 0] == 1.0
            assert not solution.profiles[i, 1:].any()

    def test_mixed_operational_and_failed(self, rng):
        kernels = [random_kernel(rng, 10) for _ in range(4)]
        inits = [1, 4, 2, 3]
        fleet = FleetKernel(["a", "b", "c", "d"], kernels)
        solution = solve_fleet(fleet, inits)
        for i, (kern, init) in enumerate(zip(kernels, inits)):
            np.testing.assert_allclose(
                solution.fail[i], failure_probabilities(kern, init), atol=1e-9
            )

    def test_wrappers_return_the_solution_pieces(self, rng):
        kernels = [random_kernel(rng, 6) for _ in range(2)]
        fleet = FleetKernel(["a", "b"], kernels)
        inits = [1, 2]
        solution = solve_fleet(fleet, inits)
        np.testing.assert_array_equal(
            fleet_failure_probabilities(fleet, inits), solution.fail
        )
        np.testing.assert_array_equal(
            fleet_temporal_reliability(fleet, inits), solution.tr
        )
        np.testing.assert_array_equal(
            fleet_reliability_profiles(fleet, inits), solution.profiles
        )

    def test_rejects_wrong_init_count(self, rng):
        fleet = FleetKernel(["a"], [random_kernel(rng, 4)])
        with pytest.raises(ValueError, match="one init state per machine"):
            solve_fleet(fleet, [1, 2])

    def test_rejects_invalid_init_state(self, rng):
        fleet = FleetKernel(["a"], [random_kernel(rng, 4)])
        with pytest.raises(ValueError, match="S1..S5"):
            solve_fleet(fleet, [6])

    def test_probabilities_bounded(self, rng):
        kernels = [random_kernel(rng, 25, mass=1.0) for _ in range(10)]
        fleet = FleetKernel([f"m{i}" for i in range(10)], kernels)
        solution = solve_fleet(fleet, [1] * 10)
        assert np.all(solution.fail >= 0.0) and np.all(solution.fail <= 1.0)
        assert np.all(solution.tr >= 0.0) and np.all(solution.tr <= 1.0)
        assert np.all(solution.profiles >= 0.0) and np.all(solution.profiles <= 1.0)
