"""FleetPredictor caching, invalidation, and service-level equality."""

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import (
    SECONDS_PER_DAY,
    AbsoluteWindow,
    ClockWindow,
    DayType,
)
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace

WINDOW = ClockWindow.from_hours(8, 3)


def idle_trace(mid, n_days=14, period=60.0, fail_hour=None, start=0.0):
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    if fail_hour is not None:
        i0 = int(fail_hour * 3600 / period)
        for d in range(n_days):
            load[d * n_per_day + i0 : d * n_per_day + i0 + 15] = 0.95
    return MachineTrace(mid, start, period, load, np.full(load.shape, 400.0))


@pytest.fixture()
def service():
    svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    svc.register(idle_trace("safe"))
    svc.register(idle_trace("risky", fail_hour=9.0))
    svc.register(idle_trace("other", fail_hour=12.0))
    return svc


class TestFleetScanEquality:
    def test_scan_matches_scalar_predicts(self, service):
        scan = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        assert scan.machine_ids == ("other", "risky", "safe")
        for mid in service.machine_ids:
            scalar = service.predict(mid, WINDOW, DayType.WEEKDAY)
            assert scan.trs()[mid] == pytest.approx(scalar, abs=1e-9)

    def test_predict_all_batch_equals_scalar_loop(self, service):
        batched = service.predict_all(WINDOW, DayType.WEEKDAY)
        scalar = service.predict_all(WINDOW, DayType.WEEKDAY, batch=False)
        assert set(batched) == set(scalar)
        for mid, tr in scalar.items():
            assert batched[mid] == pytest.approx(tr, abs=1e-9)

    def test_rank_uses_batched_path_and_orders_identically(self, service):
        ranking = service.rank(WINDOW, DayType.WEEKDAY)
        scalar = service.predict_all(WINDOW, DayType.WEEKDAY, batch=False)
        expected = sorted(scalar.items(), key=lambda kv: (-kv[1], kv[0]))
        assert [r.machine_id for r in ranking] == [m for m, _ in expected]

    def test_predict_batch_subset(self, service):
        trs = service.predict_batch(["safe", "risky"], WINDOW, DayType.WEEKDAY)
        assert set(trs) == {"safe", "risky"}
        assert trs["safe"] == pytest.approx(
            service.predict("safe", WINDOW, DayType.WEEKDAY), abs=1e-9
        )

    def test_unknown_machine_raises_keyerror(self, service):
        with pytest.raises(KeyError, match="ghost"):
            service.predict_batch(["safe", "ghost"], WINDOW, DayType.WEEKDAY)

    def test_tr_at_reads_subhorizon_profile(self, service):
        scan = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        full = scan.trs()["safe"]
        shorter = scan.tr_at("safe", 3600.0)
        assert shorter >= full  # profiles are non-increasing
        assert scan.tr_at("safe", 10 * WINDOW.duration) == pytest.approx(full)
        with pytest.raises(KeyError, match="not in this scan"):
            scan.tr_at("ghost", 60.0)

    def test_absolute_window_resolves_day_type(self, service):
        # Day 0 of the trace grid is a Monday; 9 h into day 1 is a weekday.
        scan = service.fleet_scan(
            AbsoluteWindow(SECONDS_PER_DAY + 9 * 3600.0, 2 * 3600.0)
        )
        assert len(scan.machine_ids) == 3


class TestFleetCache:
    def test_steady_state_scan_is_cached(self, service):
        first = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        second = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        assert second is first

    def test_subset_scan_does_not_clobber_full_scan(self, service):
        full = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        subset = service.fleet_scan(WINDOW, DayType.WEEKDAY, machines=["safe"])
        assert subset.machine_ids == ("safe",)
        assert service.fleet_scan(WINDOW, DayType.WEEKDAY) is full

    def test_extend_rebuilds_only_the_grown_machine(self, service):
        first = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        service.extend_history(idle_trace("safe", n_days=15))
        second = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        assert second is not first
        # Unchanged machines answer identically (their rows were reused).
        assert second.trs()["risky"] == first.trs()["risky"]

    def test_register_replace_invalidates(self, service):
        before = service.fleet_scan(WINDOW, DayType.WEEKDAY).trs()["safe"]
        service.register(idle_trace("safe", fail_hour=9.0))
        after = service.fleet_scan(WINDOW, DayType.WEEKDAY).trs()["safe"]
        assert after < before

    def test_unregister_shrinks_the_scan(self, service):
        service.fleet_scan(WINDOW, DayType.WEEKDAY)
        service.unregister("other")
        scan = service.fleet_scan(WINDOW, DayType.WEEKDAY)
        assert scan.machine_ids == ("risky", "safe")

    def test_empty_registry_scans_empty(self):
        svc = AvailabilityService()
        scan = svc.fleet_scan(WINDOW, DayType.WEEKDAY)
        assert scan.machine_ids == ()
        assert scan.trs() == {}
        assert scan.ranking() == []

    def test_clock_window_requires_day_type(self, service):
        with pytest.raises(ValueError, match="day type"):
            service.fleet_scan(WINDOW)

    def test_window_cache_is_lru_bounded(self, service):
        fleet = service._fleet
        for h in range(1, fleet.max_windows + 3):
            service.fleet_scan(ClockWindow.from_hours(8, h), DayType.WEEKDAY)
        assert len(fleet) == fleet.max_windows
