"""Property tests: the batched solver is the scalar solver, everywhere.

Hypothesis drives random fleets — arbitrary valid kernels, ragged
horizons, all five init states — and checks the batched results against
the per-machine scalar reference within 1e-9, plus the derived rank
ordering byte-for-byte.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.smp import (
    SmpKernel,
    failure_probabilities,
    temporal_reliability,
    temporal_reliability_profile,
)
from repro.fleet import FleetKernel, solve_fleet

TOL = 1e-9


@st.composite
def fleets(draw):
    """A random fleet: (ids, kernels, init states), ragged horizons."""
    m_count = draw(st.integers(min_value=1, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    kernels = []
    inits = []
    for _ in range(m_count):
        horizon = draw(st.integers(min_value=1, max_value=60))
        mass = draw(st.floats(min_value=0.0, max_value=1.0))
        k = np.zeros((8, horizon + 1))
        for rows in (slice(0, 4), slice(4, 8)):
            raw = rng.random((4, horizon))
            total = raw.sum()
            if total > 0:
                k[rows, 1:] = raw / total * mass
        kernels.append(SmpKernel(k, 6.0))
        inits.append(draw(st.integers(min_value=1, max_value=5)))
    ids = [f"m{i:02d}" for i in range(m_count)]
    return ids, kernels, inits


class TestBatchedEqualsScalar:
    @settings(max_examples=80, deadline=None)
    @given(fleets())
    def test_failure_probabilities_match(self, fleet_spec):
        ids, kernels, inits = fleet_spec
        solution = solve_fleet(FleetKernel(ids, kernels), inits)
        for i, (kern, init) in enumerate(zip(kernels, inits)):
            expected = failure_probabilities(kern, init)
            assert np.max(np.abs(solution.fail[i] - expected)) <= TOL

    @settings(max_examples=80, deadline=None)
    @given(fleets())
    def test_temporal_reliability_matches(self, fleet_spec):
        ids, kernels, inits = fleet_spec
        solution = solve_fleet(FleetKernel(ids, kernels), inits)
        for i, (kern, init) in enumerate(zip(kernels, inits)):
            assert abs(solution.tr[i] - temporal_reliability(kern, init)) <= TOL

    @settings(max_examples=60, deadline=None)
    @given(fleets())
    def test_reliability_profiles_match_with_ragged_hold(self, fleet_spec):
        ids, kernels, inits = fleet_spec
        solution = solve_fleet(FleetKernel(ids, kernels), inits)
        for i, (kern, init) in enumerate(zip(kernels, inits)):
            profile = temporal_reliability_profile(kern, init)
            got = solution.profiles[i]
            assert np.max(np.abs(got[: kern.horizon + 1] - profile)) <= TOL
            # Padded tail holds the machine's last real value exactly.
            assert np.max(np.abs(got[kern.horizon :] - profile[-1])) <= TOL

    @settings(max_examples=60, deadline=None)
    @given(fleets())
    def test_rank_ordering_identical_to_scalar_path(self, fleet_spec):
        ids, kernels, inits = fleet_spec
        solution = solve_fleet(FleetKernel(ids, kernels), inits)
        batched = sorted(
            zip(ids, solution.tr), key=lambda kv: (-kv[1], kv[0])
        )
        scalar_trs = {
            mid: temporal_reliability(kern, init)
            for mid, kern, init in zip(ids, kernels, inits)
        }
        scalar = sorted(scalar_trs.items(), key=lambda kv: (-kv[1], kv[0]))
        assert [m for m, _ in batched] == [m for m, _ in scalar]

    @settings(max_examples=60, deadline=None)
    @given(fleets())
    def test_solution_is_within_probability_bounds(self, fleet_spec):
        ids, kernels, inits = fleet_spec
        solution = solve_fleet(FleetKernel(ids, kernels), inits)
        for arr in (solution.fail, solution.tr, solution.profiles):
            assert np.all(arr >= 0.0) and np.all(arr <= 1.0)
