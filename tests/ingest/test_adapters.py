"""Foreign trace adapters: binning, gap policies, idempotence, calendar."""

import numpy as np
import pytest

from repro.core.windows import SECONDS_PER_DAY
from repro.ingest.adapters import ADAPTERS, get_adapter, register_adapter
from repro.ingest.timebase import UNIX_EPOCH_OFFSET_S
from repro.traces.resample import downsample


def write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestRegistry:
    def test_builtin_adapters_present(self):
        assert "csv" in ADAPTERS and "preempt" in ADAPTERS

    def test_unknown_adapter_lists_known(self):
        with pytest.raises(KeyError, match="csv"):
            get_adapter("carrier-pigeon")

    def test_register_custom(self):
        def fake_convert(path, **kwargs):
            return [], None

        register_adapter("fake", fake_convert)
        try:
            assert get_adapter("fake") is fake_convert
        finally:
            del ADAPTERS["fake"]


class TestCsvAdapter:
    def test_epoch_alignment(self, tmp_path):
        p = write_lines(tmp_path / "t.csv", [
            "timestamp,load,free_mem_mb",
            "0,0.5,100",
            "6,0.5,100",
        ])
        traces, _ = get_adapter("csv")(p, sample_period=6.0)
        # Unix t=0 is model time +3 days: real weekdays survive import.
        assert traces[0].start_time == UNIX_EPOCH_OFFSET_S

    def test_native_binning_semantics(self, tmp_path):
        # Three observations inside one 30 s native slot: mean load,
        # min memory, min up.
        p = write_lines(tmp_path / "t.csv", [
            "timestamp,load,free_mem_mb,up",
            "0,0.2,300,1",
            "10,0.4,100,1",
            "20,0.6,200,0",
            "30,0.3,400,1",
        ])
        traces, stats = get_adapter("csv")(
            p, sample_period=30.0, native_period=30.0
        )
        t = traces[0]
        assert t.load[0] == pytest.approx(0.4)
        assert t.free_mem_mb[0] == 100.0
        assert not t.up[0]          # one down observation downs the slot
        assert t.up[1]

    def test_gap_policy_down_vs_reject(self, tmp_path):
        p = write_lines(tmp_path / "t.csv", [
            "timestamp,load,free_mem_mb",
            "0,0.5,100",
            "30,0.5,100",
            # 60 and 90 missing
            "120,0.5,100",
        ])
        traces, stats = get_adapter("csv")(
            p, sample_period=30.0, native_period=30.0, gap_policy="down"
        )
        t = traces[0]
        assert stats.gap_slots == 2
        assert list(t.up) == [True, True, False, False, True]
        assert t.load[2] == 0.0 and t.free_mem_mb[2] == 0.0
        with pytest.raises(ValueError, match="gap policy"):
            get_adapter("csv")(
                p, sample_period=30.0, native_period=30.0, gap_policy="reject"
            )

    def test_reimport_is_byte_identical(self, tmp_path):
        rows = ["timestamp,load,free_mem_mb,up"]
        for i in range(200):
            rows.append(f"{30 * i},{(i % 17) / 20:.3f},{100 + i % 50},{1 if i % 13 else 0}")
        p = write_lines(tmp_path / "t.csv", rows)
        a, _ = get_adapter("csv")(p, sample_period=6.0)
        b, _ = get_adapter("csv")(p, sample_period=6.0)
        assert a[0].start_time == b[0].start_time
        assert a[0].load.tobytes() == b[0].load.tobytes()
        assert a[0].free_mem_mb.tobytes() == b[0].free_mem_mb.tobytes()
        assert a[0].up.tobytes() == b[0].up.tobytes()

    def test_foreign_cadence_round_trip(self, tmp_path):
        # 30 s source upsampled to the 6 s model grid; coarsening back by
        # the same factor reproduces the native-grid values exactly.
        rows = ["timestamp,load,free_mem_mb"]
        for i in range(40):
            rows.append(f"{30 * i},{0.1 + (i % 7) * 0.1:.2f},{512 - i}")
        p = write_lines(tmp_path / "t.csv", rows)
        fine, stats = get_adapter("csv")(p, sample_period=6.0)
        assert stats.native_period == 30.0
        assert fine[0].sample_period == 6.0
        assert fine[0].n_samples == 40 * 5
        coarse = downsample(fine[0], 5)
        native, _ = get_adapter("csv")(p, sample_period=30.0)
        np.testing.assert_allclose(coarse.load, native[0].load)
        np.testing.assert_allclose(coarse.free_mem_mb, native[0].free_mem_mb)
        assert (coarse.up == native[0].up).all()

    def test_multi_machine_column(self, tmp_path):
        p = write_lines(tmp_path / "t.csv", [
            "timestamp,load,free_mem_mb,machine",
            "0,0.5,100,a",
            "0,0.2,200,b",
            "30,0.5,100,a",
            "30,0.2,200,b",
        ])
        traces, stats = get_adapter("csv")(p, sample_period=30.0)
        assert sorted(t.machine_id for t in traces) == ["a", "b"]
        assert stats.machines == 2
        with pytest.raises(ValueError, match="machine"):
            get_adapter("csv")(p, sample_period=30.0, machine_id="only-one")

    def test_percent_loads_are_scaled(self, tmp_path):
        p = write_lines(tmp_path / "t.csv", [
            "timestamp,load",
            "0,45",
            "30,90",
        ])
        traces, stats = get_adapter("csv")(p, sample_period=30.0)
        assert traces[0].load[0] == pytest.approx(0.45)
        assert any("percent" in n for n in stats.notes)

    def test_malformed_row_names_the_line(self, tmp_path):
        p = write_lines(tmp_path / "t.csv", [
            "timestamp,load",
            "0,0.5",
            "30,banana",
        ])
        with pytest.raises(ValueError, match=r":3: malformed"):
            get_adapter("csv")(p, sample_period=30.0)

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("timestamp,load\n0,0.5\n\n30,0.6\n   \n")
        traces, stats = get_adapter("csv")(p, sample_period=30.0)
        assert traces[0].n_samples == 2
        # the csv module swallows truly empty lines; only the
        # whitespace-only row reaches (and is counted by) the adapter
        assert stats.skipped_rows == 1


class TestPreemptAdapter:
    def convert(self, path, **kw):
        kw.setdefault("sample_period", 6.0)
        return get_adapter("preempt")(path, **kw)

    def test_lifetimes_become_up_down(self, tmp_path):
        p = write_lines(tmp_path / "spot.csv", [
            "instance,start,end",
            "i-1,0,60",
            "i-1,120,180",
        ])
        traces, _ = self.convert(p)
        t = traces[0]
        assert t.machine_id == "i-1"
        assert t.start_time == UNIX_EPOCH_OFFSET_S
        assert t.n_samples == 30  # 180 s horizon at 6 s
        assert t.up[:10].all()          # first lifetime
        assert not t.up[10:20].any()    # preempted
        assert t.up[20:].all()          # second lifetime
        # up slots advertise memory, down slots none; load is the
        # guest's to measure, so it reads zero here
        assert np.isinf(t.free_mem_mb[0])
        assert t.free_mem_mb[10] == 0.0
        assert (t.load == 0.0).all()

    def test_partial_slots_count_as_down(self, tmp_path):
        # A lifetime covering only part of a slot cannot promise the
        # whole slot: min-up semantics keep it down.
        p = write_lines(tmp_path / "spot.csv", [
            "instance,start,end",
            "i-1,3,15",
        ])
        traces, _ = self.convert(p, horizon=18.0)
        assert list(traces[0].up) == [False, True, False]

    def test_censored_lifetime_runs_to_horizon(self, tmp_path):
        p = write_lines(tmp_path / "spot.csv", [
            "instance,start,end",
            "i-1,0,60",
            "i-2,0,",     # still running at collection time
        ])
        traces, _ = self.convert(p, horizon=120.0)
        by_id = {t.machine_id: t for t in traces}
        assert not by_id["i-1"].up[15:].any()
        assert by_id["i-2"].up.all()

    def test_overlapping_lifetimes_rejected(self, tmp_path):
        p = write_lines(tmp_path / "spot.csv", [
            "instance,start,end",
            "i-1,0,100",
            "i-1,50,150",
        ])
        with pytest.raises(ValueError, match="overlap"):
            self.convert(p)

    def test_reimport_is_byte_identical(self, tmp_path):
        p = write_lines(tmp_path / "spot.csv", [
            "instance,start,end,cause",
            "i-1,0,3600,preempted",
            "i-1,4000,7200,reclaim",
        ])
        a, _ = self.convert(p)
        b, _ = self.convert(p)
        assert a[0].up.tobytes() == b[0].up.tobytes()
        assert a[0].free_mem_mb.tobytes() == b[0].free_mem_mb.tobytes()

    def test_weekend_lifetime_lands_on_model_weekend(self, tmp_path):
        # 2026-08-08 is a real Saturday; after import, the up samples
        # must sit inside a model weekend day.
        import datetime

        sat = datetime.datetime(
            2026, 8, 8, 10, 0, tzinfo=datetime.timezone.utc
        ).timestamp()
        p = write_lines(tmp_path / "spot.csv", [
            "instance,start,end",
            f"i-1,{sat:.0f},{sat + 600:.0f}",
        ])
        traces, _ = self.convert(p)
        model_day = int(traces[0].start_time // SECONDS_PER_DAY)
        assert model_day % 7 in (5, 6)
