"""Monitor agent: grid quantization, gap fill, durability, resync."""

import numpy as np
import pytest

from repro.ingest.agent import AgentConfig, MonitorAgent, SimulatedClock
from repro.ingest.samplers import SyntheticSampler
from repro.ingest.timebase import slot_index, wall_to_model
from repro.serve.client import ServeRequestError
from repro.serve.protocol import Response


def lost_samples_error() -> ServeRequestError:
    """The server-side rejection of a chunk that would leave a hole."""
    return ServeRequestError(Response(
        id="q1", status="error",
        error={"type": "invalid_params",
               "message": "3 samples were lost in between"},
    ))

T0 = 1_700_000_000.0  # arbitrary fixed wall-clock start


class FakeClient:
    """Collects extend() chunks; scriptable failures."""

    def __init__(self):
        self.chunks = []
        self.fail_with = None  # exception instance to raise, once set

    def extend(self, chunk):
        if self.fail_with is not None:
            raise self.fail_with
        self.chunks.append(chunk)
        return {"machine": chunk.machine_id, "n_samples": chunk.n_samples}

    def total_samples(self):
        return sum(c.n_samples for c in self.chunks)

    def stitched(self):
        """Concatenate chunks, trimming retried overlap like the server."""
        load, mem, up = [], [], []
        start = end = None
        for c in sorted(self.chunks, key=lambda c: c.start_time):
            if start is None:
                start = c.start_time
                lo = 0
            else:
                lo = int(round((end - c.start_time) / c.sample_period))
                if lo >= c.n_samples:
                    continue
            load.extend(c.load[lo:])
            mem.extend(c.free_mem_mb[lo:])
            up.extend(c.up[lo:])
            end = c.start_time + c.sample_period * c.n_samples
        return start, np.array(load), np.array(mem), np.array(up)


def make_agent(client, *, spill=None, chunk=5, ring=4096, period=6.0,
               start=T0, max_gap=14400):
    clock = SimulatedClock(start)
    agent = MonitorAgent(
        SyntheticSampler(seed=1),
        client,
        AgentConfig(
            machine_id="m1", sample_period=period, chunk_samples=chunk,
            ring_capacity=ring, spill_dir=None if spill is None else str(spill),
            max_gap_samples=max_gap,
        ),
        clock=clock.now, sleep=clock.sleep,
    )
    return agent, clock


class TestGridQuantization:
    def test_samples_land_on_the_global_grid(self):
        client = FakeClient()
        agent, clock = make_agent(client, start=T0 + 2.5)
        agent.run(max_samples=12)
        first = client.chunks[0]
        # seq 0 occupies the first full slot after the start instant
        expected_slot = slot_index(wall_to_model(T0 + 2.5), 6.0) + 1
        assert first.start_time == expected_slot * 6.0
        assert first.start_time % 6.0 == 0.0

    def test_chunks_are_seq_contiguous(self):
        client = FakeClient()
        agent, _ = make_agent(client, chunk=5)
        agent.run(max_samples=23)
        assert client.total_samples() == 23
        for prev, nxt in zip(client.chunks, client.chunks[1:]):
            assert nxt.start_time == prev.start_time + 6.0 * prev.n_samples

    def test_two_agents_agree_on_slots(self):
        # Same machine, different start instants within one slot: the
        # global grid keeps their sample times identical.
        c1, c2 = FakeClient(), FakeClient()
        a1, _ = make_agent(c1, start=T0 + 0.5)
        a2, _ = make_agent(c2, start=T0 + 2.2)
        a1.run(max_samples=4)
        a2.run(max_samples=4)
        assert c1.chunks[0].start_time == c2.chunks[0].start_time


class TestGapFill:
    def test_missed_slots_become_downtime(self):
        client = FakeClient()
        agent, clock = make_agent(client, chunk=4)
        agent.run(max_samples=4)
        clock.now_s += 60.0  # the host "sleeps" for 60 s
        agent.run(max_samples=4)
        # 9 fully-elapsed slots are down-filled; the slot containing
        # "now" is sampled normally, not faked.  (Down-fill counts
        # toward max_samples, so this run produced 9 + 1.)
        assert agent.gap_filled == 9
        _, load, mem, up = client.stitched()
        assert len(up) == 14  # gap-free overall: 4 + 9 + 1
        assert not up[4:13].any()
        assert (load[4:13] == 0.0).all()
        assert (mem[4:13] == 0.0).all()
        assert up[:4].all() and up[13:].all()

    def test_unbelievable_gap_restarts_the_grid(self, tmp_path):
        client = FakeClient()
        agent, clock = make_agent(client, spill=tmp_path, chunk=4, max_gap=100)
        agent.run(max_samples=4)
        old_start = agent.start_time
        clock.now_s += 6.0 * 5000  # far past max_gap_samples
        agent.run(max_samples=4)
        assert agent.gap_filled == 0
        assert agent.start_time > old_start
        assert agent.n_generated == 4  # fresh grid, fresh seq space
        assert client.total_samples() == 8


class TestSpillDurability:
    def test_unflushed_samples_survive_agent_death(self, tmp_path):
        down = FakeClient()
        down.fail_with = ConnectionError("server down")
        agent, clock = make_agent(down, spill=tmp_path, chunk=5)
        agent.run(max_samples=17)
        assert agent.unacked == 17
        assert agent.flush_errors > 0
        # agent dies here (nothing acked); a new one adopts the journal
        up = FakeClient()
        agent2, clock2 = make_agent(up, spill=tmp_path, chunk=5,
                                    start=clock.now_s)
        agent2.run(max_samples=3)
        assert agent2.unacked == 0
        start, load, mem, ups = up.stitched()
        assert start == agent.start_time  # same grid, not a fresh one
        assert len(load) >= 20  # 17 recovered + gap fill + 3 new

    def test_ring_overflow_is_served_from_the_journal(self, tmp_path):
        down = FakeClient()
        down.fail_with = ConnectionError("server down")
        # ring holds 8; 30 samples generated during the outage
        agent, clock = make_agent(down, spill=tmp_path, chunk=8, ring=8)
        agent.run(max_samples=30)
        assert agent.unacked == 30
        down.fail_with = None  # server returns
        assert agent.flush() is True
        assert agent.unacked == 0
        assert down.total_samples() == 30
        _, load, _, _ = down.stitched()
        assert len(load) == 30  # nothing lost to the ring bound

    def test_journal_truncated_once_drained(self, tmp_path):
        client = FakeClient()
        agent, _ = make_agent(client, spill=tmp_path, chunk=5)
        agent.run(max_samples=10)
        assert agent.unacked == 0
        assert not (tmp_path / "journal.jsonl").exists()
        assert (tmp_path / "agent.json").exists()

    def test_mismatched_spill_dir_refused(self, tmp_path):
        client = FakeClient()
        agent, _ = make_agent(client, spill=tmp_path, period=6.0)
        agent.run(max_samples=2)
        with pytest.raises(ValueError, match="refusing to mix"):
            make_agent(client, spill=tmp_path, period=30.0)


class TestResync:
    def test_server_reset_triggers_replay(self, tmp_path):
        client = FakeClient()
        agent, _ = make_agent(client, spill=tmp_path, chunk=5)
        agent.run(max_samples=10)
        assert client.total_samples() == 10
        # The server lost its store: it now claims our next seq leaves a
        # gap.  The journal still holds everything since the last
        # truncation (which reset retained_from to 10), so the replay
        # starts there, not at 0.
        client.fail_with = lost_samples_error()
        agent.run(max_samples=7)
        assert agent.flush_errors > 0  # rewound to retained_from, still refused
        client.fail_with = None
        assert agent.flush() is True
        assert client.total_samples() >= 17


class TestConfigValidation:
    def test_ring_must_hold_a_chunk(self):
        with pytest.raises(ValueError, match="ring_capacity"):
            AgentConfig(machine_id="m", chunk_samples=100, ring_capacity=10)

    def test_empty_machine_id(self):
        with pytest.raises(ValueError, match="machine_id"):
            AgentConfig(machine_id="")
