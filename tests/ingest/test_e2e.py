"""End-to-end acceptance: live agent -> server -> store -> SIGKILL -> TR.

The ingestion tier's contract with the rest of the stack: a monitor
agent streaming real (here: simulated-clock) telemetry through
``extend`` leaves a store-durable trace whose temporal-reliability
predictions survive a server SIGKILL and warm start unchanged.
Everything runs through the public CLI, exactly as operators do.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

MACHINE = "e2e-host"

_REPO_ROOT = Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return env


def start_server(store, port_file):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--port-file", str(port_file),
            "--store", str(store), "--fsync", "always",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=_env(), cwd=str(_REPO_ROOT),
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(f"server died: {proc.stderr.read()[-2000:]}")
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("server never wrote its port file")


def run_agent(port, spill, *, days="2"):
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "ingest", "agent",
            "--port", str(port), "--machine", MACHINE,
            "--sampler", "synthetic", "--seed", "11",
            "--simulate-days", days, "--chunk", "500",
            "--spill-dir", str(spill),
        ],
        capture_output=True, text=True, timeout=300,
        env=_env(), cwd=str(_REPO_ROOT),
    )


def predictions(port):
    """A fixed battery of TR queries over both day types."""
    out = []
    with ServeClient("127.0.0.1", port) as client:
        for start_hour, hours in ((0.0, 4.0), (9.0, 5.0), (18.0, 3.0)):
            for day_type in ("weekday", "weekend"):
                out.append(client.predict(MACHINE, start_hour, hours, day_type))
    return out


class TestAgentStoreSigkillRoundTrip:
    def test_tr_survives_server_sigkill_and_warm_start(self, tmp_path):
        store = tmp_path / "store"
        spill = tmp_path / "spill"
        port_file = tmp_path / "port"

        proc, port = start_server(store, port_file)
        try:
            res = run_agent(port, spill)
            assert res.returncode == 0, res.stderr[-2000:]
            with ServeClient("127.0.0.1", port) as client:
                ingested = client.tail(MACHINE, n=1)["n_samples"]
            assert ingested >= 2 * (86400 // 6)  # a real two-day history
            before = predictions(port)
            assert any(p > 0.0 for p in before)
        finally:
            # SIGKILL: no drain, no atexit — the store's durability and
            # the agent's acked samples are all that may survive.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()

        port_file.unlink()
        proc2, port2 = start_server(store, port_file)
        try:
            after = predictions(port2)
            assert after == before  # byte-identical TR after warm start
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)
            proc2.stdout.close()
            proc2.stderr.close()

    def test_agent_resumes_across_server_outage(self, tmp_path):
        # The spill journal bridges a dead server: a second agent run
        # against a fresh server on the same store continues the same
        # grid instead of opening a gap.
        store = tmp_path / "store"
        spill = tmp_path / "spill"
        port_file = tmp_path / "port"

        proc, port = start_server(store, port_file)
        try:
            assert run_agent(port, spill, days="1").returncode == 0
            with ServeClient("127.0.0.1", port) as client:
                assert client.health()["machines"] == 1
                n_first = client.tail(MACHINE, n=1)["n_samples"]
            assert n_first >= 86400 // 6
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()

        port_file.unlink()
        proc2, port2 = start_server(store, port_file)
        try:
            assert run_agent(port2, spill, days="1").returncode == 0
            with ServeClient("127.0.0.1", port2) as client:
                tail = client.tail(MACHINE, n=1)
            # Same grid, no hole: extend rejects gapped chunks, so a
            # clean exit plus growth proves seamless continuation.
            assert tail["n_samples"] > n_first
            assert tail["sample_period"] == 6.0
        finally:
            proc2.terminate()
            proc2.wait(timeout=30)
            proc2.stdout.close()
            proc2.stderr.close()
