"""Sampler backends: graceful degradation and determinism."""

import sys
import types

import pytest

from repro.ingest.samplers import (
    SAMPLER_KINDS,
    MissingDependencyError,
    ProcSampler,
    PsutilSampler,
    SyntheticSampler,
    make_sampler,
)


class TestPsutilSampler:
    def test_missing_psutil_names_the_extra(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "psutil", None)  # import -> ImportError
        with pytest.raises(MissingDependencyError) as err:
            PsutilSampler()
        assert "repro[ingest]" in str(err.value)
        assert "--sampler proc" in str(err.value)

    def test_fake_psutil_is_read_correctly(self, monkeypatch):
        fake = types.SimpleNamespace(
            cpu_percent=lambda interval=None, percpu=False: [20.0, 60.0],
            virtual_memory=lambda: types.SimpleNamespace(available=512 * 2**20),
        )
        monkeypatch.setitem(sys.modules, "psutil", fake)
        sampler = PsutilSampler()
        s = sampler.sample()
        assert s.load == pytest.approx(0.4)   # mean of per-core percents / 100
        assert s.free_mem_mb == pytest.approx(512.0)
        assert s.up is True


class TestProcSampler:
    def test_reads_busy_delta_from_proc_stat(self, tmp_path):
        stat = tmp_path / "stat"
        # fields: user nice system idle iowait
        stat.write_text("cpu  100 0 100 700 100\n")
        (tmp_path / "meminfo").write_text(
            "MemTotal: 2048000 kB\nMemAvailable: 1024000 kB\n"
        )
        sampler = ProcSampler(proc_root=str(tmp_path))
        # +200 busy jiffies out of +1000 total since construction
        stat.write_text("cpu  250 0 150 1300 300\n")
        s = sampler.sample()
        assert s.load == pytest.approx(0.2)
        assert s.free_mem_mb == pytest.approx(1000.0)

    def test_missing_proc_is_a_dependency_error(self, tmp_path):
        with pytest.raises(MissingDependencyError, match="proc"):
            ProcSampler(proc_root=str(tmp_path / "nowhere"))


class TestSyntheticSampler:
    def test_same_seed_same_stream(self):
        a = [SyntheticSampler(seed=7).sample() for _ in range(1)]
        stream1 = [s.load for s in _take(SyntheticSampler(seed=7), 50)]
        stream2 = [s.load for s in _take(SyntheticSampler(seed=7), 50)]
        stream3 = [s.load for s in _take(SyntheticSampler(seed=8), 50)]
        assert stream1 == stream2
        assert stream1 != stream3
        del a

    def test_values_stay_in_range(self):
        for s in _take(SyntheticSampler(seed=3), 500):
            assert 0.0 <= s.load <= 1.0
            assert s.free_mem_mb > 0.0
            assert s.up is True


def _take(sampler, n):
    return [sampler.sample() for _ in range(n)]


class TestMakeSampler:
    def test_kinds_are_covered(self):
        assert set(SAMPLER_KINDS) == {"auto", "psutil", "proc", "synthetic"}

    def test_synthetic(self):
        assert make_sampler("synthetic", seed=1).kind == "synthetic"

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown sampler kind"):
            make_sampler("quantum")
