"""Wall-clock to model-calendar mapping: the weekday invariant."""

import datetime

import pytest

from repro.core.windows import SECONDS_PER_DAY, DayType, day_of_week
from repro.ingest.timebase import (
    UNIX_EPOCH_OFFSET_S,
    day_type_of_wall,
    model_to_wall,
    next_slot,
    slot_index,
    slot_start,
    wall_to_model,
)


def unix_of(y, m, d, hh=0, mm=0):
    dt = datetime.datetime(y, m, d, hh, mm, tzinfo=datetime.timezone.utc)
    return dt.timestamp()


class TestCalendarAlignment:
    def test_offset_is_three_days(self):
        assert UNIX_EPOCH_OFFSET_S == 3 * SECONDS_PER_DAY

    def test_round_trip(self):
        t = 1_723_200_000.5
        assert model_to_wall(wall_to_model(t)) == t
        assert model_to_wall(wall_to_model(t, utc_offset_s=3600.0),
                             utc_offset_s=3600.0) == t

    @pytest.mark.parametrize(
        "date, weekday",
        [
            ((2026, 8, 3), 0),   # a real Monday
            ((2026, 8, 7), 4),   # a real Friday
            ((2026, 8, 8), 5),   # a real Saturday
            ((2026, 8, 9), 6),   # a real Sunday
            ((1970, 1, 1), 3),   # the Unix epoch itself: a Thursday
        ],
    )
    def test_real_weekdays_survive_the_mapping(self, date, weekday):
        unix = unix_of(*date, hh=12)
        assert datetime.datetime.fromtimestamp(
            unix, datetime.timezone.utc
        ).weekday() == weekday
        model_day = int(wall_to_model(unix) // SECONDS_PER_DAY)
        assert day_of_week(model_day) == weekday

    def test_day_type_of_wall(self):
        assert day_type_of_wall(unix_of(2026, 8, 7, 12)) is DayType.WEEKDAY
        assert day_type_of_wall(unix_of(2026, 8, 8, 12)) is DayType.WEEKEND

    def test_utc_offset_moves_the_day_boundary(self):
        # Saturday 23:30 UTC is already Sunday in UTC+1 — still weekend —
        # but Sunday 23:30 UTC is Monday in UTC+1: a weekday.
        sun_late = unix_of(2026, 8, 9, 23, 30)
        assert day_type_of_wall(sun_late) is DayType.WEEKEND
        assert day_type_of_wall(sun_late, utc_offset_s=3600.0) is DayType.WEEKDAY


class TestGridSlots:
    def test_slots_are_global(self):
        # Two agents starting at different times agree on slot identity.
        assert slot_index(600.0, 6.0) == 100
        assert slot_index(604.9, 6.0) == 100
        assert slot_index(606.0, 6.0) == 101
        assert slot_start(101, 6.0) == 606.0

    def test_boundary_belongs_to_the_starting_slot(self):
        assert slot_index(6.0, 6.0) == 1
        # float noise just below a boundary still lands on it
        assert slot_index(6.0 - 1e-12, 6.0) == 1

    def test_next_slot_is_strictly_ahead(self):
        assert next_slot(600.0, 6.0) == 101
        assert next_slot(605.0, 6.0) == 101

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            slot_index(0.0, 0.0)
