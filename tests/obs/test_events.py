"""Tests for the structured event log and the timing helpers."""

import json

import pytest

from repro.obs.events import (
    EventLog,
    get_event_log,
    scoped_event_log,
)
from repro.obs.metrics import MetricsRegistry, scoped_registry
from repro.obs.timing import Timer, span


class TestEventLog:
    def test_emit_and_query(self):
        log = EventLog(registry=MetricsRegistry())
        log.emit("machine_replaced", severity="warning", machine_id="m0")
        log.emit("query_served", machine_id="m0")
        assert len(log) == 2
        warn = log.events(min_severity="warning")
        assert [e.name for e in warn] == ["machine_replaced"]
        assert warn[0].fields["machine_id"] == "m0"
        assert log.events("query_served")[0].severity == "info"

    def test_invalid_severity_rejected(self):
        log = EventLog(registry=MetricsRegistry())
        with pytest.raises(ValueError):
            log.emit("x", severity="fatal")
        with pytest.raises(ValueError):
            log.events(min_severity="fatal")

    def test_ring_buffer_caps_memory_and_counts_drops(self):
        log = EventLog(capacity=3, registry=MetricsRegistry())
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.fields["i"] for e in log.events()] == [2, 3, 4]

    def test_clear(self):
        log = EventLog(capacity=1, registry=MetricsRegistry())
        log.emit("a")
        log.emit("b")
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_jsonl_sink(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(sink=sink, registry=MetricsRegistry())
        log.emit("guest_killed", severity="warning", cause="urr", machine_id="m1")
        log.emit("guest_killed", severity="warning", cause="uec", machine_id="m2")
        lines = sink.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "guest_killed"
        assert first["severity"] == "warning"
        assert first["cause"] == "urr"
        assert "time" in first

    def test_emit_increments_volume_counter(self):
        reg = MetricsRegistry()
        log = EventLog(registry=reg)
        log.emit("a", severity="error")
        log.emit("b", severity="error")
        counter = reg.get("events_emitted_total")
        assert counter.labels(severity="error").value == 2.0

    def test_scoped_event_log(self):
        outside = get_event_log()
        with scoped_registry(), scoped_event_log() as log:
            assert get_event_log() is log
            get_event_log().emit("inside")
            assert len(log) == 1
        assert get_event_log() is outside


class TestTimer:
    def test_basic_cycle(self):
        t = Timer()
        assert not t.running
        with pytest.raises(RuntimeError):
            t.stop()
        t.start()
        assert t.running
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert t.elapsed == elapsed
        assert not t.running

    def test_elapsed_live_while_running(self):
        t = Timer().start()
        assert t.elapsed >= 0.0
        assert t.running


class TestSpan:
    def test_span_observes_into_named_histogram(self):
        with scoped_registry() as reg:
            with span("op_seconds"):
                pass
            assert reg.get("op_seconds").count == 1

    def test_span_with_labels(self):
        with scoped_registry() as reg:
            with span("op_seconds", labels={"path": "x"}):
                pass
            assert reg.get("op_seconds").labels(path="x").count == 1

    def test_span_observes_even_on_exception(self):
        with scoped_registry() as reg:
            with pytest.raises(RuntimeError):
                with span("op_seconds"):
                    raise RuntimeError("boom")
            assert reg.get("op_seconds").count == 1

    def test_span_accepts_histogram_object(self):
        reg = MetricsRegistry()
        h = reg.histogram("direct_seconds")
        with span(h):
            pass
        assert h.count == 1
