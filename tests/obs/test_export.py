"""Tests for the Prometheus/table renderers and JSON snapshots."""

import math
from pathlib import Path

import pytest

from repro.obs.export import (
    read_snapshot,
    render_prometheus,
    render_table,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden_prometheus.txt"
GOLDEN_CATALOG = Path(__file__).parent / "golden_catalog_prometheus.txt"


def golden_registry() -> MetricsRegistry:
    """A deterministic registry exercising every renderer feature."""
    reg = MetricsRegistry()
    c = reg.counter("queries_total", "TR queries served.", ("path",))
    c.labels(path="service").inc(3)
    c.labels(path="batch").inc()
    reg.gauge("machines", "Registered machines.").set(4)
    h = reg.histogram("latency_seconds", "Query latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.1)  # == bound: inclusive, lands in le="0.1"
    h.observe(50.0)  # overflow -> +Inf only
    reg.counter("untouched_total", "Declared but never incremented.")
    reg.counter("weird_labels_total", "Label escaping.", ("k",)).labels(
        k='a"b\\c\nd'
    ).inc()
    return reg


class TestPrometheusRendering:
    def test_matches_golden_file(self):
        assert render_prometheus(golden_registry()) == GOLDEN.read_text()

    def test_full_catalog_matches_golden_file(self):
        # The complete instrument catalog, zero-valued — the schema a
        # dashboard scrapes on day one.  Adding/renaming an instrument
        # must update this golden file deliberately:
        #   PYTHONPATH=src python -c "from repro.obs.instruments import \
        #     ensure_all_registered; from repro.obs.metrics import \
        #     MetricsRegistry; from repro.obs.export import \
        #     render_prometheus; open('tests/obs/golden_catalog_prometheus.txt', \
        #     'w').write(render_prometheus(ensure_all_registered(MetricsRegistry())))"
        from repro.obs.instruments import ensure_all_registered

        rendered = render_prometheus(ensure_all_registered(MetricsRegistry()))
        assert rendered == GOLDEN_CATALOG.read_text()
        for family in ("cluster_requests_routed_total", "cluster_failovers_total",
                       "cluster_shard_latency_seconds", "cluster_node_up"):
            assert f"# TYPE {family} " in rendered

    def test_spec_validity(self):
        text = render_prometheus(golden_registry())
        assert text.endswith("\n")
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        # one TYPE line per metric family, each naming a valid type
        assert len(type_lines) == 5
        for line in type_lines:
            assert line.split()[-1] in ("counter", "gauge", "histogram")
        # histograms carry the mandatory +Inf bucket and _sum/_count
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum" in text
        assert "latency_seconds_count 3" in text
        # buckets are cumulative with inclusive upper bounds
        assert 'latency_seconds_bucket{le="0.1"} 2' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text

    def test_untouched_unlabeled_metric_renders_zero(self):
        text = render_prometheus(golden_registry())
        assert "untouched_total 0" in text

    def test_label_value_escaping(self):
        text = render_prometheus(golden_registry())
        assert r'weird_labels_total{k="a\"b\\c\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_special_float_values(self):
        reg = MetricsRegistry()
        reg.gauge("g_nan").set(math.nan)
        reg.gauge("g_inf").set(math.inf)
        text = render_prometheus(reg)
        assert "g_nan NaN" in text
        assert "g_inf +Inf" in text


class TestTableRendering:
    def test_lists_every_series(self):
        text = render_table(golden_registry())
        line = next(
            l for l in text.splitlines() if l.startswith('queries_total{path="service"}')
        )
        assert line.split() == ['queries_total{path="service"}', "counter", "3"]
        assert "machines" in text
        assert "count=3" in text and "mean=" in text

    def test_labeled_metric_with_no_children(self):
        reg = MetricsRegistry()
        reg.counter("lonely_total", labelnames=("k",))
        assert "(no series)" in render_table(reg)

    def test_empty_registry(self):
        assert "no metrics recorded" in render_table(MetricsRegistry())


class TestSnapshots:
    def test_write_read_round_trip(self, tmp_path):
        reg = golden_registry()
        path = write_snapshot(tmp_path / "snap.json", reg)
        clone = read_snapshot(path)
        assert render_prometheus(clone) == render_prometheus(reg)

    def test_write_creates_parent_dirs(self, tmp_path):
        path = write_snapshot(tmp_path / "deep" / "snap.json", MetricsRegistry())
        assert path.exists()

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_snapshot(tmp_path / "missing.json")
