"""Integration: instrumented modules publish into the scoped registry."""

import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.online import IncrementalPredictor
from repro.core.windows import ClockWindow, DayType
from repro.obs.instruments import CATALOG, ensure_all_registered, instrument
from repro.obs.metrics import MetricsRegistry, scoped_registry


@pytest.fixture()
def incremental():
    return IncrementalPredictor(config=EstimatorConfig(step_multiple=10))


class TestCatalog:
    def test_instrument_unknown_name_raises(self):
        with pytest.raises(KeyError):
            instrument("made_up_total", MetricsRegistry())

    def test_ensure_all_registered_materializes_catalog(self):
        reg = ensure_all_registered(MetricsRegistry())
        assert set(reg.names()) == set(CATALOG)

    def test_specs_are_internally_consistent(self):
        for spec in CATALOG.values():
            assert spec.kind in ("counter", "gauge", "histogram")
            assert spec.help, f"{spec.name} has no help text"


class TestIncrementalCacheCounters:
    def test_hits_and_misses_track_cache_behaviour(self, long_trace, incremental):
        cw = ClockWindow.from_hours(9, 2)
        with scoped_registry() as reg:
            incremental.predict(long_trace, cw, DayType.WEEKDAY)
            hits = instrument("incremental_cache_hits_total", reg)
            misses = instrument("incremental_cache_misses_total", reg)
            # First query: every history day is a miss, none a hit.
            assert hits.value == 0.0
            assert misses.value == incremental.days_classified
            assert misses.value > 0
            first_misses = misses.value

            incremental.predict(long_trace, cw, DayType.WEEKDAY)
            # Repeat query: every day is a hit, no new classification.
            assert misses.value == first_misses
            assert hits.value == first_misses
            # The counters agree with the predictor's own bookkeeping.
            assert hits.value == incremental.days_reused
            assert (
                reg.get("incremental_days_classified_total").value
                == incremental.days_classified
            )

    def test_invalidation_counter(self, long_trace, incremental):
        cw = ClockWindow.from_hours(9, 2)
        with scoped_registry() as reg:
            incremental.predict(long_trace, cw, DayType.WEEKDAY)
            incremental.invalidate(long_trace.machine_id)
            dropped = reg.get("incremental_cache_invalidations_total")
            assert dropped.value > 0

    def test_query_latency_observed(self, long_trace, incremental):
        with scoped_registry() as reg:
            incremental.predict(long_trace, ClockWindow.from_hours(9, 2), DayType.WEEKDAY)
            lat = reg.get("tr_query_latency_seconds")
            assert lat.labels(path="incremental").count == 1
            assert lat.labels(path="incremental").sum > 0.0
