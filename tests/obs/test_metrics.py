"""Tests for the metrics primitives and registry."""

import math
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
    linear_buckets,
    reset_registry,
    scoped_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_labeled_children_are_independent(self):
        c = Counter("hits_total", labelnames=("path",))
        c.labels(path="a").inc(3)
        c.labels(path="b").inc()
        assert c.labels("a").value == 3.0
        assert c.labels("b").value == 1.0

    def test_labeled_metric_rejects_bare_use(self):
        c = Counter("hits_total", labelnames=("path",))
        with pytest.raises(ValueError):
            c.inc()

    def test_label_count_mismatch(self):
        c = Counter("hits_total", labelnames=("path",))
        with pytest.raises(ValueError):
            c.labels("a", "b")
        with pytest.raises(ValueError):
            c.labels(route="a")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("machines")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0


class TestHistogramBucketEdges:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        # Prometheus le semantics: upper bounds are inclusive.
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)
        assert h._solo().bucket_counts == (0, 1, 0, 0)

    def test_value_above_last_bound_goes_to_inf(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(4.0001)
        h.observe(1e9)
        assert h._solo().bucket_counts == (0, 0, 0, 2)

    def test_cumulative_counts(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h._solo().cumulative_counts() == (1, 2, 3, 4)
        assert h.count == 4
        assert h.sum == pytest.approx(105.0)

    def test_rejects_unsorted_or_empty_or_inf_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, math.inf))


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        assert math.isnan(h.quantile(0.5))

    def test_interpolates_within_bucket(self):
        # Mass in two buckets: the p75 falls inside (1, 2] and
        # interpolates between its bounds.
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 1.5):
            h.observe(v)
        assert 1.0 < h.quantile(0.75) <= 2.0
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_single_occupied_bucket_returns_exact_bound(self):
        # Regression: with every observation in one bucket, interpolating
        # from the bucket's lower bound fabricated a spread — p50 of ten
        # 1.5s observations came back as 1.0 + (2-1)*(5/10) by accident of
        # arithmetic, and p10 came back as 1.1, which the data never
        # showed.  All quantiles must return the bucket's (inclusive)
        # upper bound.
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            h.observe(1.5)
        for q in (0.0, 0.1, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(2.0)

    def test_single_occupied_overflow_bucket_clamps(self):
        # Same rule for the +Inf bucket: clamp to the last finite bound.
        h = Histogram("lat", buckets=(1.0, 2.0))
        for _ in range(3):
            h.observe(99.0)
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_quantile_across_buckets(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 0.5, 3.0):  # 75% below 1, one in (2, 4]
            h.observe(v)
        assert h.quantile(0.5) <= 1.0
        assert 2.0 <= h.quantile(0.99) <= 4.0

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_rejects_out_of_range_q(self):
        h = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestBucketHelpers:
    def test_exponential(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_linear(self):
        assert linear_buckets(0.0, 0.5, 3) == (0.0, 0.5, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 3)
        with pytest.raises(ValueError):
            linear_buckets(0.0, 0.0, 3)


class TestMetricValidation:
    def test_bad_metric_name(self):
        with pytest.raises(ValueError):
            Counter("2bad")

    def test_bad_label_names(self):
        with pytest.raises(ValueError):
            Counter("ok", labelnames=("le",))
        with pytest.raises(ValueError):
            Counter("ok", labelnames=("__reserved",))
        with pytest.raises(ValueError):
            Counter("ok", labelnames=("a", "a"))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("b",))

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zzz")
        reg.gauge("aaa")
        assert [m.name for m in reg.collect()] == ["aaa", "zzz"]

    def test_contains_and_get(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        assert "x_total" in reg
        assert reg.get("missing") is None


class TestGlobalRegistrySwapping:
    def test_scoped_registry_isolates(self):
        outside = get_registry()
        with scoped_registry() as reg:
            assert get_registry() is reg
            assert get_registry() is not outside
            reg.counter("scoped_total").inc()
        assert get_registry() is outside
        assert "scoped_total" not in get_registry()

    def test_scoped_registry_restores_on_error(self):
        outside = get_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert get_registry() is outside

    def test_reset_returns_fresh_empty_registry(self):
        with scoped_registry():
            get_registry().counter("junk_total").inc()
            fresh = reset_registry()
            assert get_registry() is fresh
            assert len(fresh) == 0
            # restore scoped_registry's expectation before exiting
        # scoped_registry still restores the original on exit

    def test_set_registry_returns_old(self):
        with scoped_registry() as reg:
            other = MetricsRegistry()
            old = set_registry(other)
            assert old is reg
            assert get_registry() is other


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", ("k",)).labels(k="v").inc(7)
        reg.gauge("g", "a gauge").set(-2.5)
        h = reg.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        clone = MetricsRegistry.from_state(reg.to_state())
        assert clone.names() == reg.names()
        assert clone.get("c_total").labels("v").value == 7.0
        assert clone.get("g").value == -2.5
        hc = clone.get("h_seconds")
        assert hc.buckets == (0.1, 1.0)
        assert hc._solo().bucket_counts == (1, 0, 1)
        assert hc.sum == pytest.approx(5.05)
        # a second round trip is byte-identical
        assert clone.to_state() == reg.to_state()

    def test_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_state({"version": 99, "metrics": []})


class TestThreadSafety:
    def test_concurrent_child_creation_yields_one_child(self):
        c = Counter("hits_total", labelnames=("k",))
        children = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            children.append(c.labels(k="same"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(ch is children[0] for ch in children)
        assert len(c.children) == 1
