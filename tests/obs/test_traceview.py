"""Tests for span-tree reconstruction, critical path and summaries."""

import json

from repro.obs.tracing import Span
from repro.obs.traceview import (
    build_traces,
    critical_path,
    load_spans,
    render_summary,
    render_tree,
    summarize,
)


def _span(trace, sid, parent, name, tier, start, dur, **attrs):
    return Span(
        trace_id=trace, span_id=sid, parent_id=parent, name=name, tier=tier,
        start=start, duration_s=dur, attrs=attrs,
    )


def _sample_tree():
    # client.request 100ms -> router.route 90ms -> dispatch.compute 70ms
    #                                           -> predict.query 50ms
    return [
        _span("t1", "a", None, "client.request", "client", 0.00, 0.100),
        _span("t1", "b", "a", "router.route", "router", 0.005, 0.090),
        _span("t1", "c", "b", "dispatch.compute", "serve", 0.010, 0.070),
        _span("t1", "d", "c", "predict.query", "predict", 0.015, 0.050),
    ]


class TestLoadSpans:
    def test_merges_files_and_skips_bad_lines(self, tmp_path):
        good = _sample_tree()[0].to_wire()
        f1 = tmp_path / "a.jsonl"
        f1.write_text(json.dumps(good) + "\n" + "{torn garba")
        f2 = tmp_path / "b.jsonl"
        f2.write_text(json.dumps(_sample_tree()[1].to_wire()) + "\n\n")
        spans = load_spans([f1, f2, tmp_path / "missing.jsonl"])
        assert [s.span_id for s in spans] == ["a", "b"]


class TestBuildTraces:
    def test_links_children_and_finds_root(self):
        trees = build_traces(_sample_tree())
        tree = trees["t1"]
        assert [r.span_id for r in tree.roots] == ["a"]
        assert [c.span_id for c in tree.children["a"]] == ["b"]
        assert tree.tiers() == {"client", "router", "serve", "predict"}
        assert tree.duration_s == 0.100  # bounded by the client span

    def test_duplicate_span_ids_collapse(self):
        spans = _sample_tree() + [_sample_tree()[0]]
        assert len(build_traces(spans)["t1"].spans) == 4

    def test_orphan_counts_as_root(self):
        # the parent ("gone") was never recorded — a SIGKILLed node
        spans = [_span("t1", "x", "gone", "dispatch.compute", "serve", 0.0, 0.1)]
        assert [r.span_id for r in build_traces(spans)["t1"].roots] == ["x"]

    def test_multiple_traces_separate(self):
        spans = _sample_tree() + [
            _span("t2", "z", None, "client.request", "client", 1.0, 0.2)
        ]
        trees = build_traces(spans)
        assert set(trees) == {"t1", "t2"}


class TestCriticalPath:
    def test_follows_child_that_finished_last(self):
        spans = _sample_tree() + [
            # a faster sibling under the router: not on the critical path
            _span("t1", "e", "b", "router.attempt", "router", 0.006, 0.001),
        ]
        path = critical_path(build_traces(spans)["t1"])
        assert [s.span_id for s in path] == ["a", "b", "c", "d"]

    def test_empty_tree(self):
        from repro.obs.traceview import TraceTree

        assert critical_path(TraceTree(trace_id="t", spans=[])) == []

    def test_cycle_guard_terminates(self):
        spans = [
            _span("t1", "a", "b", "x", "serve", 0.0, 0.1),
            _span("t1", "b", "a", "y", "serve", 0.0, 0.1),
        ]
        tree = build_traces(spans)["t1"]
        assert len(critical_path(tree)) <= 2


class TestSummarize:
    def test_per_tier_and_per_name_stats(self):
        trees = build_traces(_sample_tree())
        summ = summarize(trees)
        assert summ.n_traces == 1
        assert summ.n_spans == 4
        assert summ.trace_p50_ms == 100.0
        assert summ.by_tier["predict"]["count"] == 1
        assert summ.by_tier["predict"]["p50_ms"] == 50.0
        assert summ.by_name["router.route"]["p99_ms"] == 90.0
        assert summ.slowest[0][0] == "t1"

    def test_tier_breakdown_is_sorted_p50(self):
        summ = summarize(build_traces(_sample_tree()))
        breakdown = summ.tier_breakdown_ms()
        assert list(breakdown) == sorted(breakdown)
        assert breakdown["client"] == 100.0

    def test_exemplars_bound(self):
        spans = []
        for i in range(5):
            spans.append(
                _span(f"t{i}", f"s{i}", None, "client.request", "client", 0.0, 0.1 * (i + 1))
            )
        summ = summarize(build_traces(spans), exemplars=2)
        assert len(summ.slowest) == 2
        assert summ.slowest[0][0] == "t4"  # slowest first


class TestRendering:
    def test_render_tree_marks_critical_path(self):
        tree = build_traces(_sample_tree())["t1"]
        text = render_tree(tree)
        assert "client.request" in text
        assert "* " in text and "(* = critical path)" in text

    def test_render_summary_has_tier_table(self):
        text = render_summary(summarize(build_traces(_sample_tree())))
        assert "tier" in text
        assert "predict" in text
        assert "slowest traces:" in text
