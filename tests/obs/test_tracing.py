"""Tests for trace contexts, spans, the recorder and the span API."""

import json
import threading

import pytest

from repro.obs.tracing import (
    DEFAULT_CAPACITY,
    Span,
    SpanRecorder,
    TraceContext,
    annotate,
    current_context,
    get_recorder,
    record_span,
    reset_recorder,
    scoped_recorder,
    set_recorder,
    start_span,
    use_context,
)


class TestTraceContext:
    def test_new_root_has_no_parent_and_unique_ids(self):
        a = TraceContext.new_root()
        b = TraceContext.new_root()
        assert a.parent_id is None
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 32  # 16 bytes hex
        assert len(a.span_id) == 16  # 8 bytes hex

    def test_child_keeps_trace_and_parents_to_self(self):
        root = TraceContext.new_root()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_wire_round_trip(self):
        ctx = TraceContext.new_root().child()
        again = TraceContext.from_wire(ctx.to_wire())
        assert again == ctx

    def test_root_wire_form_omits_parent(self):
        assert "parent_id" not in TraceContext.new_root().to_wire()

    def test_from_wire_rejects_missing_ids(self):
        with pytest.raises(ValueError):
            TraceContext.from_wire({"trace_id": "abc"})
        with pytest.raises(ValueError):
            TraceContext.from_wire({"span_id": "abc", "trace_id": ""})


class TestSpanWire:
    def test_round_trip_preserves_everything(self):
        span = Span(
            trace_id="t", span_id="s", parent_id="p", name="x.y", tier="serve",
            start=100.0, duration_s=0.25, status="error", attrs={"op": "predict"},
        )
        assert Span.from_wire(span.to_wire()) == span
        assert span.end == pytest.approx(100.25)

    def test_defaults_on_sparse_record(self):
        span = Span.from_wire(
            {"trace_id": "t", "span_id": "s", "name": "n", "start": 1.0,
             "duration_s": 0.5}
        )
        assert span.parent_id is None
        assert span.status == "ok"
        assert span.attrs == {}


class TestSpanRecorder:
    def test_buffer_is_bounded(self):
        rec = SpanRecorder(capacity=3)
        for i in range(5):
            rec.record(Span("t", f"s{i}", None, "n", "serve", 0.0, 0.1))
        assert len(rec) == 3
        assert [s.span_id for s in rec.spans()] == ["s2", "s3", "s4"]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)

    def test_sink_writes_each_span_eagerly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = SpanRecorder(export_path=path)
        rec.record(Span("t", "s1", None, "n", "serve", 0.0, 0.1))
        # readable before close: the sink flushes per record
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["span_id"] == "s1"
        rec.close()

    def test_export_appends_buffer(self, tmp_path):
        rec = SpanRecorder()
        rec.record(Span("t", "s1", None, "n", "serve", 0.0, 0.1))
        rec.record(Span("t", "s2", "s1", "m", "store", 0.1, 0.1))
        out = tmp_path / "dump.jsonl"
        rec.export(out)
        assert len(out.read_text().strip().splitlines()) == 2

    def test_export_to_sink_path_does_not_duplicate(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = SpanRecorder(export_path=path)
        rec.record(Span("t", "s1", None, "n", "serve", 0.0, 0.1))
        rec.export(path)  # would double every record if not skipped
        rec.close()
        assert len(path.read_text().strip().splitlines()) == 1

    def test_record_is_thread_safe(self):
        rec = SpanRecorder(capacity=10_000)

        def hammer(k):
            for i in range(100):
                rec.record(Span("t", f"{k}-{i}", None, "n", "serve", 0.0, 0.1))

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec) == 800


class TestGlobalRecorder:
    def test_scoped_recorder_swaps_and_restores(self):
        outside = get_recorder()
        with scoped_recorder() as rec:
            assert get_recorder() is rec
            assert get_recorder() is not outside
        assert get_recorder() is outside

    def test_set_and_reset(self):
        old = get_recorder()
        try:
            mine = SpanRecorder()
            assert set_recorder(mine) is old
            fresh = reset_recorder()
            assert get_recorder() is fresh
            assert len(fresh) == 0
        finally:
            set_recorder(old)

    def test_default_capacity(self):
        assert SpanRecorder()._buffer.maxlen == DEFAULT_CAPACITY


class TestStartSpan:
    def test_no_context_yields_none_and_records_nothing(self):
        with scoped_recorder() as rec:
            assert current_context() is None
            with start_span("x", "serve") as sp:
                assert sp is None
            assert len(rec) == 0

    def test_records_child_span_under_active_context(self):
        root = TraceContext.new_root()
        with scoped_recorder() as rec, use_context(root):
            with start_span("op", "serve", op="predict") as sp:
                assert sp is not None
                inner = current_context()
                assert inner.trace_id == root.trace_id
                assert inner.parent_id == root.span_id
        spans = rec.spans()
        assert len(spans) == 1
        assert spans[0].name == "op"
        assert spans[0].parent_id == root.span_id
        assert spans[0].attrs == {"op": "predict"}
        assert spans[0].duration_s >= 0.0

    def test_nested_spans_parent_correctly(self):
        with scoped_recorder() as rec, use_context(TraceContext.new_root()):
            with start_span("outer", "serve"):
                with start_span("inner", "predict"):
                    pass
        inner, outer = rec.spans()  # inner finishes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id

    def test_exception_marks_error_and_still_records(self):
        with scoped_recorder() as rec, use_context(TraceContext.new_root()):
            with pytest.raises(RuntimeError):
                with start_span("boom", "serve"):
                    raise RuntimeError("x")
        assert rec.spans()[0].status == "error"

    def test_context_restored_after_span(self):
        root = TraceContext.new_root()
        with scoped_recorder(), use_context(root):
            with start_span("op", "serve"):
                pass
            assert current_context() is root

    def test_explicit_context_overrides_ambient(self):
        other = TraceContext.new_root()
        with scoped_recorder() as rec:
            with start_span("op", "serve", context=other):
                pass
        assert rec.spans()[0].trace_id == other.trace_id

    def test_use_context_none_deactivates(self):
        with scoped_recorder() as rec, use_context(TraceContext.new_root()):
            with use_context(None):
                with start_span("op", "serve") as sp:
                    assert sp is None
            assert len(rec) == 0


class TestAnnotate:
    def test_sets_attrs_on_innermost_span(self):
        with scoped_recorder() as rec, use_context(TraceContext.new_root()):
            with start_span("outer", "serve"):
                with start_span("inner", "predict"):
                    annotate(cache_hits=3)
        inner, outer = rec.spans()
        assert inner.attrs == {"cache_hits": 3}
        assert outer.attrs == {}

    def test_noop_when_untraced(self):
        annotate(ignored=True)  # must not raise


class TestRecordSpan:
    def test_uses_contexts_own_span_id(self):
        ctx = TraceContext.new_root().child()
        with scoped_recorder() as rec:
            span = record_span(
                "dispatch.queue_wait", "serve",
                context=ctx, start=10.0, duration_s=0.02, op="predict",
            )
        assert span.span_id == ctx.span_id
        assert span.parent_id == ctx.parent_id
        assert rec.spans() == [span]
        assert span.attrs == {"op": "predict"}
