"""The scheduler's batched TR path: one fleet solve per placement.

Candidate scoring (and the re-placement best-TR sweep) asks the service
for the whole pool in one ``predict_batch`` call when available, with a
scalar-per-machine fallback for services (or fakes) without it — and
for any batch failure.  Placement decisions must not depend on which
path answered.
"""

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import AbsoluteWindow, SECONDS_PER_DAY
from repro.sched import JobManager, SchedConfig, STATE_PLACED
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


class ScalarOnlyService:
    """A fake with no ``predict_batch`` at all (pre-fleet surface)."""

    def __init__(self, trs):
        self.trs = dict(trs)
        self.scalar_calls = 0

    @property
    def machine_ids(self):
        return list(self.trs)

    def predict(self, machine, window):
        self.scalar_calls += 1
        return self.trs[machine]


class CountingBatchService(ScalarOnlyService):
    """A fake that answers batches and counts which path was used."""

    def __init__(self, trs):
        super().__init__(trs)
        self.batch_calls = 0

    def predict_batch(self, machines, window):
        self.batch_calls += 1
        return {m: self.trs[m] for m in machines}


class FailingBatchService(CountingBatchService):
    def predict_batch(self, machines, window):
        self.batch_calls += 1
        raise RuntimeError("fleet solver unavailable")


def mk_manager(service, clock, **cfg):
    return JobManager(
        service,
        config=SchedConfig(**cfg),
        clock=lambda: clock[0],
        node="test",
    )


@pytest.fixture()
def clock():
    return [0.0]


class TestBatchPath:
    def test_batch_service_is_asked_once_per_placement(self, clock):
        svc = CountingBatchService({"good": 0.9, "bad": 0.3, "meh": 0.5})
        m = mk_manager(svc, clock)
        out = m.submit("j1", total_cpu_seconds=100.0, cpu=0.5)
        assert out["record"]["machine"] == "good"
        assert svc.batch_calls == 1
        assert svc.scalar_calls == 0

    def test_scalar_only_service_falls_back(self, clock):
        svc = ScalarOnlyService({"good": 0.9, "bad": 0.3})
        m = mk_manager(svc, clock)
        out = m.submit("j1", total_cpu_seconds=100.0, cpu=0.5)
        assert out["record"]["state"] == STATE_PLACED
        assert out["record"]["machine"] == "good"
        assert svc.scalar_calls == 2

    def test_batch_failure_falls_back_to_scalar(self, clock):
        svc = FailingBatchService({"good": 0.9, "bad": 0.3})
        m = mk_manager(svc, clock)
        out = m.submit("j1", total_cpu_seconds=100.0, cpu=0.5)
        assert out["record"]["machine"] == "good"
        assert svc.batch_calls == 1
        assert svc.scalar_calls == 2

    def test_batch_predict_false_stays_scalar(self, clock):
        svc = CountingBatchService({"good": 0.9, "bad": 0.3})
        m = mk_manager(svc, clock, batch_predict=False)
        out = m.submit("j1", total_cpu_seconds=100.0, cpu=0.5)
        assert out["record"]["machine"] == "good"
        assert svc.batch_calls == 0
        assert svc.scalar_calls == 2

    def test_replace_best_tr_uses_batch(self, clock):
        svc = CountingBatchService({"a": 0.9, "b": 0.8, "c": 0.2})
        m = mk_manager(svc, clock)
        m.submit("j1", total_cpu_seconds=1000.0, cpu=0.5)
        before = svc.batch_calls
        m.replace(["a"], reason="node_down")
        assert svc.batch_calls > before
        assert m.status("j1")["machine"] in ("b", "c")


def idle_trace(mid, n_days=10, period=60.0, fail_hour=None):
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    if fail_hour is not None:
        i0 = int(fail_hour * 3600 / period)
        for d in range(n_days):
            load[d * n_per_day + i0 : d * n_per_day + i0 + 15] = 0.95
    return MachineTrace(mid, 0.0, period, load, np.full(load.shape, 400.0))


class TestRealServiceIdentity:
    def test_placements_identical_batch_vs_scalar(self):
        """Same jobs, real service: both TR paths place identically."""
        records = {}
        for batch in (True, False):
            svc = AvailabilityService(
                estimator_config=EstimatorConfig(step_multiple=5)
            )
            for i in range(4):
                svc.register(idle_trace(f"m{i}", fail_hour=8.0 + i))
            clock = [7.0 * SECONDS_PER_DAY + 9 * 3600.0]
            m = JobManager(
                svc,
                config=SchedConfig(batch_predict=batch),
                clock=lambda: clock[0],
                node="test",
            )
            for j in range(3):
                m.submit(f"j{j}", total_cpu_seconds=2 * 3600.0, cpu=0.4)
            records[batch] = [
                (r["job"], r["machine"], r["state"]) for r in m.list_jobs()
            ]
        assert records[True] == records[False]
