"""PlacementEngine unit + property tests.

The property tests pin the engine's contract-level invariants:

* packing — a returned placement never exceeds the machine's remaining
  capacity (the engine refuses rather than overcommits);
* TR ordering — among candidates with identical resource shapes the
  predictive ranking is exactly the TR ordering;
* totality — any candidate list (including empty) yields a Placement or
  a structured PlacementRefusal, never an exception.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    REFUSAL_NO_FEASIBLE_MACHINE,
    Candidate,
    JobDemand,
    Placement,
    PlacementEngine,
    PlacementRefusal,
)


def mk_candidate(i, tr, *, cpu_cap=1.0, mem_cap=1024.0, cpu_used=0.0, mem_used=0.0):
    return Candidate(
        machine_id=f"m-{i:02d}",
        tr=tr,
        cpu_capacity=cpu_cap,
        mem_capacity_mb=mem_cap,
        cpu_committed=cpu_used,
        mem_committed_mb=mem_used,
    )


class TestScoring:
    def test_higher_tr_wins_on_equal_shapes(self):
        engine = PlacementEngine()
        job = JobDemand("j", cpu=0.5, mem_mb=64.0)
        decision = engine.place(
            job, [mk_candidate(0, 0.4), mk_candidate(1, 0.9), mk_candidate(2, 0.6)]
        )
        assert isinstance(decision, Placement)
        assert decision.machine_id == "m-01"
        assert decision.tr == pytest.approx(0.9)

    def test_tie_breaks_by_machine_id(self):
        engine = PlacementEngine()
        job = JobDemand("j", cpu=0.5)
        ranked = engine.rank(job, [mk_candidate(1, 0.7), mk_candidate(0, 0.7)])
        assert [p.machine_id for p in ranked] == ["m-00", "m-01"]

    def test_infeasible_candidate_skipped(self):
        engine = PlacementEngine()
        job = JobDemand("j", cpu=0.5, mem_mb=64.0)
        full = mk_candidate(0, 0.99, cpu_used=0.8)  # only 0.2 cpu left
        empty = mk_candidate(1, 0.2)
        decision = engine.place(job, [full, empty])
        assert isinstance(decision, Placement)
        assert decision.machine_id == "m-01"

    def test_memory_exhaustion_is_infeasible(self):
        engine = PlacementEngine()
        job = JobDemand("j", cpu=0.1, mem_mb=512.0)
        crowded = mk_candidate(0, 0.99, mem_used=600.0)  # 424MB free < 512
        assert engine.score(crowded, job) is None

    def test_blind_engine_ranks_by_headroom(self):
        engine = PlacementEngine(predictive=False)
        job = JobDemand("j", cpu=0.1, mem_mb=16.0)
        loaded = mk_candidate(0, 0.99, cpu_used=0.7, mem_used=700.0)
        idle = mk_candidate(1, 0.01)
        ranked = engine.rank(job, [loaded, idle])
        # least-loaded ignores TR entirely: the idle machine wins even
        # though its TR is terrible
        assert ranked[0].machine_id == "m-01"

    def test_tr_weight_one_ignores_packing(self):
        engine = PlacementEngine(tr_weight=1.0)
        job = JobDemand("j", cpu=0.5, mem_mb=512.0)
        skewed = mk_candidate(0, 0.8, cpu_used=0.4)  # unbalanced leftovers
        balanced = mk_candidate(1, 0.8)
        ranked = engine.rank(job, [skewed, balanced])
        assert ranked[0].score == pytest.approx(ranked[1].score)

    def test_invalid_tr_weight_rejected(self):
        with pytest.raises(ValueError, match="tr_weight"):
            PlacementEngine(tr_weight=1.5)

    def test_invalid_demand_rejected(self):
        with pytest.raises(ValueError, match="cpu"):
            JobDemand("j", cpu=0.0)
        with pytest.raises(ValueError, match="mem"):
            JobDemand("j", mem_mb=-1.0)

    def test_infinite_memory_candidate_is_neutral(self):
        engine = PlacementEngine()
        job = JobDemand("j", cpu=0.5, mem_mb=64.0)
        placement = engine.score(mk_candidate(0, 0.8, mem_cap=math.inf), job)
        assert placement is not None
        assert placement.balance == pytest.approx(1.0)


class TestRefusal:
    def test_empty_candidates_structured_refusal(self):
        decision = PlacementEngine().place(JobDemand("j"), [])
        assert isinstance(decision, PlacementRefusal)
        assert decision.reason == REFUSAL_NO_FEASIBLE_MACHINE
        assert decision.candidates_considered == 0
        wire = decision.to_dict()
        assert wire["job"] == "j" and wire["reason"] == REFUSAL_NO_FEASIBLE_MACHINE

    def test_all_infeasible_structured_refusal(self):
        job = JobDemand("j", cpu=0.9)
        crowded = [mk_candidate(i, 0.9, cpu_used=0.5) for i in range(3)]
        decision = PlacementEngine().place(job, crowded)
        assert isinstance(decision, PlacementRefusal)
        assert decision.candidates_considered == 3
        assert "3 machines" in decision.detail


# --------------------------------------------------------------------- #
# property tests
# --------------------------------------------------------------------- #

trs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)

candidate_shapes = st.tuples(
    trs,
    st.floats(min_value=0.1, max_value=8.0, allow_nan=False),  # cpu capacity
    st.floats(min_value=32.0, max_value=4096.0, allow_nan=False),  # mem capacity
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),  # cpu committed
    st.floats(min_value=0.0, max_value=4096.0, allow_nan=False),  # mem committed
)


def build_pool(shapes):
    """Candidates with unique ids (the engine keys decisions on the id)."""
    return [
        Candidate(
            machine_id=f"m-{i:02d}",
            tr=tr,
            cpu_capacity=cpu_cap,
            mem_capacity_mb=mem_cap,
            cpu_committed=cpu_used,
            mem_committed_mb=mem_used,
        )
        for i, (tr, cpu_cap, mem_cap, cpu_used, mem_used) in enumerate(shapes)
    ]

demands = st.builds(
    JobDemand,
    job_id=st.just("prop-job"),
    cpu=st.floats(min_value=0.01, max_value=4.0, allow_nan=False),
    mem_mb=st.floats(min_value=0.0, max_value=2048.0, allow_nan=False),
)

engines = st.builds(
    PlacementEngine,
    tr_weight=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    predictive=st.booleans(),
)


class TestEngineProperties:
    @settings(max_examples=200, deadline=None)
    @given(engines, demands, st.lists(candidate_shapes, max_size=12))
    def test_packing_never_exceeds_capacity(self, engine, job, shapes):
        """Any returned placement fits in the machine's leftover capacity."""
        pool = build_pool(shapes)
        decision = engine.place(job, pool)
        if isinstance(decision, PlacementRefusal):
            return
        chosen = next(c for c in pool if c.machine_id == decision.machine_id)
        eps = 1e-6
        assert chosen.cpu_committed + job.cpu <= chosen.cpu_capacity + eps
        assert chosen.mem_committed_mb + job.mem_mb <= chosen.mem_capacity_mb + eps

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(trs, min_size=1, max_size=10, unique=True),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_equal_shapes_ordered_exactly_by_tr(self, tr_values, tr_weight):
        """With identical resource shapes, predictive rank == TR rank."""
        engine = PlacementEngine(tr_weight=tr_weight)
        job = JobDemand("j", cpu=0.25, mem_mb=32.0)
        pool = [mk_candidate(i, tr) for i, tr in enumerate(tr_values)]
        ranked = engine.rank(job, pool)
        assert len(ranked) == len(pool)
        by_tr = sorted(pool, key=lambda c: (-c.tr, c.machine_id))
        assert [p.machine_id for p in ranked] == [c.machine_id for c in by_tr]

    @settings(max_examples=200, deadline=None)
    @given(engines, demands, st.lists(candidate_shapes, max_size=12))
    def test_total_never_raises(self, engine, job, shapes):
        """place() always returns a decision object, never raises."""
        pool = build_pool(shapes)
        decision = engine.place(job, pool)
        if isinstance(decision, Placement):
            assert decision.machine_id in {c.machine_id for c in pool}
            assert 0.0 <= decision.tr <= 1.0
            assert math.isfinite(decision.score)
        else:
            assert decision.reason == REFUSAL_NO_FEASIBLE_MACHINE
            assert decision.candidates_considered == len(pool)

    @settings(max_examples=100, deadline=None)
    @given(demands)
    def test_empty_pool_always_refuses(self, job):
        decision = PlacementEngine().place(job, [])
        assert isinstance(decision, PlacementRefusal)
        assert decision.reason == REFUSAL_NO_FEASIBLE_MACHINE
