"""JobManager lifecycle, recovery choices, and WAL durability.

The manager runs against a stub availability service (fixed TR per
machine) and an injected clock, so every lifecycle transition is
deterministic and instantaneous.
"""

import pytest

from repro.core.windows import AbsoluteWindow
from repro.sched import (
    STATE_CANCELLED,
    STATE_COMPLETED,
    STATE_PENDING,
    STATE_PLACED,
    STATE_RUNNING,
    JobManager,
    SchedConfig,
    UnknownJob,
)


class FakeService:
    """machine -> constant TR; the whole surface the manager touches."""

    def __init__(self, trs):
        self.trs = dict(trs)

    @property
    def machine_ids(self):
        return list(self.trs)

    def predict(self, machine, window):
        assert isinstance(window, AbsoluteWindow)
        return self.trs[machine]


@pytest.fixture()
def clock():
    now = [0.0]
    return now


def mk_manager(service, clock, *, directory=None, **cfg):
    return JobManager(
        service,
        config=SchedConfig(**cfg),
        directory=directory,
        clock=lambda: clock[0],
        node="test",
    )


class TestLifecycle:
    def test_submit_places_on_best_tr(self, clock):
        svc = FakeService({"good": 0.9, "bad": 0.3})
        m = mk_manager(svc, clock)
        out = m.submit("j1", total_cpu_seconds=100.0, cpu=0.5)
        assert out["record"]["state"] == STATE_PLACED
        assert out["record"]["machine"] == "good"
        assert "refusal" not in out

    def test_clock_drives_running_and_completion(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock)
        m.submit("j1", total_cpu_seconds=100.0)
        clock[0] = 40.0
        status = m.status("j1")
        assert status["state"] == STATE_RUNNING
        assert status["progress_seconds"] == pytest.approx(40.0)
        assert status["remaining_seconds"] == pytest.approx(60.0)
        clock[0] = 150.0
        status = m.status("j1")
        assert status["state"] == STATE_COMPLETED
        assert status["completed_at"] == pytest.approx(100.0)
        assert status["progress_seconds"] == pytest.approx(100.0)

    def test_speedup_compresses_wall_time(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock, speedup=50.0)
        m.submit("j1", total_cpu_seconds=100.0)
        clock[0] = 3.0  # 150 cpu-seconds of progress at 50x
        assert m.status("j1")["state"] == STATE_COMPLETED

    def test_resubmit_is_idempotent(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock)
        first = m.submit("j1", total_cpu_seconds=100.0)
        again = m.submit("j1", total_cpu_seconds=999.0)
        assert again["resubmitted"] is True
        assert again["record"]["total_cpu_seconds"] == 100.0
        assert again["record"]["version"] == first["record"]["version"]

    def test_cancel_idempotent_and_unknown_raises(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock)
        m.submit("j1", total_cpu_seconds=100.0)
        out = m.cancel("j1")
        assert out["record"]["state"] == STATE_CANCELLED
        assert m.cancel("j1")["record"]["state"] == STATE_CANCELLED
        with pytest.raises(UnknownJob):
            m.cancel("ghost")
        with pytest.raises(UnknownJob):
            m.status("ghost")

    def test_stats_counts_states(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock)
        m.submit("j1", total_cpu_seconds=100.0)
        m.submit("j2", total_cpu_seconds=100.0, cpu=1.0)  # no capacity left
        stats = m.stats()
        assert stats["jobs"] == 2
        assert stats["states"][STATE_PLACED] == 1
        assert stats["states"][STATE_PENDING] == 1
        assert stats["durable"] is False


class TestRefusalAndRetry:
    def test_no_machines_structured_refusal(self, clock):
        m = mk_manager(FakeService({}), clock)
        out = m.submit("j1", total_cpu_seconds=100.0)
        assert out["record"]["state"] == STATE_PENDING
        assert out["refusal"]["reason"] == "no_feasible_machine"

    def test_pending_retries_when_pool_grows(self, clock):
        svc = FakeService({})
        m = mk_manager(svc, clock)
        m.submit("j1", total_cpu_seconds=100.0)
        svc.trs["late"] = 0.8  # a machine registers after the refusal
        clock[0] = 10.0
        m.refresh()  # the retry places; running from the next tick on
        clock[0] = 11.0
        status = m.status("j1")
        assert status["state"] == STATE_RUNNING
        assert status["machine"] == "late"
        assert status["attempts"][-1]["reason"] == "retry"

    def test_capacity_is_respected_and_frees_on_completion(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock)
        m.submit("j1", total_cpu_seconds=50.0, cpu=0.7)
        out = m.submit("j2", total_cpu_seconds=50.0, cpu=0.7)
        assert out["record"]["state"] == STATE_PENDING  # 1.4 > 1.0 capacity
        clock[0] = 60.0  # j1 finishes, freeing the machine
        m.refresh()
        clock[0] = 61.0
        assert m.status("j2")["state"] == STATE_RUNNING


class TestReplace:
    def test_restart_before_first_checkpoint(self, clock):
        m = mk_manager(
            FakeService({"a": 0.9, "b": 0.9}), clock, checkpoint_interval_s=600.0
        )
        machine = m.submit("j1", total_cpu_seconds=1000.0)["record"]["machine"]
        clock[0] = 50.0  # progress 50, checkpointed 0
        out = m.replace([machine], reason="node_down")
        assert out["replaced"] == 1
        assert out["actions"] == {"restart": 1}
        status = m.status("j1")
        assert status["machine"] != machine
        assert status["wasted_cpu_seconds"] == pytest.approx(50.0)
        assert status["carried_seconds"] == 0.0

    def test_resume_from_checkpoint_when_cheaper(self, clock):
        m = mk_manager(
            FakeService({"a": 0.9, "b": 0.9}), clock, checkpoint_interval_s=100.0
        )
        machine = m.submit("j1", total_cpu_seconds=1000.0)["record"]["machine"]
        clock[0] = 250.0  # progress 250, checkpointed 200
        out = m.replace([machine], reason="node_down")
        assert out["actions"] == {"resume": 1}
        status = m.status("j1")
        assert status["carried_seconds"] == pytest.approx(200.0)
        assert status["wasted_cpu_seconds"] == pytest.approx(50.0)

    def test_drain_migrates_full_progress(self, clock):
        m = mk_manager(
            FakeService({"a": 0.9, "b": 0.9}), clock, checkpoint_interval_s=600.0
        )
        machine = m.submit("j1", total_cpu_seconds=1000.0)["record"]["machine"]
        clock[0] = 250.0  # nothing checkpointed, but the host is reachable
        out = m.replace([machine], reason="drain")
        assert out["actions"] == {"migrate": 1}
        status = m.status("j1")
        assert status["carried_seconds"] == pytest.approx(250.0)
        assert status["wasted_cpu_seconds"] == 0.0

    def test_down_machines_excluded_until_restore(self, clock):
        svc = FakeService({"a": 0.9, "b": 0.3})
        m = mk_manager(svc, clock)
        m.replace(["a"], reason="node_down")
        assert m.submit("j1", total_cpu_seconds=100.0)["record"]["machine"] == "b"
        m.replace(["a"], restore=True)
        assert m.stats()["down_machines"] == []
        assert m.submit("j2", total_cpu_seconds=100.0)["record"]["machine"] == "a"

    def test_all_machines_down_parks_job_pending(self, clock):
        m = mk_manager(FakeService({"only": 0.9}), clock)
        m.submit("j1", total_cpu_seconds=100.0)
        clock[0] = 10.0
        out = m.replace(["only"], reason="node_down")
        assert out["replaced"] == 1
        record = m.status("j1")
        assert record["state"] == STATE_PENDING
        # the machine comes back: the retry path picks the job up again
        m.replace(["only"], restore=True)
        clock[0] = 20.0
        m.refresh()
        clock[0] = 21.0
        assert m.status("j1")["state"] == STATE_RUNNING


class TestAdopt:
    def test_higher_version_wins(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock)
        record = m.submit("j1", total_cpu_seconds=100.0)["record"]
        newer = dict(record, version=record["version"] + 3, note="replica")
        assert m.adopt(newer)["adopted"] is True
        assert m.status("j1")["note"] == "replica"

    def test_stale_version_rejected(self, clock):
        m = mk_manager(FakeService({"m0": 0.9}), clock)
        record = m.submit("j1", total_cpu_seconds=100.0)["record"]
        stale = dict(record, version=0, note="old")
        out = m.adopt(stale)
        assert out["adopted"] is False
        assert out["version"] == record["version"]
        assert m.status("j1")["note"] != "old"


class TestDurability:
    def test_restart_recovers_every_job(self, clock, tmp_path):
        svc = FakeService({"a": 0.9, "b": 0.8})
        m = mk_manager(svc, clock, directory=tmp_path / "sched")
        m.submit("j1", total_cpu_seconds=100.0, cpu=0.4)
        m.submit("j2", total_cpu_seconds=500.0, cpu=0.4)
        m.submit("j3", total_cpu_seconds=100.0, cpu=2.0)  # refused: pending
        m.close()

        clock[0] = 150.0
        m2 = mk_manager(svc, clock, directory=tmp_path / "sched")
        assert m2.recovered_jobs == 3
        # nothing lost, and the clock-driven states re-derive correctly:
        # j1 finished while the scheduler was down
        assert m2.status("j1")["state"] == STATE_COMPLETED
        assert m2.status("j2")["state"] == STATE_RUNNING
        assert m2.status("j2")["progress_seconds"] == pytest.approx(150.0)
        assert m2.status("j3")["state"] == STATE_PENDING
        m2.close()

    def test_recovery_keeps_highest_version(self, clock, tmp_path):
        svc = FakeService({"a": 0.9})
        m = mk_manager(svc, clock, directory=tmp_path / "sched")
        m.submit("j1", total_cpu_seconds=100.0)
        m.cancel("j1")  # second WAL snapshot, higher version
        m.close()
        m2 = mk_manager(svc, clock, directory=tmp_path / "sched")
        assert m2.recovered_jobs == 1
        assert m2.status("j1")["state"] == STATE_CANCELLED
        m2.close()

    def test_garbled_wal_record_skipped(self, clock, tmp_path):
        svc = FakeService({"a": 0.9})
        directory = tmp_path / "sched"
        m = mk_manager(svc, clock, directory=directory)
        m.submit("j1", total_cpu_seconds=100.0)
        m.close()
        # corrupt the tail: recovery must keep the intact records
        wal = sorted(directory.glob("sched-*.wal"))[-1]
        with wal.open("ab") as f:
            f.write(b"\x00garbage")
        m2 = mk_manager(svc, clock, directory=directory)
        assert m2.recovered_jobs == 1
        m2.close()
