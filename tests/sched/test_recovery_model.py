"""The shared recovery cost model (repro.core.recovery).

``failure_rate_from_tr`` and ``young_interval`` are covered through the
sim re-export in tests/sim/test_checkpoint_extensions.py; here we pin
the scheduler-facing half: expected-completion math and the
resume / migrate / restart choice.
"""

import math

import pytest

from repro.core.recovery import (
    ACTION_MIGRATE,
    ACTION_RESTART,
    ACTION_RESUME,
    RecoveryCosts,
    choose_recovery_action,
    expected_completion_seconds,
)


class TestExpectedCompletion:
    def test_reliable_host_costs_exactly_the_work(self):
        assert expected_completion_seconds(500.0, 0.0) == 500.0

    def test_zero_work_is_free(self):
        assert expected_completion_seconds(0.0, 1.0) == 0.0

    def test_dead_host_costs_infinity(self):
        assert math.isinf(expected_completion_seconds(500.0, math.inf))

    def test_monotone_in_failure_rate(self):
        costs = [expected_completion_seconds(1000.0, r) for r in (0.0, 1e-4, 1e-3)]
        assert costs[0] < costs[1] < costs[2]

    def test_huge_exponent_stays_finite(self):
        assert math.isfinite(expected_completion_seconds(1e6, 1.0))

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            expected_completion_seconds(-1.0, 0.1)
        with pytest.raises(ValueError):
            expected_completion_seconds(10.0, -0.1)


class TestChooseRecoveryAction:
    def test_no_checkpoint_not_migratable_restarts(self):
        decision = choose_recovery_action(
            total_work_seconds=1000.0,
            progress_seconds=300.0,
            checkpointed_seconds=0.0,
            new_host_tr=0.9,
            window_seconds=700.0,
        )
        assert decision.action == ACTION_RESTART
        assert math.isinf(decision.costs[ACTION_RESUME])
        assert math.isinf(decision.costs[ACTION_MIGRATE])

    def test_checkpoint_beats_restart(self):
        decision = choose_recovery_action(
            total_work_seconds=1000.0,
            progress_seconds=300.0,
            checkpointed_seconds=250.0,
            new_host_tr=0.9,
            window_seconds=750.0,
        )
        assert decision.action == ACTION_RESUME
        assert decision.costs[ACTION_RESUME] < decision.costs[ACTION_RESTART]

    def test_migrate_retains_everything_when_reachable(self):
        # nothing checkpointed, old host reachable: the 300s of live
        # progress outweighs migrate's higher fixed overhead
        decision = choose_recovery_action(
            total_work_seconds=1000.0,
            progress_seconds=300.0,
            checkpointed_seconds=0.0,
            new_host_tr=0.9,
            window_seconds=700.0,
            migratable=True,
        )
        assert decision.action == ACTION_MIGRATE

    def test_worthless_checkpoint_restarts(self):
        # resume overhead exceeds the progress a near-empty checkpoint
        # saves, so restart wins on expected cost
        decision = choose_recovery_action(
            total_work_seconds=1000.0,
            progress_seconds=10.0,
            checkpointed_seconds=5.0,
            new_host_tr=1.0,
            window_seconds=1000.0,
            costs=RecoveryCosts(resume_overhead_s=30.0, restart_overhead_s=5.0),
        )
        assert decision.action == ACTION_RESTART

    def test_costs_dict_covers_every_action(self):
        decision = choose_recovery_action(
            total_work_seconds=100.0,
            progress_seconds=50.0,
            checkpointed_seconds=50.0,
            new_host_tr=0.8,
            window_seconds=50.0,
            migratable=True,
        )
        assert set(decision.costs) == {ACTION_RESUME, ACTION_MIGRATE, ACTION_RESTART}
        assert decision.expected_seconds == decision.costs[decision.action]

    def test_unreliable_new_host_inflates_all_costs(self):
        kw = dict(
            total_work_seconds=1000.0,
            progress_seconds=500.0,
            checkpointed_seconds=400.0,
            window_seconds=600.0,
        )
        good = choose_recovery_action(new_host_tr=0.95, **kw)
        bad = choose_recovery_action(new_host_tr=0.30, **kw)
        assert bad.expected_seconds > good.expected_seconds

    def test_invalid_progress_ordering_rejected(self):
        with pytest.raises(ValueError, match="checkpointed"):
            choose_recovery_action(
                total_work_seconds=100.0,
                progress_seconds=50.0,
                checkpointed_seconds=80.0,  # > progress
                new_host_tr=0.9,
                window_seconds=100.0,
            )
