"""The v8 adapt ops over the wire, and the adapt-off byte-identity.

Covers version gating (a v7 request may not name an adapt op), the
``AdaptDisabled`` refusal on nodes serving without ``--adapt``, and the
cache-coherence contract of a promotion: after ``adapt_promote``, both
single ``predict`` answers and batched ``fleet_scan`` rows served over
the wire must come from the promoted hyperparameters — the per-machine
incremental cache and the fleet kernel rows may not serve stale values.
"""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.adapt import AdaptConfig, AdaptController
from repro.adapt.planner import CandidateConfig
from repro.audit import AuditConfig, PredictionAudit
from repro.core.online import IncrementalPredictor
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace

from tests.serve.test_server import ServerThread, idle_trace

PERIOD = 300.0


def shifted_trace(mid="lab-0", n_days=14, shift_day=8):
    """A daily 9am outage that stops at ``shift_day``: a full-history
    model and a short-window model genuinely disagree about 8.5am."""
    n_per_day = int(SECONDS_PER_DAY / PERIOD)
    load = np.full(n_days * n_per_day, 0.05)
    i0 = int(9.0 * 3600 / PERIOD)
    for day in range(0, shift_day):
        load[day * n_per_day + i0 : day * n_per_day + i0 + 24] = 0.95
    return MachineTrace(mid, 0.0, PERIOD, load, np.full(load.shape, 400.0))


class AdaptServerThread(ServerThread):
    """A ServeServer with audit + adapt on its own event-loop thread."""

    def __init__(self, service, audit, adapt, config=None):
        self.loop = asyncio.new_event_loop()
        self.server = ServeServer(
            service, port=0, config=config, audit=audit, adapt=adapt,
        )
        self.audit = audit
        self.adapt = adapt
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)


def adapt_server(trace=None):
    service = AvailabilityService()
    service.register(trace if trace is not None else idle_trace("lab-0"))
    audit = PredictionAudit(
        AuditConfig(node_id="n0"),
        classifier=service.classifier,
        step_multiple=service.config.step_multiple,
    )
    adapt = AdaptController(service, audit, AdaptConfig(min_eval=2))
    return AdaptServerThread(
        service, audit, adapt, DispatchConfig(max_workers=2, queue_depth=32)
    )


def raw_request(port, payload):
    with socket.create_connection(("127.0.0.1", port), timeout=5) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        line = sock.makefile("rb").readline()
    return json.loads(line)


class TestVersionGating:
    def test_v7_request_may_not_name_an_adapt_op(self):
        srv = adapt_server()
        try:
            resp = raw_request(srv.port, {
                "v": 7, "op": "adapt_status", "id": "x", "params": {},
            })
        finally:
            srv.stop()
        assert resp["status"] == "error"
        assert "requires protocol v8" in resp["error"]["message"]
        assert "adapt_status" in resp["error"]["message"]

    def test_v8_request_reaches_the_handler(self):
        srv = adapt_server()
        try:
            resp = raw_request(srv.port, {
                "v": 8, "op": "adapt_status", "id": "x", "params": {},
            })
        finally:
            srv.stop()
        assert resp["status"] == "ok"
        assert resp["result"]["enabled"] is True


class TestAdaptDisabled:
    """A node serving without --adapt: v<=7 behaviour is untouched."""

    @pytest.fixture()
    def plain_server(self):
        service = AvailabilityService()
        service.register(idle_trace("lab-0"))
        srv = ServerThread(service, DispatchConfig(max_workers=1, queue_depth=8))
        yield srv
        srv.stop()

    def test_health_has_no_adapt_key(self, plain_server):
        with ServeClient(port=plain_server.port) as client:
            health = client.health()
        assert "adapt" not in health

    def test_predict_result_has_no_source_key(self, plain_server):
        with ServeClient(port=plain_server.port) as client:
            resp = client.request("predict", {
                "machine": "lab-0", "start_hour": 1.0, "hours": 2.0,
                "day_type": "weekday",
            })
        assert resp.status == "ok"
        assert set(resp.result) == {"machine", "tr"}

    def test_adapt_status_reports_disabled(self, plain_server):
        with ServeClient(port=plain_server.port) as client:
            assert client.adapt_status() == {"enabled": False}

    def test_adapt_writes_are_refused_with_a_hint(self, plain_server):
        with ServeClient(port=plain_server.port) as client:
            with pytest.raises(ServeRequestError, match="without --adapt"):
                client.adapt_retune("lab-0")
            with pytest.raises(ServeRequestError, match="without --adapt"):
                client.adapt_promote("lab-0", force=True)


class TestAdaptOps:
    def test_health_and_status_report_the_tier(self):
        srv = adapt_server()
        try:
            with ServeClient(port=srv.port) as client:
                health = client.health()
                status = client.adapt_status()
                scoped = client.adapt_status(machine="lab-0")
        finally:
            srv.stop()
        assert health["adapt"] is True
        assert status["enabled"] is True
        assert status["machines"] == {}
        assert scoped["machines"]["lab-0"] == {
            "state": "stable", "override": False,
        }

    def test_writes_require_a_registered_machine(self):
        srv = adapt_server()
        try:
            with ServeClient(port=srv.port) as client:
                with pytest.raises(ServeRequestError, match="not registered"):
                    client.adapt_retune("ghost")
                with pytest.raises(ServeRequestError, match="not registered"):
                    client.adapt_promote("ghost")
        finally:
            srv.stop()

    def test_retune_over_the_wire_returns_the_plan(self):
        srv = adapt_server(shifted_trace())
        try:
            with ServeClient(port=srv.port) as client:
                summary = client.adapt_retune("lab-0", trigger="operator")
        finally:
            srv.stop()
        assert summary["machine"] == "lab-0"
        assert summary["trigger"] == "operator"
        assert summary["champion"] is not None
        assert isinstance(summary["trial_opened"], bool)

    def test_promote_without_a_trial_is_refused(self):
        srv = adapt_server()
        try:
            with ServeClient(port=srv.port) as client:
                out = client.adapt_promote("lab-0")
        finally:
            srv.stop()
        assert out["promoted"] is False
        assert out["reason"] == "no trial in flight"


class TestPromotionCacheCoherence:
    """After adapt_promote, every serving path answers from the new model."""

    WINDOW = (8.5, 2.0)  # straddles the 9am outage the old regime had

    def test_scan_and_predict_reflect_promoted_hyperparameters(self):
        srv = adapt_server(shifted_trace())
        challenger = CandidateConfig(history_days=3)
        try:
            with ServeClient(port=srv.port) as client:
                before_tr = client.predict("lab-0", *self.WINDOW)
                before_scan = client.fleet_scan(*self.WINDOW)

                # Open a shadow trial directly (the backtest gate is
                # exercised elsewhere) and promote it over the wire.
                from tests.adapt.test_controller import open_trial

                open_trial(srv.adapt, "lab-0", challenger)
                out = client.adapt_promote("lab-0", force=True)
                assert out["promoted"] is True
                assert out["challenger"]["history_days"] == 3

                after_tr = client.predict("lab-0", *self.WINDOW)
                after_scan = client.fleet_scan(*self.WINDOW)
                status = client.adapt_status()

            service = srv.server.dispatcher.service
            expected = IncrementalPredictor(
                challenger.classifier(service.classifier),
                challenger.estimator_config(service.config),
            ).predict(
                service._history("lab-0"),
                ClockWindow.from_hours(*self.WINDOW),
                DayType.WEEKDAY,
            )
        finally:
            srv.stop()

        # The old model predicts the (gone) 9am outage; the promoted
        # 3-day window knows the machine recovered.
        assert after_tr > before_tr
        assert after_tr == pytest.approx(expected, abs=1e-12)
        # The fleet kernel row was invalidated too, not served stale.
        assert before_scan["machines"][0]["tr"] == pytest.approx(
            before_tr, abs=1e-9
        )
        assert after_scan["machines"][0]["tr"] == pytest.approx(
            after_tr, abs=1e-9
        )
        assert status["overrides"] == ["lab-0"]
