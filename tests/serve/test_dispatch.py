"""Deterministic dispatcher tests: coalescing, shedding, deadlines, drain.

A gated stub service lets the tests hold a worker mid-computation, so
queue states (in flight, queued, full) are reached deterministically
instead of by timing races.
"""

import threading

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import SECONDS_PER_DAY
from repro.obs.metrics import scoped_registry
from repro.serve.dispatch import DispatchConfig, Dispatcher
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    STATUS_CLOSING,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_SHED,
    Request,
)
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


class GatedService:
    """Duck-typed service whose predict blocks until the gate opens."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def predict(self, machine, window, dtype, init_state=None):
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=10.0), "test gate never opened"
        return 0.5

    def __len__(self):
        return 1


def predict_req(rid, machine="m0", start_hour=9.0, hours=2.0, deadline_ms=None):
    return Request(
        op="predict",
        params={"machine": machine, "start_hour": start_hour, "hours": hours},
        id=rid,
        deadline_ms=deadline_ms,
    )


@pytest.fixture()
def gated():
    svc = GatedService()
    yield svc
    svc.gate.set()  # never leave a worker thread blocked


class TestCoalescing:
    def test_identical_inflight_queries_compute_once(self, gated):
        with scoped_registry() as reg:
            d = Dispatcher(gated, DispatchConfig(max_workers=1, queue_depth=16))
            primary = d.submit(predict_req("a"))
            follower1 = d.submit(predict_req("b"))
            follower2 = d.submit(predict_req("c"))
            distinct = d.submit(predict_req("d", start_hour=14.0))
            gated.gate.set()
            responses = [f.result(timeout=5) for f in (primary, follower1, follower2, distinct)]
            d.close()
        assert all(r.ok for r in responses)
        assert [r.coalesced for r in responses] == [False, True, True, False]
        assert [r.id for r in responses] == ["a", "b", "c", "d"]
        assert all(r.result == {"machine": "m0", "tr": 0.5} for r in responses[:3])
        # only the primary and the distinct window computed
        assert gated.calls == 2
        assert reg.get("serve_coalesced_requests_total").value == 2.0

    def test_coalesced_requests_do_not_consume_queue_depth(self, gated):
        d = Dispatcher(gated, DispatchConfig(max_workers=1, queue_depth=1))
        primary = d.submit(predict_req("a"))
        followers = [d.submit(predict_req(f"f{i}")) for i in range(5)]
        gated.gate.set()
        assert primary.result(timeout=5).ok
        assert all(f.result(timeout=5).ok for f in followers)
        d.close()

    def test_different_day_type_not_coalesced(self, gated):
        d = Dispatcher(gated, DispatchConfig(max_workers=2, queue_depth=16))
        r1 = Request(op="predict", id="wd",
                     params={"machine": "m0", "start_hour": 9, "hours": 2,
                             "day_type": "weekday"})
        r2 = Request(op="predict", id="we",
                     params={"machine": "m0", "start_hour": 9, "hours": 2,
                             "day_type": "weekend"})
        f1, f2 = d.submit(r1), d.submit(r2)
        gated.gate.set()
        assert not f1.result(timeout=5).coalesced
        assert not f2.result(timeout=5).coalesced
        assert gated.calls == 2
        d.close()


class TestAdmissionControl:
    def test_sheds_when_queue_full_and_recovers(self, gated):
        with scoped_registry() as reg:
            d = Dispatcher(gated, DispatchConfig(max_workers=1, queue_depth=2))
            running = d.submit(predict_req("run", start_hour=6.0))
            queued = d.submit(predict_req("q", start_hour=7.0))
            shed = d.submit(predict_req("shed", start_hour=8.0))
            # the shed response arrives immediately, without the gate
            resp = shed.result(timeout=5)
            assert resp.status == STATUS_SHED
            assert resp.error["type"] == "Overload"
            assert reg.get("serve_shed_total").value == 1.0
            # health still answers under overload
            health = d.submit(Request(op="health", id="h")).result(timeout=5)
            assert health.ok and health.result["queue_depth"] == 2
            gated.gate.set()
            assert running.result(timeout=5).ok
            assert queued.result(timeout=5).ok
            # capacity freed: new work admitted again
            ok = d.submit(predict_req("again", start_hour=9.5)).result(timeout=5)
            assert ok.ok
            d.close()
            assert reg.get("serve_queue_depth").value == 0.0

    def test_requests_total_statuses(self, gated):
        with scoped_registry() as reg:
            d = Dispatcher(gated, DispatchConfig(max_workers=1, queue_depth=1))
            a = d.submit(predict_req("a", start_hour=6.0))
            b = d.submit(predict_req("b", start_hour=7.0))
            gated.gate.set()
            a.result(timeout=5), b.result(timeout=5)
            d.close()
            totals = reg.get("serve_requests_total")
            assert totals.labels(op="predict", status="ok").value == 1.0
            assert totals.labels(op="predict", status=STATUS_SHED).value == 1.0


class TestDeadlines:
    def test_expired_request_is_not_computed(self, gated):
        d = Dispatcher(gated, DispatchConfig(max_workers=1, queue_depth=16))
        blocker = d.submit(predict_req("blocker", start_hour=6.0))
        doomed = d.submit(predict_req("doomed", start_hour=7.0, deadline_ms=1.0))
        import time

        time.sleep(0.05)  # let the deadline pass while 'doomed' is queued
        gated.gate.set()
        assert blocker.result(timeout=5).ok
        resp = doomed.result(timeout=5)
        assert resp.status == STATUS_DEADLINE
        assert resp.error["type"] == "DeadlineExceeded"
        assert gated.calls == 1  # the doomed request never touched the service
        d.close()

    def test_default_deadline_from_config(self, gated):
        d = Dispatcher(
            gated,
            DispatchConfig(max_workers=1, queue_depth=16, default_deadline_ms=1.0),
        )
        blocker = d.submit(predict_req("blocker", start_hour=6.0))
        doomed = d.submit(predict_req("doomed", start_hour=7.0))
        import time

        time.sleep(0.05)
        gated.gate.set()
        assert blocker.result(timeout=5).ok
        assert doomed.result(timeout=5).status == STATUS_DEADLINE
        d.close()


class TestShutdown:
    def test_drain_refuses_new_work_and_finishes_inflight(self, gated):
        d = Dispatcher(gated, DispatchConfig(max_workers=1, queue_depth=16))
        inflight = d.submit(predict_req("inflight"))
        drained: list[bool] = []
        closer = threading.Thread(target=lambda: drained.append(d.close(drain=True)))
        closer.start()
        while not d.closing:  # close() has marked the dispatcher closing
            pass
        refused = d.submit(predict_req("late", start_hour=15.0)).result(timeout=5)
        assert refused.status == STATUS_CLOSING
        gated.gate.set()
        closer.join(timeout=10)
        assert drained == [True]
        assert inflight.result(timeout=5).ok

    def test_drain_timeout_reports_failure(self, gated):
        d = Dispatcher(
            gated,
            DispatchConfig(max_workers=1, queue_depth=16, drain_timeout_s=0.05),
        )
        d.submit(predict_req("stuck"))
        assert d.close(drain=True) is False


class TestOpsAgainstRealService:
    @pytest.fixture()
    def service(self):
        def idle_trace(mid, fail_hour=None, n_days=14, period=60.0):
            n_per_day = int(SECONDS_PER_DAY / period)
            load = np.full(n_days * n_per_day, 0.05)
            if fail_hour is not None:
                i0 = int(fail_hour * 3600 / period)
                for day in range(n_days):
                    load[day * n_per_day + i0 : day * n_per_day + i0 + 15] = 0.95
            return MachineTrace(mid, 0.0, period, load, np.full(load.shape, 400.0))

        svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
        svc.register(idle_trace("safe"))
        svc.register(idle_trace("risky", fail_hour=9.0))
        return svc

    @pytest.fixture()
    def dispatcher(self, service):
        d = Dispatcher(service, DispatchConfig(max_workers=2, queue_depth=16))
        yield d
        d.close()

    def run(self, dispatcher, op, **params):
        return dispatcher.submit(Request(op=op, params=params, id="t")).result(timeout=10)

    def test_predict_matches_service(self, dispatcher, service):
        from repro.core.windows import ClockWindow, DayType

        resp = self.run(
            dispatcher, "predict", machine="risky", start_hour=8, hours=3
        )
        assert resp.ok
        direct = service.predict("risky", ClockWindow.from_hours(8, 3), DayType.WEEKDAY)
        assert resp.result["tr"] == pytest.approx(direct, abs=1e-12)

    def test_rank_and_select(self, dispatcher):
        rank = self.run(dispatcher, "rank", start_hour=8, hours=3)
        assert [r["machine"] for r in rank.result["ranking"]] == ["safe", "risky"]
        select = self.run(dispatcher, "select", start_hour=8, hours=3, k=2)
        assert select.result["machines"][0] == "safe"
        assert 0.0 <= select.result["survival"] <= 1.0

    def test_horizon(self, dispatcher):
        resp = self.run(
            dispatcher, "horizon", machine="safe", start_hour=8, hours=5,
            tr_threshold=0.9,
        )
        assert resp.result["horizon_seconds"] == pytest.approx(5 * 3600.0)

    def test_register_roundtrip(self, dispatcher):
        load = [0.05] * (14 * 24 * 60)
        resp = self.run(
            dispatcher, "register", machine="fresh", sample_period=60.0, load=load
        )
        assert resp.ok and resp.result == {
            "machine": "fresh", "n_samples": len(load), "replaced": False,
        }
        again = self.run(
            dispatcher, "register", machine="fresh", sample_period=60.0, load=load
        )
        assert again.result["replaced"] is True
        pred = self.run(dispatcher, "predict", machine="fresh", start_hour=9, hours=1)
        assert pred.result["tr"] == pytest.approx(1.0)

    def test_unknown_machine_is_error_response(self, dispatcher):
        resp = self.run(dispatcher, "predict", machine="ghost", start_hour=8, hours=1)
        assert resp.status == STATUS_ERROR
        assert resp.error["type"] == "KeyError"

    def test_missing_param_is_protocol_error(self, dispatcher):
        resp = self.run(dispatcher, "predict", machine="safe")
        assert resp.status == STATUS_ERROR
        assert resp.error["type"] == "ProtocolError"
        assert "start_hour" in resp.error["message"]

    def test_bad_day_type_is_protocol_error(self, dispatcher):
        resp = self.run(
            dispatcher, "predict", machine="safe", start_hour=8, hours=1,
            day_type="holiday",
        )
        assert resp.status == STATUS_ERROR
        assert "day_type" in resp.error["message"]

    def test_health(self, dispatcher):
        resp = self.run(dispatcher, "health")
        assert resp.ok
        assert resp.result["status"] == "ok"
        assert resp.result["machines"] == 2
        assert resp.result["protocol_version"] == PROTOCOL_VERSION
