"""The v2 ``extend`` op: streaming ingest over the wire, version gating,
and the clients' bounded backpressure retry."""

import asyncio
import json
import socket
import threading

import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import ClockWindow, DayType
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Request,
    min_version,
)
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace

from tests.serve.test_server import ServerThread, idle_trace


def tail_chunk(trace, n=40):
    """A continuation chunk starting where ``trace`` ends."""
    return MachineTrace(
        trace.machine_id, trace.end_time, trace.sample_period,
        trace.load[:n], trace.free_mem_mb[:n], trace.up[:n],
    )


@pytest.fixture()
def server():
    svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    svc.register(idle_trace("m0"))
    srv = ServerThread(svc, DispatchConfig(max_workers=2, queue_depth=32))
    yield srv
    srv.stop()


class TestExtendOp:
    def test_extend_grows_history(self, server):
        with ServeClient(port=server.port) as client:
            before = client.health()["machines"]
            base = idle_trace("m0")
            result = client.extend(tail_chunk(base))
        assert result["machine"] == "m0"
        assert result["appended"] == 40
        assert result["created"] is False
        assert result["n_samples"] == base.n_samples + 40
        with ServeClient(port=server.port) as client:
            assert client.health()["machines"] == before

    def test_extend_unknown_machine_creates_it(self, server):
        chunk = idle_trace("fresh", n_days=2)
        with ServeClient(port=server.port) as client:
            result = client.extend(chunk)
            assert result["created"] is True
            assert result["n_samples"] == chunk.n_samples
            assert client.health()["machines"] == 2

    def test_extend_is_idempotent_on_retry(self, server):
        base = idle_trace("m0")
        chunk = tail_chunk(base)
        with ServeClient(port=server.port) as client:
            first = client.extend(chunk)
            retry = client.extend(chunk)  # same chunk delivered twice
        assert retry["appended"] == 0
        assert retry["n_samples"] == first["n_samples"]

    def test_extend_gap_is_an_error(self, server):
        base = idle_trace("m0")
        gap = MachineTrace(
            "m0", base.end_time + 600 * base.sample_period, base.sample_period,
            base.load[:10], base.free_mem_mb[:10], base.up[:10],
        )
        with ServeClient(port=server.port) as client:
            resp = client.request("extend", _params_of(gap))
        assert resp.status == "error"
        assert "lost" in resp.error["message"]

    def test_extend_matches_direct_service(self):
        base = idle_trace("twin", fail_hour=9.0)
        chunk = tail_chunk(base, n=200)

        served = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
        served.register(base)
        srv = ServerThread(served, DispatchConfig(max_workers=1, queue_depth=8))
        try:
            with ServeClient(port=srv.port) as client:
                client.extend(chunk)
                tr_wire = client.predict("twin", 8, 3)
        finally:
            srv.stop()

        direct = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
        direct.register(base)
        direct.append_samples(chunk)
        tr_direct = direct.predict(
            "twin", ClockWindow.from_hours(8, 3), DayType.WEEKDAY
        )
        assert tr_wire == tr_direct


def _params_of(trace):
    from repro.serve.client import _trace_params

    return _trace_params(trace)


class TestVersionGating:
    def _raw_roundtrip(self, port, obj):
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            fh = sock.makefile("rwb")
            fh.write(json.dumps(obj).encode() + b"\n")
            fh.flush()
            return json.loads(fh.readline())

    def test_clients_send_each_op_at_min_version(self):
        assert min_version("predict") == 1
        assert min_version("extend") == 2
        assert min_version("quality") == 3
        assert min_version("submit") == 5
        assert min_version("tail") == 6
        assert min_version("predict_batch") == 7
        assert min_version("fleet_scan") == 7
        assert min_version("adapt_status") == 8
        assert min_version("adapt_retune") == 8
        assert min_version("adapt_promote") == 8
        assert PROTOCOL_VERSION == 8  # v8 adds the adapt ops
        assert Request(op="health").to_wire()["v"] == PROTOCOL_VERSION  # default
        wire = json.loads(
            Request(op="predict", version=min_version("predict")).encode()
        )
        assert wire["v"] == 1

    def test_v1_request_cannot_use_extend(self, server):
        resp = self._raw_roundtrip(
            server.port, {"v": 1, "id": "x", "op": "extend", "params": {}}
        )
        assert resp["status"] == "error"
        assert resp["error"]["type"] == "ProtocolError"
        assert "requires protocol v2" in resp["error"]["message"]

    def test_unknown_version_is_structured_error(self, server):
        resp = self._raw_roundtrip(
            server.port, {"v": 99, "id": "x", "op": "predict", "params": {}}
        )
        assert resp["status"] == "error"
        assert resp["error"]["type"] == "ProtocolError"
        assert "unsupported protocol version" in resp["error"]["message"]

    def test_v1_ops_still_served(self, server):
        resp = self._raw_roundtrip(server.port, {"v": 1, "id": "h", "op": "health"})
        assert resp["status"] == "ok"


class _SheddingServer:
    """A scripted server: answers ``shed`` N times, then real responses."""

    def __init__(self, shed_first=2):
        self.shed_first = shed_first
        self.requests_seen = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._sock.accept()
        with conn:
            fh = conn.makefile("rwb")
            while True:
                line = fh.readline()
                if not line:
                    return
                req = json.loads(line)
                self.requests_seen += 1
                if self.requests_seen <= self.shed_first:
                    resp = {"v": 2, "id": req["id"], "status": "shed",
                            "error": {"type": "Overload", "message": "queue full"}}
                else:
                    resp = {"v": 2, "id": req["id"], "status": "ok",
                            "result": {"status": "ok", "machines": 0}}
                fh.write(json.dumps(resp).encode() + b"\n")
                fh.flush()

    def close(self):
        self._sock.close()


class TestBackpressureRetry:
    def test_sync_retry_survives_transient_shed(self):
        srv = _SheddingServer(shed_first=2)
        try:
            with ServeClient(port=srv.port, retries=3, retry_backoff_s=0.001) as c:
                resp = c.request("health")
            assert resp.status == "ok"
            assert srv.requests_seen == 3
        finally:
            srv.close()

    def test_sync_no_retries_fails_fast(self):
        srv = _SheddingServer(shed_first=1)
        try:
            with ServeClient(port=srv.port) as c:
                resp = c.request("health")
            assert resp.status == "shed"
            assert srv.requests_seen == 1
        finally:
            srv.close()

    def test_sync_retries_exhausted_returns_last_response(self):
        srv = _SheddingServer(shed_first=10)
        try:
            with ServeClient(port=srv.port, retries=2, retry_backoff_s=0.001) as c:
                resp = c.request("health")
            assert resp.status == "shed"
            assert srv.requests_seen == 3  # initial + 2 retries
        finally:
            srv.close()

    def test_negative_retries_rejected(self):
        # Validation fires before any connection attempt.
        with pytest.raises(ValueError):
            ServeClient(port=1, retries=-1)

    def test_async_retry_survives_transient_shed(self):
        srv = _SheddingServer(shed_first=2)

        async def go():
            client = await AsyncServeClient.connect(
                port=srv.port, retries=3, retry_backoff_s=0.001
            )
            async with client:
                return await client.request("health")

        try:
            resp = asyncio.run(go())
            assert resp.status == "ok"
            assert srv.requests_seen == 3
        finally:
            srv.close()

    def test_real_server_extend_with_retries(self, server):
        # retries are a no-op against a healthy server.
        base = idle_trace("m0")
        with ServeClient(port=server.port, retries=2) as client:
            result = client.extend(tail_chunk(base))
        assert result["appended"] == 40
