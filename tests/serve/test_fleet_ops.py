"""The v7 fleet batch ops: ``predict_batch`` and ``fleet_scan``.

One wire call answers TR for many machines from one stacked kernel
solve; every answer must equal the scalar ``predict`` for the same
machine, and pre-v7 clients must be refused with a structured error.
"""

import json
import socket

import numpy as np
import pytest

from repro.core.windows import SECONDS_PER_DAY
from repro.serve.client import ServeClient, ServeRequestError
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace

from tests.serve.test_server import ServerThread


def lab_trace(mid, busy_hour=None, n_days=10, period=60.0):
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    if busy_hour is not None:
        i0 = int(busy_hour * 3600 / period)
        for d in range(n_days):
            load[d * n_per_day + i0 : d * n_per_day + i0 + 20] = 0.95
    return MachineTrace(mid, 0.0, period, load, np.full(load.shape, 400.0))


MACHINES = ("calm", "busy9", "busy12")


@pytest.fixture(scope="module")
def server():
    svc = AvailabilityService()
    svc.register(lab_trace("calm"))
    svc.register(lab_trace("busy9", busy_hour=9.0))
    svc.register(lab_trace("busy12", busy_hour=12.0))
    srv = ServerThread(svc)
    yield srv
    srv.stop()


class TestPredictBatch:
    def test_all_machines_match_scalar_predict(self, server):
        with ServeClient(port=server.port) as client:
            batch = client.predict_batch(8, 3)
            for mid in MACHINES:
                scalar = client.predict(mid, 8, 3)
                assert batch[mid] == pytest.approx(scalar, abs=1e-9)
        assert set(batch) == set(MACHINES)

    def test_subset_of_machines(self, server):
        with ServeClient(port=server.port) as client:
            batch = client.predict_batch(8, 3, machines=["calm", "busy9"])
        assert set(batch) == {"calm", "busy9"}

    def test_empty_machine_list_is_empty_answer(self, server):
        with ServeClient(port=server.port) as client:
            batch = client.predict_batch(8, 3, machines=[])
        assert batch == {}

    def test_unknown_machine_is_an_error(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="not registered"):
                client.predict_batch(8, 3, machines=["calm", "ghost"])

    def test_missing_ok_skips_unknown_machines(self, server):
        with ServeClient(port=server.port) as client:
            result = client._result(client.request(
                "predict_batch",
                {
                    "start_hour": 8, "hours": 3, "day_type": "weekday",
                    "machines": ["calm", "ghost"], "missing_ok": True,
                },
            ))
        assert [p["machine"] for p in result["predictions"]] == ["calm"]

    def test_machines_must_be_a_list(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="machines"):
                client._result(client.request(
                    "predict_batch",
                    {"start_hour": 8, "hours": 3, "day_type": "weekday",
                     "machines": "calm"},
                ))


class TestFleetScan:
    def test_scan_ranked_best_first_matches_rank(self, server):
        with ServeClient(port=server.port) as client:
            scan = client.fleet_scan(8, 3)
            ranking = client.rank(8, 3)
        assert scan["count"] == len(MACHINES)
        scanned = [(e["machine"], e["tr"]) for e in scan["machines"]]
        ranked = [(e["machine"], e["tr"]) for e in ranking]
        assert [m for m, _ in scanned] == [m for m, _ in ranked]
        for (_, a), (_, b) in zip(scanned, ranked):
            assert a == pytest.approx(b, abs=1e-9)

    def test_entries_carry_fail_split_and_init_state(self, server):
        with ServeClient(port=server.port) as client:
            scan = client.fleet_scan(8, 3)
        for entry in scan["machines"]:
            fail = entry["fail"]
            assert set(fail) == {"s3", "s4", "s5"}
            assert entry["tr"] == pytest.approx(
                max(0.0, 1.0 - sum(fail.values())), abs=1e-9
            )
            assert entry["init_state"] in ("S1", "S2", "S3", "S4", "S5")

    def test_horizons_hours_adds_subwindow_trs(self, server):
        with ServeClient(port=server.port) as client:
            scan = client.fleet_scan(8, 4, horizons_hours=[1.0, 2.0])
        assert scan["horizons_hours"] == [1.0, 2.0]
        for entry in scan["machines"]:
            assert len(entry["tr_at"]) == 2
            # Shorter windows can only be safer.
            assert entry["tr_at"][0] >= entry["tr_at"][1] >= entry["tr"] - 1e-9

    def test_bad_horizons_rejected(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="horizons_hours"):
                client.fleet_scan(8, 3, horizons_hours=[-1.0])

    def test_scan_subset(self, server):
        with ServeClient(port=server.port) as client:
            scan = client.fleet_scan(8, 3, machines=["busy9"])
        assert [e["machine"] for e in scan["machines"]] == ["busy9"]


class TestProtocolGating:
    def test_pre_v7_request_cannot_use_predict_batch(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            fh = sock.makefile("rwb")
            fh.write(json.dumps(
                {"v": 6, "id": "x", "op": "predict_batch",
                 "params": {"start_hour": 8, "hours": 3, "day_type": "weekday"}}
            ).encode() + b"\n")
            fh.flush()
            resp = json.loads(fh.readline())
        assert resp["status"] == "error"
        assert "requires protocol v7" in resp["error"]["message"]

    def test_pre_v7_request_cannot_use_fleet_scan(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            fh = sock.makefile("rwb")
            fh.write(json.dumps(
                {"v": 6, "id": "x", "op": "fleet_scan",
                 "params": {"start_hour": 8, "hours": 3, "day_type": "weekday"}}
            ).encode() + b"\n")
            fh.flush()
            resp = json.loads(fh.readline())
        assert resp["status"] == "error"
        assert "requires protocol v7" in resp["error"]["message"]

    def test_health_reports_current_protocol_version(self, server):
        from repro.serve.protocol import PROTOCOL_VERSION

        with ServeClient(port=server.port) as client:
            health = client.health()
        assert health["protocol_version"] == PROTOCOL_VERSION
