"""Wire-format tests for the serving protocol."""

import json

import pytest

from repro.serve.protocol import (
    OPS,
    OPS_BY_VERSION,
    PROTOCOL_VERSION,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    ProtocolError,
    Request,
    Response,
)


class TestRequest:
    def test_roundtrip(self):
        req = Request(
            op="predict",
            params={"machine": "lab-00", "start_hour": 9, "hours": 2},
            id="q1",
            deadline_ms=250.0,
        )
        back = Request.decode(req.encode())
        assert back == req

    def test_encode_is_one_json_line(self):
        raw = Request(op="health", id="h").encode()
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        obj = json.loads(raw)
        assert obj["v"] == PROTOCOL_VERSION
        assert obj["op"] == "health"

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            Request(op="destroy")

    def test_versioned_op_set(self):
        v1 = {"predict", "rank", "select", "horizon", "register", "health"}
        assert OPS_BY_VERSION[1] == v1
        assert OPS_BY_VERSION[2] == v1 | {"extend"}
        assert OPS_BY_VERSION[3] == v1 | {"extend", "quality"}
        sched_ops = {"submit", "job_status", "cancel", "jobs", "replace", "job_put"}
        assert OPS_BY_VERSION[5] == OPS_BY_VERSION[4] | sched_ops
        assert OPS_BY_VERSION[6] == OPS_BY_VERSION[5] | {"tail"}
        fleet_ops = {"predict_batch", "fleet_scan"}
        assert OPS_BY_VERSION[7] == OPS_BY_VERSION[6] | fleet_ops
        adapt_ops = {"adapt_status", "adapt_retune", "adapt_promote"}
        assert OPS_BY_VERSION[8] == OPS_BY_VERSION[7] | adapt_ops
        assert OPS == (
            v1 | {"extend", "quality", "tail"} | sched_ops | fleet_ops | adapt_ops
        )

    def test_wrong_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            Request.decode(b'{"v": 99, "op": "health"}')

    def test_missing_op_rejected(self):
        with pytest.raises(ProtocolError, match="missing 'op'"):
            Request.decode(b'{"v": 1}')

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            Request.decode(b"{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            Request.decode(b"[1, 2]")

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            Request(op="health", deadline_ms=0.0)

    def test_params_must_be_object(self):
        with pytest.raises(ProtocolError, match="params"):
            Request.decode(b'{"v": 1, "op": "health", "params": [1]}')


class TestResponse:
    def test_success_roundtrip(self):
        resp = Response.success("q7", {"tr": 0.93}, coalesced=True, elapsed_ms=1.25)
        back = Response.decode(resp.encode())
        assert back.ok and back.coalesced
        assert back.id == "q7"
        assert back.result == {"tr": 0.93}

    def test_failure_roundtrip(self):
        resp = Response.failure("q8", STATUS_SHED, "Overload", "queue full")
        back = Response.decode(resp.encode())
        assert not back.ok
        assert back.backpressure
        assert back.error["type"] == "Overload"

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError, match="status"):
            Response(id="x", status="confused")

    def test_backpressure_classification(self):
        assert not Response(id="", status=STATUS_OK).backpressure
        assert not Response(id="", status=STATUS_ERROR).backpressure
        assert not Response(id="", status=STATUS_DEADLINE).backpressure
        assert Response(id="", status=STATUS_SHED).backpressure
