"""The v3 ``quality`` op end to end: journal at response time, resolve
on ingest, and serve scoreboard metrics that match an offline
``core/calibration`` computation exactly."""

import asyncio
import threading

import pytest

from repro.audit import AuditConfig, PredictionAudit
from repro.audit.journal import OUTCOME_AVAILABLE, OUTCOME_EXCLUDED
from repro.core.calibration import brier_score, expected_calibration_error
from repro.core.estimator import EstimatorConfig
from repro.serve.client import ServeClient
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace

from tests.serve.test_server import ServerThread, idle_trace

HEAD_DAYS = 7


class AuditedServerThread(ServerThread):
    """A ServeServer wired to a PredictionAudit on its own loop thread."""

    def __init__(self, service, audit, config=None):
        self.loop = asyncio.new_event_loop()
        self.server = ServeServer(service, port=0, config=config, audit=audit)
        self.audit = audit
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)


def head_of(trace, n_days=HEAD_DAYS):
    return trace.slice_days(0, n_days)


def tail_of(trace, n_days=HEAD_DAYS):
    n = int(n_days * 86400.0 / trace.sample_period)
    return MachineTrace(
        trace.machine_id, trace.start_time + n * trace.sample_period,
        trace.sample_period, trace.load[n:], trace.free_mem_mb[n:],
        trace.up[n:],
    )


def audited_server(tmp_dir=None, **audit_kwargs):
    service = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    for mid, fail_hour in (("safe", None), ("risky", 9.0)):
        service.register(head_of(idle_trace(mid, fail_hour=fail_hour)))
    audit = PredictionAudit(
        AuditConfig(node_id="n0", directory=tmp_dir, **audit_kwargs),
        classifier=service.classifier,
        step_multiple=service.config.step_multiple,
    )
    return AuditedServerThread(
        service, audit, DispatchConfig(max_workers=2, queue_depth=32)
    )


class TestQualityOp:
    def test_disabled_without_audit(self):
        service = AvailabilityService(
            estimator_config=EstimatorConfig(step_multiple=5)
        )
        service.register(idle_trace("m0"))
        srv = ServerThread(service, DispatchConfig(max_workers=1, queue_depth=8))
        try:
            with ServeClient(port=srv.port) as client:
                assert client.health()["audit"] is False
                assert client.quality() == {"enabled": False}
        finally:
            srv.stop()

    def test_quality_end_to_end_matches_offline_calibration(self):
        srv = audited_server()
        try:
            with ServeClient(port=srv.port) as client:
                assert client.health()["audit"] is True
                for mid in ("safe", "risky"):
                    for start_hour in (1.0, 5.0, 8.5, 14.0):
                        client.predict(mid, start_hour, 2.0)
                    client.horizon(mid, 9.0, 4.0)
                journaled = srv.audit.journal.n_predictions
                assert journaled >= 8  # horizon journals only when > 0

                for mid in ("safe", "risky"):
                    client.extend(tail_of(idle_trace(
                        mid, fail_hour=9.0 if mid == "risky" else None
                    )))
                quality = client.quality()
        finally:
            srv.stop()

        assert quality["enabled"] is True
        assert quality["node"] == "n0"
        assert quality["journaled"]["predict"] == 8
        assert sum(quality["resolved"].values()) > 0

        # The served aggregate must equal an offline core/calibration
        # computation over the journaled (probability, outcome) pairs.
        pairs = [
            (r.probability, r.outcome == OUTCOME_AVAILABLE)
            for r in srv.audit.journal.resolutions
            if r.outcome != OUTCOME_EXCLUDED
        ]
        assert pairs
        predictions = [p for p, _ in pairs]
        outcomes = [y for _, y in pairs]
        agg = quality["aggregate"]
        assert agg["n"] == len(pairs)
        offline = brier_score(predictions, outcomes, n_bins=quality["n_bins"])
        assert agg["brier_binned"] == pytest.approx(offline.brier, abs=1e-9)
        raw = sum(
            (p - (1.0 if y else 0.0)) ** 2 for p, y in pairs
        ) / len(pairs)
        assert agg["brier"] == pytest.approx(raw, abs=1e-9)
        ece = expected_calibration_error(
            predictions, outcomes, n_bins=quality["n_bins"]
        )
        assert agg["ece"] == pytest.approx(ece, abs=1e-9)

    def test_machine_scoped_quality(self):
        srv = audited_server()
        try:
            with ServeClient(port=srv.port) as client:
                client.predict("safe", 1.0, 2.0)
                client.predict("risky", 1.0, 2.0)
                scoped = client.quality(machine="safe")
        finally:
            srv.stop()
        assert list(scoped["machines"]) == ["safe"]
        assert scoped["machines"]["safe"]["pending"] == 1

    def test_unscorable_prediction_not_journaled(self):
        srv = audited_server()
        try:
            with ServeClient(port=srv.port) as client:
                # An unknown machine errors before journaling; a NaN TR
                # (no matching history days) is served but not journaled.
                resp = client.request("predict", {
                    "machine": "ghost", "start_hour": 1.0, "hours": 2.0,
                    "day_type": "weekday",
                })
                assert resp.status == "error"
                quality = client.quality()
        finally:
            srv.stop()
        assert quality["journaled"].get("predict", 0) == 0


class TestDrainFlush:
    def test_server_stop_flushes_journal(self, tmp_path):
        srv = audited_server(tmp_dir=tmp_path)
        with ServeClient(port=srv.port) as client:
            for start_hour in (1.0, 5.0, 8.5):
                client.predict("safe", start_hour, 2.0)
        srv.stop()  # graceful drain: dispatcher.close() flushes the audit

        reopened = PredictionAudit(AuditConfig(directory=tmp_path))
        try:
            assert reopened.journal.recovered_truncated_bytes == 0
            assert reopened.journal.n_predictions == 3
            assert reopened.n_pending == 3
        finally:
            reopened.close()
