"""Protocol v5 scheduling ops over a real TCP server.

Covers the client-facing ops (submit / job_status / cancel / jobs), the
internal replication op (job_put), the replace broadcast handler, and
the two degraded paths: a v4 client sending a v5-only op (structured
version error, connection survives), and a scheduling op reaching a
node running without a JobManager (structured SchedulerDisabled).
"""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.core.windows import SECONDS_PER_DAY
from repro.sched import JobManager, SchedConfig
from repro.serve.client import ServeClient, ServeRequestError
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


def idle_trace(mid, n_days=7, period=300.0):
    n = int(n_days * SECONDS_PER_DAY / period)
    return MachineTrace(
        mid, 0.0, period,
        np.full(n, 0.05), np.full(n, 400.0), np.ones(n, dtype=bool),
    )


class SchedServerThread:
    """ServeServer + JobManager on a dedicated event-loop thread."""

    def __init__(self):
        self.service = AvailabilityService()
        for mid in ("lab-00", "lab-01"):
            self.service.register(idle_trace(mid))
        # 1000x speedup: a 10 cpu-second job completes in 10ms of wall
        # time, so tests observe full lifecycles without sleeping.
        self.sched = JobManager(
            self.service, config=SchedConfig(speedup=1000.0), node="test"
        )
        self.loop = asyncio.new_event_loop()
        self.server = ServeServer(
            self.service, port=0,
            config=DispatchConfig(max_workers=2), sched=self.sched,
        )
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture()
def server():
    srv = SchedServerThread()
    yield srv
    srv.stop()


class TestSchedOps:
    def test_submit_status_lifecycle(self, server):
        with ServeClient(port=server.port) as client:
            out = client.submit("wire-1", 200.0, cpu=0.5)  # 0.2s at 1000x
            assert out["record"]["state"] == "placed"
            assert out["record"]["machine"] in ("lab-00", "lab-01")
            deadline = 50
            while deadline:
                status = client.job_status("wire-1")
                if status["state"] == "completed":
                    break
                deadline -= 1
                import time

                time.sleep(0.1)
            assert status["state"] == "completed"
            assert status["progress_seconds"] == pytest.approx(200.0)

    def test_cancel_and_jobs_listing(self, server):
        with ServeClient(port=server.port) as client:
            client.submit("wire-c", 1e9, cpu=0.25)
            cancelled = client.cancel("wire-c")
            assert cancelled["record"]["state"] == "cancelled"
            listing = client.jobs()
            assert [j["job"] for j in listing["jobs"]] == ["wire-c"]
            assert listing["stats"]["states"] == {"cancelled": 1}

    def test_unknown_job_is_structured_error(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="unknown job"):
                client.job_status("ghost")
            # the connection survives the error response
            assert client.health()["status"] == "ok"

    def test_replace_reacts_to_node_death(self, server):
        with ServeClient(port=server.port) as client:
            placed = client.submit("wire-r", 1e9, cpu=0.5)
            machine = placed["record"]["machine"]
            out = client.request("replace", {"machines": [machine]}).result
            assert out["replaced"] == 1
            assert machine in out["down"]
            status = client.job_status("wire-r")
            assert status["machine"] != machine

    def test_job_put_replication(self, server):
        with ServeClient(port=server.port) as client:
            record = client.submit("wire-p", 1e9, cpu=0.25)["record"]
            newer = dict(record, version=record["version"] + 5, note="replica")
            out = client.request("job_put", {"record": newer}).result
            assert out == {"adopted": True, "version": newer["version"]}
            assert client.job_status("wire-p")["note"] == "replica"


class TestVersionGating:
    def test_v4_client_submit_gets_structured_error_not_drop(self, server):
        """Satellite: a pre-v5 peer sending a v5-only op keeps its
        connection and receives a structured version error."""
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            f.write(json.dumps({
                "v": 4, "id": "old-1", "op": "submit",
                "params": {"job": "j", "total_cpu_seconds": 10.0},
            }).encode() + b"\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "error"
            assert resp["error"]["type"] == "ProtocolError"
            assert "requires protocol v5" in resp["error"]["message"]
            assert "declared v4" in resp["error"]["message"]
            # same socket, well-formed v5 request: still served
            f.write(json.dumps({
                "v": 5, "id": "new-1", "op": "submit",
                "params": {"job": "j", "total_cpu_seconds": 10.0, "cpu": 0.25},
            }).encode() + b"\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "ok" and resp["id"] == "new-1"
            assert resp["result"]["record"]["state"] == "placed"

    def test_every_sched_op_is_v5_gated(self, server):
        ops = {
            "submit": {"job": "j", "total_cpu_seconds": 1.0},
            "job_status": {"job": "j"},
            "cancel": {"job": "j"},
            "jobs": {},
            "replace": {"machines": []},
            "job_put": {"record": {}},
        }
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            for op, params in ops.items():
                f.write(json.dumps(
                    {"v": 4, "id": op, "op": op, "params": params}
                ).encode() + b"\n")
            f.flush()
            for _ in ops:
                resp = json.loads(f.readline())
                assert resp["status"] == "error"
                assert "requires protocol v5" in resp["error"]["message"]


class TestSchedulerDisabled:
    def test_sched_op_without_manager_structured_error(self):
        """A node running without --sched answers, not drops."""
        service = AvailabilityService()
        service.register(idle_trace("lab-00"))
        loop = asyncio.new_event_loop()
        server = ServeServer(service, port=0, config=DispatchConfig(max_workers=1))
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
        try:
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServeRequestError, match="SchedulerDisabled"):
                    client.submit("j", 10.0)
                assert client.health()["sched"] is False
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()
