"""End-to-end tests: real TCP server, sync and async clients."""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.serve.client import AsyncServeClient, ServeClient, ServeRequestError
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


def idle_trace(mid, fail_hour=None, n_days=14, period=60.0):
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    if fail_hour is not None:
        i0 = int(fail_hour * 3600 / period)
        for day in range(n_days):
            load[day * n_per_day + i0 : day * n_per_day + i0 + 15] = 0.95
    return MachineTrace(mid, 0.0, period, load, np.full(load.shape, 400.0))


class ServerThread:
    """A ServeServer on a dedicated event-loop thread."""

    def __init__(self, service, config=None):
        self.loop = asyncio.new_event_loop()
        self.server = ServeServer(service, port=0, config=config)
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)

    @property
    def port(self):
        return self.server.port

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(30)

    def stop(self):
        self.run(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture(scope="module")
def service():
    svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    svc.register(idle_trace("safe"))
    svc.register(idle_trace("risky", fail_hour=9.0))
    return svc


@pytest.fixture(scope="module")
def server(service):
    srv = ServerThread(service, DispatchConfig(max_workers=2, queue_depth=32))
    yield srv
    srv.stop()


class TestSyncClient:
    def test_health(self, server):
        with ServeClient(port=server.port) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["machines"] == 2

    def test_predict_matches_direct_service(self, server, service):
        with ServeClient(port=server.port) as client:
            tr = client.predict("risky", 8, 3)
        direct = service.predict("risky", ClockWindow.from_hours(8, 3), DayType.WEEKDAY)
        assert tr == pytest.approx(direct, abs=1e-12)

    def test_rank_select_horizon(self, server):
        with ServeClient(port=server.port) as client:
            ranking = client.rank(8, 3)
            assert [r["machine"] for r in ranking] == ["safe", "risky"]
            select = client.select(8, 3, k=2)
            assert select["machines"][0] == "safe"
            horizon = client.horizon("safe", 8, 5)
            assert horizon == pytest.approx(5 * 3600.0)

    def test_many_requests_one_connection(self, server):
        with ServeClient(port=server.port) as client:
            values = [client.predict("safe", 8 + i % 3, 2) for i in range(12)]
        assert all(v == pytest.approx(1.0) for v in values)

    def test_unknown_machine_raises(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="KeyError"):
                client.predict("ghost", 8, 3)
            # the connection survives the error response
            assert client.health()["status"] == "ok"

    def test_register_over_the_wire(self, server):
        with ServeClient(port=server.port) as client:
            out = client.register(idle_trace("wired"))
            assert out == {"machine": "wired", "n_samples": 14 * 1440, "replaced": False}
            assert client.predict("wired", 9, 1) == pytest.approx(1.0)

    def test_concurrent_connections(self, server):
        results = []
        lock = threading.Lock()

        def worker():
            with ServeClient(port=server.port) as client:
                tr = client.predict("safe", 8, 2)
            with lock:
                results.append(tr)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert all(tr == pytest.approx(1.0) for tr in results)


class TestRawWire:
    def test_malformed_line_gets_error_response_and_connection_survives(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "error"
            assert resp["error"]["type"] == "ProtocolError"
            f.write(b'{"v": 1, "id": "h1", "op": "health"}\n')
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "ok" and resp["id"] == "h1"

    def test_pipelined_requests_all_answered(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            for i in range(5):
                f.write(
                    json.dumps({"v": 1, "id": f"p{i}", "op": "health"}).encode() + b"\n"
                )
            f.flush()
            ids = {json.loads(f.readline())["id"] for _ in range(5)}
            assert ids == {f"p{i}" for i in range(5)}

    def test_blank_lines_ignored(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            f.write(b"\n\n")
            f.write(b'{"v": 1, "id": "x", "op": "health"}\n')
            f.flush()
            assert json.loads(f.readline())["id"] == "x"


class TestAsyncClient:
    def test_roundtrip(self, server):
        async def go():
            client = await AsyncServeClient.connect(port=server.port)
            try:
                health = await client.health()
                tr = await client.predict("safe", 8, 2)
                ranking = await client.rank(8, 2)
                return health, tr, ranking
            finally:
                await client.close()

        health, tr, ranking = asyncio.run(go())
        assert health["status"] == "ok"
        assert tr == pytest.approx(1.0)
        assert len(ranking) >= 2


class TestQueryCli:
    def test_health_and_predict_roundtrip(self, server, capsys):
        from repro.cli import main

        assert main(["query", "health", "--port", str(server.port)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "ok" and out["result"]["machines"] >= 2

        assert (
            main([
                "query", "predict", "--port", str(server.port),
                "--machine", "safe", "--start-hour", "8", "--hours", "2",
            ])
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["result"]["tr"] == pytest.approx(1.0)

    def test_predict_requires_machine(self, server, capsys):
        from repro.cli import main

        assert main(["query", "predict", "--port", str(server.port)]) == 2
        assert "--machine" in capsys.readouterr().err

    def test_error_response_exits_nonzero(self, server, capsys):
        from repro.cli import main

        rc = main([
            "query", "predict", "--port", str(server.port),
            "--machine", "ghost", "--start-hour", "8", "--hours", "2",
        ])
        assert rc == 1
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "error"


class TestShutdown:
    def test_graceful_stop_drains_and_refuses_new_connections(self):
        svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
        svc.register(idle_trace("only"))
        srv = ServerThread(svc, DispatchConfig(max_workers=1, queue_depth=8))
        port = srv.port
        with ServeClient(port=port) as client:
            assert client.health()["status"] == "ok"
        srv.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)


class _FlakyListener:
    """A server that kills its first N connections mid-request.

    Connection ``i < drops``: accept, read one line, close without
    replying (the client sees EOF => ConnectionError).  Later
    connections answer every request with a canned ok response.
    """

    def __init__(self, drops: int):
        self.drops = drops
        self.connections = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            drop = self.connections <= self.drops
            with conn:
                f = conn.makefile("rwb")
                try:
                    while True:
                        line = f.readline()
                        if not line:
                            break
                        if drop:
                            break  # close mid-request
                        req = json.loads(line)
                        f.write(json.dumps({
                            "v": 2, "id": req["id"], "status": "ok",
                            "result": {"echo": req["op"]},
                        }).encode() + b"\n")
                        f.flush()
                finally:
                    # makefile keeps the fd alive past conn.close(); send
                    # the FIN explicitly so the client sees EOF.
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    f.close()

    def close(self) -> None:
        self._sock.close()


class TestConnectionErrorRetry:
    def test_sync_client_reconnects_and_resends(self):
        listener = _FlakyListener(drops=1)
        try:
            with ServeClient(
                port=listener.port, retries=2, retry_backoff_s=0.01
            ) as client:
                resp = client.request("health")
            assert resp.ok and resp.result == {"echo": "health"}
            assert listener.connections == 2  # dropped once, then re-sent
        finally:
            listener.close()

    def test_sync_client_without_retries_raises(self):
        listener = _FlakyListener(drops=1)
        try:
            with ServeClient(port=listener.port) as client:
                with pytest.raises(ConnectionError):
                    client.request("health")
        finally:
            listener.close()

    def test_sync_client_exhausted_retries_raise(self):
        listener = _FlakyListener(drops=10)
        try:
            with ServeClient(
                port=listener.port, retries=2, retry_backoff_s=0.01
            ) as client:
                with pytest.raises(ConnectionError):
                    client.request("health")
            assert listener.connections == 3  # initial + 2 retries
        finally:
            listener.close()

    def test_async_client_reconnects_and_resends(self):
        listener = _FlakyListener(drops=1)

        async def scenario():
            client = await AsyncServeClient.connect(
                port=listener.port, retries=2, retry_backoff_s=0.01
            )
            try:
                return await client.request("health")
            finally:
                await client.close()

        try:
            resp = asyncio.run(scenario())
            assert resp.ok and resp.result == {"echo": "health"}
            assert listener.connections == 2
        finally:
            listener.close()


class TestQueryTargetCli:
    def test_port_file(self, server, tmp_path, capsys):
        from repro.cli import main

        port_file = tmp_path / "serve.port"
        port_file.write_text(f"{server.port}\n")
        assert main(["query", "health", "--port-file", str(port_file)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "ok"

    def test_cluster_spec(self, server, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "cluster.json"
        spec.write_text(json.dumps(
            {"router": {"host": "127.0.0.1", "port": server.port}}
        ))
        assert main(["query", "health", "--cluster", str(spec)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "ok"

    def test_exactly_one_target_required(self, server, tmp_path, capsys):
        from repro.cli import main

        assert main(["query", "health"]) == 2
        assert "exactly one" in capsys.readouterr().err
        port_file = tmp_path / "serve.port"
        port_file.write_text(f"{server.port}\n")
        rc = main([
            "query", "health",
            "--port", str(server.port), "--port-file", str(port_file),
        ])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err
