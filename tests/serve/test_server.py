"""End-to-end tests: real TCP server, sync and async clients."""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.serve.client import AsyncServeClient, ServeClient, ServeRequestError
from repro.serve.dispatch import DispatchConfig
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


def idle_trace(mid, fail_hour=None, n_days=14, period=60.0):
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    if fail_hour is not None:
        i0 = int(fail_hour * 3600 / period)
        for day in range(n_days):
            load[day * n_per_day + i0 : day * n_per_day + i0 + 15] = 0.95
    return MachineTrace(mid, 0.0, period, load, np.full(load.shape, 400.0))


class ServerThread:
    """A ServeServer on a dedicated event-loop thread."""

    def __init__(self, service, config=None):
        self.loop = asyncio.new_event_loop()
        self.server = ServeServer(service, port=0, config=config)
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)

    @property
    def port(self):
        return self.server.port

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(30)

    def stop(self):
        self.run(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture(scope="module")
def service():
    svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    svc.register(idle_trace("safe"))
    svc.register(idle_trace("risky", fail_hour=9.0))
    return svc


@pytest.fixture(scope="module")
def server(service):
    srv = ServerThread(service, DispatchConfig(max_workers=2, queue_depth=32))
    yield srv
    srv.stop()


class TestSyncClient:
    def test_health(self, server):
        with ServeClient(port=server.port) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["machines"] == 2

    def test_predict_matches_direct_service(self, server, service):
        with ServeClient(port=server.port) as client:
            tr = client.predict("risky", 8, 3)
        direct = service.predict("risky", ClockWindow.from_hours(8, 3), DayType.WEEKDAY)
        assert tr == pytest.approx(direct, abs=1e-12)

    def test_rank_select_horizon(self, server):
        with ServeClient(port=server.port) as client:
            ranking = client.rank(8, 3)
            assert [r["machine"] for r in ranking] == ["safe", "risky"]
            select = client.select(8, 3, k=2)
            assert select["machines"][0] == "safe"
            horizon = client.horizon("safe", 8, 5)
            assert horizon == pytest.approx(5 * 3600.0)

    def test_many_requests_one_connection(self, server):
        with ServeClient(port=server.port) as client:
            values = [client.predict("safe", 8 + i % 3, 2) for i in range(12)]
        assert all(v == pytest.approx(1.0) for v in values)

    def test_unknown_machine_raises(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="KeyError"):
                client.predict("ghost", 8, 3)
            # the connection survives the error response
            assert client.health()["status"] == "ok"

    def test_register_over_the_wire(self, server):
        with ServeClient(port=server.port) as client:
            out = client.register(idle_trace("wired"))
            assert out == {"machine": "wired", "n_samples": 14 * 1440, "replaced": False}
            assert client.predict("wired", 9, 1) == pytest.approx(1.0)

    def test_concurrent_connections(self, server):
        results = []
        lock = threading.Lock()

        def worker():
            with ServeClient(port=server.port) as client:
                tr = client.predict("safe", 8, 2)
            with lock:
                results.append(tr)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert all(tr == pytest.approx(1.0) for tr in results)


class TestRawWire:
    def test_malformed_line_gets_error_response_and_connection_survives(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "error"
            assert resp["error"]["type"] == "ProtocolError"
            f.write(b'{"v": 1, "id": "h1", "op": "health"}\n')
            f.flush()
            resp = json.loads(f.readline())
            assert resp["status"] == "ok" and resp["id"] == "h1"

    def test_pipelined_requests_all_answered(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            for i in range(5):
                f.write(
                    json.dumps({"v": 1, "id": f"p{i}", "op": "health"}).encode() + b"\n"
                )
            f.flush()
            ids = {json.loads(f.readline())["id"] for _ in range(5)}
            assert ids == {f"p{i}" for i in range(5)}

    def test_blank_lines_ignored(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=5) as sock:
            f = sock.makefile("rwb")
            f.write(b"\n\n")
            f.write(b'{"v": 1, "id": "x", "op": "health"}\n')
            f.flush()
            assert json.loads(f.readline())["id"] == "x"


class TestAsyncClient:
    def test_roundtrip(self, server):
        async def go():
            client = await AsyncServeClient.connect(port=server.port)
            try:
                health = await client.health()
                tr = await client.predict("safe", 8, 2)
                ranking = await client.rank(8, 2)
                return health, tr, ranking
            finally:
                await client.close()

        health, tr, ranking = asyncio.run(go())
        assert health["status"] == "ok"
        assert tr == pytest.approx(1.0)
        assert len(ranking) >= 2


class TestQueryCli:
    def test_health_and_predict_roundtrip(self, server, capsys):
        from repro.cli import main

        assert main(["query", "health", "--port", str(server.port)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "ok" and out["result"]["machines"] >= 2

        assert (
            main([
                "query", "predict", "--port", str(server.port),
                "--machine", "safe", "--start-hour", "8", "--hours", "2",
            ])
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["result"]["tr"] == pytest.approx(1.0)

    def test_predict_requires_machine(self, server, capsys):
        from repro.cli import main

        assert main(["query", "predict", "--port", str(server.port)]) == 2
        assert "--machine" in capsys.readouterr().err

    def test_error_response_exits_nonzero(self, server, capsys):
        from repro.cli import main

        rc = main([
            "query", "predict", "--port", str(server.port),
            "--machine", "ghost", "--start-hour", "8", "--hours", "2",
        ])
        assert rc == 1
        out = json.loads(capsys.readouterr().out)
        assert out["status"] == "error"


class TestShutdown:
    def test_graceful_stop_drains_and_refuses_new_connections(self):
        svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
        svc.register(idle_trace("only"))
        srv = ServerThread(svc, DispatchConfig(max_workers=1, queue_depth=8))
        port = srv.port
        with ServeClient(port=port) as client:
            assert client.health()["status"] == "ok"
        srv.stop()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)
