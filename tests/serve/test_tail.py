"""The v6 ``tail`` op: reading the newest samples back over the wire.

``tail`` closes the ingestion loop — after an agent streams telemetry
in through ``extend``, an operator can look at what the server actually
holds without downloading the whole history.
"""

import json
import socket

import numpy as np
import pytest

from repro.core.windows import SECONDS_PER_DAY
from repro.serve.client import ServeClient, ServeRequestError
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace

from tests.serve.test_server import ServerThread


def small_trace(mid="tailed", n=20, period=6.0, start=SECONDS_PER_DAY * 7.0):
    load = np.linspace(0.0, 0.95, n)
    mem = np.full(n, 256.0)
    up = np.ones(n, dtype=bool)
    up[5] = False
    return MachineTrace(mid, start, period, load, mem, up)


@pytest.fixture(scope="module")
def server():
    svc = AvailabilityService()
    svc.register(small_trace())
    srv = ServerThread(svc)
    yield srv
    srv.stop()


class TestTail:
    def test_last_n_samples_with_grid_times(self, server):
        trace = small_trace()
        with ServeClient(port=server.port) as client:
            tail = client.tail("tailed", n=3)
        assert tail["machine"] == "tailed"
        assert tail["n_samples"] == 20
        assert tail["sample_period"] == 6.0
        assert len(tail["samples"]) == 3
        for i, s in enumerate(tail["samples"], start=17):
            assert s["time"] == trace.start_time + 6.0 * i
            assert s["load"] == pytest.approx(trace.load[i])
            assert s["free_mem_mb"] == 256.0
            assert s["up"] is True

    def test_n_larger_than_history_returns_everything(self, server):
        with ServeClient(port=server.port) as client:
            tail = client.tail("tailed", n=1000)
        assert len(tail["samples"]) == 20
        assert tail["samples"][5]["up"] is False

    def test_n_zero_is_a_cheap_length_probe(self, server):
        with ServeClient(port=server.port) as client:
            tail = client.tail("tailed", n=0)
        assert tail["samples"] == []
        assert tail["n_samples"] == 20
        assert tail["end_time"] == tail["start_time"] + 6.0 * 20

    def test_unknown_machine_is_an_error(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="not registered"):
                client.tail("ghost")

    def test_negative_n_rejected(self, server):
        with ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError, match="n must be"):
                client.tail("tailed", n=-1)

    def test_pre_v6_request_cannot_use_tail(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            fh = sock.makefile("rwb")
            fh.write(json.dumps(
                {"v": 5, "id": "x", "op": "tail", "params": {"machine": "tailed"}}
            ).encode() + b"\n")
            fh.flush()
            resp = json.loads(fh.readline())
        assert resp["status"] == "error"
        assert "requires protocol v6" in resp["error"]["message"]

    def test_tail_sees_extend_immediately(self, server):
        trace = small_trace()
        chunk = MachineTrace(
            "tailed", trace.start_time + 6.0 * 20, 6.0,
            np.array([0.5]), np.array([128.0]), np.array([True]),
        )
        with ServeClient(port=server.port) as client:
            client.extend(chunk)
            tail = client.tail("tailed", n=1)
        assert tail["n_samples"] == 21
        assert tail["samples"][0]["load"] == pytest.approx(0.5)
        assert tail["samples"][0]["free_mem_mb"] == 128.0
