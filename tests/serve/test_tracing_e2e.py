"""End-to-end tracing through a real ServeServer, and v3/v4 wire compat."""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import SECONDS_PER_DAY
from repro.obs.tracing import TraceContext, scoped_recorder, use_context
from repro.obs.traceview import build_traces, critical_path
from repro.serve.client import ServeClient
from repro.serve.dispatch import DispatchConfig
from repro.serve.protocol import PROTOCOL_VERSION, Request
from repro.serve.server import ServeServer
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


def idle_trace(mid, n_days=10, period=60.0):
    n = int(n_days * SECONDS_PER_DAY / period)
    return MachineTrace(
        mid, 0.0, period, np.full(n, 0.05), np.full(n, 400.0)
    )


class ServerThread:
    def __init__(self, service, config=None):
        self.loop = asyncio.new_event_loop()
        self.server = ServeServer(service, port=0, config=config)
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture()
def server():
    svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=10))
    svc.register(idle_trace("m0"))
    srv = ServerThread(svc, DispatchConfig(max_workers=2, queue_depth=32))
    yield srv
    srv.stop()


class TestTracedRequest:
    def test_single_trace_covers_client_serve_predict_tiers(self, server):
        root = TraceContext.new_root()
        with scoped_recorder() as rec:
            with use_context(root), ServeClient(port=server.port) as client:
                client.predict("m0", 9.0, 2.0)
            trees = build_traces(rec.spans())
        assert list(trees) == [root.trace_id]
        tree = trees[root.trace_id]
        names = tree.names()
        # the full in-process journey: client -> dispatcher -> predictor
        assert "client.request" in names
        assert "dispatch.queue_wait" in names
        assert "dispatch.compute" in names
        assert "predict.query" in names
        assert {"client", "serve", "predict"} <= tree.tiers()
        # queue-wait and compute are siblings under the client span's child
        by_name = {s.name: s for s in tree.spans}
        assert (by_name["dispatch.queue_wait"].parent_id
                == by_name["dispatch.compute"].parent_id)
        # the critical path reaches the predict tier
        assert any(s.tier == "predict" for s in critical_path(tree))

    def test_predict_span_annotated_with_cache_counts(self, server):
        with scoped_recorder() as rec:
            with use_context(TraceContext.new_root()), \
                    ServeClient(port=server.port) as client:
                client.predict("m0", 9.0, 2.0)
            spans = {s.name: s for s in rec.spans()}
        attrs = spans["predict.query"].attrs
        assert "cache_hits" in attrs and "cache_misses" in attrs

    def test_untraced_request_records_no_spans(self, server):
        with scoped_recorder() as rec:
            with ServeClient(port=server.port) as client:
                client.predict("m0", 9.0, 2.0)
            assert len(rec) == 0

    def test_two_traced_requests_stay_separate(self, server):
        with scoped_recorder() as rec:
            with ServeClient(port=server.port) as client:
                for _ in range(2):
                    with use_context(TraceContext.new_root()):
                        client.predict("m0", 9.0, 2.0)
            trees = build_traces(rec.spans())
        assert len(trees) == 2


class TestWireCompat:
    def test_untraced_request_has_no_trace_key(self):
        wire = json.loads(Request(op="health").encode().decode())
        assert "trace" not in wire

    def test_v3_request_round_trips_unchanged(self):
        # a pre-v4 peer's request: no trace field, explicit v3
        raw = json.dumps(
            {"v": 3, "op": "predict", "id": "r1",
             "params": {"machine": "m0", "start_hour": 9, "hours": 2}}
        ).encode()
        req = Request.decode(raw)
        assert req.trace is None
        assert json.loads(req.encode().decode())["v"] == 3

    def test_trace_field_round_trips(self):
        ctx = TraceContext.new_root()
        req = Request(op="predict", params={"machine": "m0"}, trace=ctx.to_wire())
        again = Request.decode(req.encode())
        assert again.trace == ctx.to_wire()
        assert TraceContext.from_wire(again.trace) == ctx

    def test_server_answers_v3_clients_without_trace(self, server):
        # hand-rolled v3 request straight over a socket: the reply must
        # be a normal response with no trace-related additions
        import socket as socket_mod

        with socket_mod.create_connection(("127.0.0.1", server.port), 5) as sock:
            sock.sendall(json.dumps(
                {"v": 3, "op": "health", "id": "x1", "params": {}}
            ).encode() + b"\n")
            fh = sock.makefile("rb")
            reply = json.loads(fh.readline().decode())
        assert reply["status"] == "ok"
        assert "trace" not in reply

    def test_trace_envelope_version_supported(self):
        # the trace envelope arrived in v4; later bumps must keep it
        assert PROTOCOL_VERSION >= 4
