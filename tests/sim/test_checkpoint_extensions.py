"""Tests for the TR-driven checkpoint interval and job groups."""

import math

import pytest

from repro.core.windows import SECONDS_PER_DAY
from repro.sim.checkpoint import (
    PredictiveIntervalCheckpointing,
    failure_rate_from_tr,
    young_interval,
)
from repro.sim.jobs import GuestJob, JobGroup


class TestFailureRate:
    def test_tr_one_is_zero_rate(self):
        assert failure_rate_from_tr(1.0, 3600.0) == 0.0

    def test_tr_zero_is_infinite_rate(self):
        assert math.isinf(failure_rate_from_tr(0.0, 3600.0))

    def test_inversion(self):
        rate = failure_rate_from_tr(math.exp(-2.0), 100.0)
        assert rate == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            failure_rate_from_tr(1.5, 100.0)
        with pytest.raises(ValueError):
            failure_rate_from_tr(0.5, 0.0)


class TestYoungInterval:
    def test_formula(self):
        assert young_interval(30.0, 3600.0) == pytest.approx(math.sqrt(2 * 30 * 3600))

    def test_infinite_mtbf(self):
        assert math.isinf(young_interval(30.0, math.inf))

    def test_more_failures_shorter_interval(self):
        assert young_interval(30.0, 600.0) < young_interval(30.0, 6000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 100.0)
        with pytest.raises(ValueError):
            young_interval(10.0, -1.0)


class TestPredictiveIntervalPolicy:
    def make_job(self, progress=2000.0):
        job = GuestJob(job_id="j", cpu_seconds=36000.0)
        job.begin_attempt("m", 0.0)
        job.progress = progress
        return job

    def test_reliable_host_long_interval(self):
        policy = PredictiveIntervalCheckpointing(refresh_interval=1.0)
        job = self.make_job()
        policy.should_checkpoint(job, 10.0, lambda w: 0.999)
        long_iv = policy.current_interval("j")
        policy2 = PredictiveIntervalCheckpointing(refresh_interval=1.0)
        policy2.should_checkpoint(job, 10.0, lambda w: 0.30)
        short_iv = policy2.current_interval("j")
        assert short_iv < long_iv

    def test_interval_clamped(self):
        policy = PredictiveIntervalCheckpointing(
            refresh_interval=1.0, min_interval=600.0, max_interval=1200.0
        )
        job = self.make_job()
        policy.should_checkpoint(job, 1.0, lambda w: 1e-9)  # terrible host
        assert policy.current_interval("j") == 600.0
        policy.should_checkpoint(job, 3.0, lambda w: 1.0 - 1e-12)  # perfect host
        assert policy.current_interval("j") == 1200.0

    def test_checkpoints_fire_at_interval(self):
        policy = PredictiveIntervalCheckpointing(
            refresh_interval=10.0, min_interval=100.0, max_interval=100.0,
            cost_cpu_seconds=5.0,
        )
        job = self.make_job()
        tr = lambda w: 0.5
        assert not policy.apply(job, 50.0, tr)  # before the interval
        assert policy.apply(job, 150.0, tr)
        assert job.checkpointed_progress > 0.0
        assert not policy.apply(job, 200.0, tr)
        job.progress += 500.0
        assert policy.apply(job, 260.0, tr)

    def test_prediction_error_assumes_mediocre(self):
        def broken(window):
            raise RuntimeError("no data")

        policy = PredictiveIntervalCheckpointing(refresh_interval=1.0)
        job = self.make_job()
        policy.should_checkpoint(job, 1.0, broken)
        assert policy.current_interval("j") is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveIntervalCheckpointing(refresh_interval=0.0)
        with pytest.raises(ValueError):
            PredictiveIntervalCheckpointing(min_interval=500.0, max_interval=100.0)


class TestJobGroup:
    def test_uniform_construction(self):
        g = JobGroup.uniform("sweep", 4, 1000.0)
        assert g.size == 4
        assert [j.job_id for j in g.jobs] == [f"sweep/{i:02d}" for i in range(4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            JobGroup(group_id="g", jobs=[])
        with pytest.raises(ValueError):
            JobGroup.uniform("g", 0, 100.0)
        j = GuestJob(job_id="same", cpu_seconds=1.0)
        j2 = GuestJob(job_id="same", cpu_seconds=1.0)
        with pytest.raises(ValueError):
            JobGroup(group_id="g", jobs=[j, j2])

    def test_response_is_slowest_member(self):
        g = JobGroup.uniform("g", 2, 100.0)
        g.submitted_at = 0.0
        for i, job in enumerate(g.jobs):
            job.begin_attempt("m", 0.0)
            job.progress = 100.0
            job.complete(100.0 + i * 50.0)
        assert g.done
        assert g.completed_at == 150.0
        assert g.response_time == 150.0

    def test_incomplete_group(self):
        g = JobGroup.uniform("g", 2, 100.0)
        g.jobs[0].begin_attempt("m", 0.0)
        g.jobs[0].progress = 100.0
        g.jobs[0].complete(10.0)
        assert not g.done
        assert g.response_time is None

    def test_group_scheduling_end_to_end(self, testbed):
        from repro.sim import FgcsTestbed, PredictivePolicy

        bed = FgcsTestbed(testbed, monitor_period=30.0)
        sched = bed.make_scheduler(PredictivePolicy())
        group = JobGroup.uniform("mc", 3, 1200.0)
        sched.submit_group_at(group, bed.start_time + 3600.0)
        bed.engine.run_until(bed.start_time + 3 * SECONDS_PER_DAY)
        assert group.done
        assert sched.group_response_times()["mc"] == group.response_time
        assert group.response_time > 0.0
