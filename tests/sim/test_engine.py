"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = SimulationEngine()
        fired = []
        eng.schedule_at(5.0, lambda: fired.append("b"))
        eng.schedule_at(1.0, lambda: fired.append("a"))
        eng.schedule_at(9.0, lambda: fired.append("c"))
        eng.run()
        assert fired == ["a", "b", "c"]
        assert eng.now == 9.0
        assert eng.events_fired == 3

    def test_fifo_for_equal_times(self):
        eng = SimulationEngine()
        fired = []
        for i in range(5):
            eng.schedule_at(2.0, lambda i=i: fired.append(i))
        eng.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in(self):
        eng = SimulationEngine(start_time=100.0)
        fired = []
        eng.schedule_in(10.0, lambda: fired.append(eng.now))
        eng.run()
        assert fired == [110.0]

    def test_callbacks_can_schedule_more(self):
        eng = SimulationEngine()
        fired = []

        def recurring():
            fired.append(eng.now)
            if eng.now < 5.0:
                eng.schedule_in(1.0, recurring)

        eng.schedule_at(0.0, recurring)
        eng.run()
        assert fired == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_run_until_stops_clock(self):
        eng = SimulationEngine()
        fired = []
        eng.schedule_at(3.0, lambda: fired.append(3))
        eng.schedule_at(7.0, lambda: fired.append(7))
        eng.run_until(5.0)
        assert fired == [3]
        assert eng.now == 5.0
        eng.run_until(10.0)
        assert fired == [3, 7]

    def test_cannot_schedule_in_past(self):
        eng = SimulationEngine(start_time=10.0)
        with pytest.raises(ValueError):
            eng.schedule_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            eng.schedule_in(-1.0, lambda: None)

    def test_cancellation(self):
        eng = SimulationEngine()
        fired = []
        handle = eng.schedule_at(1.0, lambda: fired.append(1))
        eng.schedule_at(2.0, lambda: fired.append(2))
        handle.cancel()
        assert handle.cancelled
        eng.run()
        assert fired == [2]

    def test_pending_count(self):
        eng = SimulationEngine()
        eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        assert eng.pending == 2
        eng.run()
        assert eng.pending == 0
