"""Tests for guest jobs, attempts and workload statistics."""

import pytest

from repro.core.states import State
from repro.sim.jobs import GuestJob, JobState, WorkloadStats


class TestGuestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            GuestJob(job_id="x", cpu_seconds=0.0)
        with pytest.raises(ValueError):
            GuestJob(job_id="x", cpu_seconds=10.0, mem_requirement_mb=-1.0)

    def test_lifecycle_success(self):
        job = GuestJob(job_id="j", cpu_seconds=100.0, submitted_at=10.0)
        job.begin_attempt("m0", 20.0)
        assert job.state is JobState.RUNNING
        job.progress = 100.0
        job.complete(150.0)
        assert job.done
        assert job.response_time == pytest.approx(140.0)
        assert job.n_failures == 0
        assert job.wasted_cpu_seconds == 0.0

    def test_failure_resets_progress(self):
        job = GuestJob(job_id="j", cpu_seconds=100.0)
        job.begin_attempt("m0", 0.0)
        job.progress = 40.0
        job.fail_attempt(State.S3, 50.0)
        assert job.state is JobState.FAILED
        assert job.progress == 0.0
        assert job.remaining == 100.0
        assert job.n_failures == 1
        assert job.wasted_cpu_seconds == pytest.approx(40.0)

    def test_checkpoint_preserves_progress(self):
        job = GuestJob(job_id="j", cpu_seconds=100.0)
        job.begin_attempt("m0", 0.0)
        job.progress = 60.0
        job.checkpointed_progress = 50.0
        job.fail_attempt(State.S5, 80.0)
        assert job.progress == 50.0
        # Only the work past the checkpoint is wasted.
        assert job.wasted_cpu_seconds == pytest.approx(60.0)

    def test_second_attempt_resumes_from_checkpoint(self):
        job = GuestJob(job_id="j", cpu_seconds=100.0)
        job.begin_attempt("m0", 0.0)
        job.progress = 70.0
        job.checkpointed_progress = 70.0
        job.fail_attempt(State.S5, 10.0)
        job.begin_attempt("m1", 20.0)
        assert job.progress == 70.0
        assert job.remaining == pytest.approx(30.0)

    def test_complete_without_attempt_rejected(self):
        job = GuestJob(job_id="j", cpu_seconds=10.0)
        with pytest.raises(RuntimeError):
            job.complete(1.0)
        with pytest.raises(RuntimeError):
            job.fail_attempt(State.S3, 1.0)

    def test_response_time_none_until_done(self):
        job = GuestJob(job_id="j", cpu_seconds=10.0)
        assert job.response_time is None


class TestWorkloadStats:
    def test_aggregation(self):
        a = GuestJob(job_id="a", cpu_seconds=10.0, submitted_at=0.0)
        a.begin_attempt("m", 0.0)
        a.progress = 10.0
        a.complete(20.0)
        b = GuestJob(job_id="b", cpu_seconds=10.0, submitted_at=0.0)
        b.begin_attempt("m", 0.0)
        b.progress = 5.0
        b.fail_attempt(State.S3, 5.0)
        b.begin_attempt("m2", 10.0)
        b.progress = 10.0
        b.complete(40.0)
        stats = WorkloadStats.from_jobs([a, b])
        assert stats.n_jobs == 2
        assert stats.n_completed == 2
        assert stats.n_failures == 1
        assert stats.mean_response_time == pytest.approx(30.0)
        assert stats.total_wasted_cpu_seconds == pytest.approx(5.0)

    def test_empty_workload(self):
        import math

        stats = WorkloadStats.from_jobs([])
        assert stats.n_jobs == 0
        assert math.isnan(stats.mean_response_time)
