"""Tests for the machine, monitor and gateway layers."""

import numpy as np
import pytest

from repro.core.states import State
from repro.core.windows import SECONDS_PER_DAY
from repro.sim.engine import SimulationEngine
from repro.sim.gateway import GuestStatus, IShareGateway
from repro.sim.jobs import GuestJob, JobState
from repro.sim.machine import HostMachine
from repro.sim.monitor import ResourceMonitor
from repro.traces.trace import MachineTrace


def make_machine(loads, period=6.0, mems=None, ups=None):
    loads = np.asarray(loads, dtype=float)
    mems = np.full(loads.shape, 400.0) if mems is None else np.asarray(mems, dtype=float)
    ups = np.ones(loads.shape, bool) if ups is None else np.asarray(ups, dtype=bool)
    return HostMachine(MachineTrace("m0", 0.0, period, loads, mems, ups))


def stack(loads, period=6.0, mems=None, ups=None):
    machine = make_machine(loads, period, mems, ups)
    engine = SimulationEngine()
    monitor = ResourceMonitor(machine, engine, period=period)
    gateway = IShareGateway(machine, monitor)
    monitor.start()
    return machine, engine, monitor, gateway


class TestHostMachine:
    def test_queries(self):
        m = make_machine([0.1, 0.5], ups=[True, False])
        assert m.load_at(0.0) == pytest.approx(0.1)
        assert m.up_at(0.0)
        assert not m.up_at(6.0)
        assert m.free_mem_at(0.0) == 400.0
        assert m.covers(11.9) and not m.covers(12.0)

    def test_guest_rate(self):
        m = make_machine([0.3])
        assert m.guest_rate_at(0.0, reniced=False) == pytest.approx(0.7)
        assert m.guest_rate_at(0.0, reniced=True) == pytest.approx(0.7 * 0.96)
        m2 = make_machine([0.0], ups=[False])
        assert m2.guest_rate_at(0.0, reniced=False) == 0.0


class TestMonitor:
    def test_samples_at_period(self):
        _m, engine, monitor, _g = stack([0.1] * 100)
        engine.run_until(60.0)
        assert monitor.samples_taken == 11  # t = 0, 6, ..., 60

    def test_no_samples_while_down(self):
        ups = [True] * 10 + [False] * 10 + [True] * 10
        _m, engine, monitor, _g = stack([0.1] * 30, ups=ups)
        engine.run_until(29 * 6.0)
        assert monitor.samples_taken == 20
        # Heartbeat ends at the last up sample before the gap.
        assert len(monitor.log_times) == 20

    def test_heartbeat_staleness(self):
        ups = [True] * 5 + [False] * 25
        _m, engine, monitor, _g = stack([0.1] * 30, ups=ups)
        engine.run_until(29 * 6.0)
        assert monitor.heartbeat_stale(engine.now)
        assert not monitor.heartbeat_stale(monitor.last_heartbeat + 12.0)

    def test_overhead_under_one_percent(self):
        _m, engine, monitor, _g = stack([0.1] * 200)
        engine.run_until(199 * 6.0)
        assert 0.0 < monitor.overhead_fraction(engine.now) < 0.01

    def test_validation(self):
        m = make_machine([0.1])
        with pytest.raises(ValueError):
            ResourceMonitor(m, SimulationEngine(), period=0.0)
        with pytest.raises(ValueError):
            ResourceMonitor(m, SimulationEngine(), heartbeat_timeout_periods=1.0)


class TestGatewayLifecycle:
    @staticmethod
    def launch(gateway, engine, cpu_seconds=60.0, mem=64.0):
        done, failed = [], []
        job = GuestJob(job_id="j", cpu_seconds=cpu_seconds, mem_requirement_mb=mem)
        gateway.launch_guest(job, engine.now, done.append, lambda j, s: failed.append((j, s)))
        return job, done, failed

    def test_job_completes_on_idle_machine(self):
        _m, engine, _mon, gateway = stack([0.1] * 200)
        job, done, failed = self.launch(gateway, engine, cpu_seconds=60.0)
        engine.run_until(200 * 6.0)
        assert done == [job]
        assert not failed
        assert job.done
        # At load 0.1 the guest rate is 0.9: 60 CPU-seconds in ~67 s.
        assert job.completed_at == pytest.approx(66.0, abs=12.0)

    def test_progress_slower_when_reniced(self):
        _m1, e1, _mo1, g1 = stack([0.1] * 400)
        j1, d1, _ = self.launch(g1, e1, cpu_seconds=120.0)
        e1.run_until(2400.0)
        _m2, e2, _mo2, g2 = stack([0.5] * 400)
        j2, d2, _ = self.launch(g2, e2, cpu_seconds=120.0)
        e2.run_until(2400.0)
        assert j1.completed_at < j2.completed_at

    def test_guest_killed_by_sustained_overload(self):
        loads = [0.1] * 10 + [0.9] * 15 + [0.1] * 10
        _m, engine, _mon, gateway = stack(loads)
        job, done, failed = self.launch(gateway, engine, cpu_seconds=10000.0)
        engine.run_until(34 * 6.0)
        assert len(failed) == 1
        assert failed[0][1] is State.S3
        assert job.state is JobState.FAILED
        assert not gateway.busy

    def test_transient_spike_suspends_then_resumes(self):
        loads = [0.1] * 10 + [0.9] * 5 + [0.1] * 30
        _m, engine, _mon, gateway = stack(loads)
        job, done, failed = self.launch(gateway, engine, cpu_seconds=10000.0)
        engine.run_until(12 * 6.0)
        assert gateway.guest_status is GuestStatus.SUSPENDED
        engine.run_until(44 * 6.0)
        assert not failed
        assert gateway.guest_status is GuestStatus.DEFAULT_PRIORITY

    def test_renice_between_thresholds(self):
        loads = [0.1] * 5 + [0.4] * 10
        _m, engine, _mon, gateway = stack(loads)
        self.launch(gateway, engine, cpu_seconds=10000.0)
        engine.run_until(14 * 6.0)
        assert gateway.guest_status is GuestStatus.RENICED

    def test_guest_killed_by_memory_exhaustion(self):
        mems = [400.0] * 10 + [30.0] * 10
        _m, engine, _mon, gateway = stack([0.1] * 20, mems=mems)
        job, _done, failed = self.launch(gateway, engine, cpu_seconds=10000.0, mem=64.0)
        engine.run_until(19 * 6.0)
        assert failed and failed[0][1] is State.S4

    def test_guest_killed_by_revocation(self):
        ups = [True] * 10 + [False] * 10
        _m, engine, _mon, gateway = stack([0.1] * 20, ups=ups)
        job, _done, failed = self.launch(gateway, engine, cpu_seconds=10000.0)
        engine.run_until(19 * 6.0)
        assert failed and failed[0][1] is State.S5

    def test_cannot_double_launch(self):
        _m, engine, _mon, gateway = stack([0.1] * 50)
        self.launch(gateway, engine, cpu_seconds=10000.0)
        with pytest.raises(RuntimeError):
            self.launch(gateway, engine)

    def test_accepts_jobs(self):
        _m, engine, mon, gateway = stack([0.1] * 50)
        engine.run_until(12.0)
        assert gateway.accepts_jobs(engine.now)
        self.launch(gateway, engine, cpu_seconds=10000.0)
        assert not gateway.accepts_jobs(engine.now)

    def test_rejects_when_overloaded(self):
        _m, engine, _mon, gateway = stack([0.9] * 50)
        engine.run_until(12.0)
        assert not gateway.accepts_jobs(engine.now)


class TestGatewayAcceptance:
    def test_memory_requirement_checked_at_accept(self):
        mems = [100.0] * 50
        _m, engine, _mon, gateway = stack([0.1] * 50, mems=mems)
        engine.run_until(12.0)
        assert gateway.accepts_jobs(engine.now)  # no requirement stated
        assert gateway.accepts_jobs(engine.now, mem_requirement_mb=64.0)
        assert not gateway.accepts_jobs(engine.now, mem_requirement_mb=256.0)

    def test_counters_track_outcomes(self):
        loads = [0.1] * 10 + [0.9] * 15 + [0.1] * 60
        _m, engine, _mon, gateway = stack(loads)
        job = GuestJob(job_id="a", cpu_seconds=100000.0)
        gateway.launch_guest(job, 0.0, lambda j: None, lambda j, s: None)
        engine.run_until(30 * 6.0)
        assert gateway.guests_started == 1
        assert gateway.guests_failed == 1
        job2 = GuestJob(job_id="b", cpu_seconds=30.0)
        gateway.launch_guest(job2, engine.now, lambda j: None, lambda j, s: None)
        engine.run_until(84 * 6.0)
        assert gateway.guests_completed == 1

    def test_stale_heartbeat_blocks_acceptance(self):
        ups = [True] * 5 + [False] * 20
        _m, engine, monitor, gateway = stack([0.1] * 25, ups=ups)
        engine.run_until(24 * 6.0)
        assert monitor.heartbeat_stale(engine.now)
        assert not gateway.accepts_jobs(engine.now)
