"""Tests for the P2P publication/discovery overlay."""

import pytest

from repro.sim.p2p import P2PNetwork, ResourceAdvert


def build_network(n=12, seed=0):
    net = P2PNetwork(seed=seed)
    for i in range(n):
        net.join(f"n{i}")
        net.publish(f"n{i}", ResourceAdvert(machine_id=f"m{i}"))
    return net


class TestMembership:
    def test_join_and_len(self):
        net = build_network(5)
        assert len(net) == 5
        assert "n3" in net
        assert set(net.node_ids) == {f"n{i}" for i in range(5)}

    def test_duplicate_join_rejected(self):
        net = build_network(2)
        with pytest.raises(KeyError):
            net.join("n0")

    def test_leave_removes_adverts(self):
        net = build_network(6)
        net.leave("n0")
        assert "n0" not in net
        found = net.discover("n1", ttl=10)
        assert "m0" not in {a.machine_id for a in found.adverts}

    def test_leave_unknown_rejected(self):
        net = build_network(2)
        with pytest.raises(KeyError):
            net.leave("ghost")

    def test_validation(self):
        with pytest.raises(ValueError):
            P2PNetwork(k=1)


class TestDiscovery:
    def test_full_coverage_with_large_ttl(self):
        net = build_network(12)
        result = net.discover("n0", ttl=12)
        assert len(result.adverts) == 12
        assert result.nodes_reached == 12
        assert result.messages > 0

    def test_ttl_zero_sees_only_local(self):
        net = build_network(8)
        result = net.discover("n0", ttl=0)
        assert {a.machine_id for a in result.adverts} == {"m0"}
        assert result.messages == 0

    def test_coverage_grows_with_ttl(self):
        net = build_network(30, seed=2)
        cov = [net.reachable_fraction("n0", ttl) for ttl in (0, 1, 2, 6)]
        assert cov[0] <= cov[1] <= cov[2] <= cov[3]
        assert cov[3] == 1.0  # small-world: 6 hops cover 30 nodes

    def test_predicate_filtering(self):
        net = P2PNetwork(seed=0)
        net.join("a")
        net.join("b")
        net.publish("a", ResourceAdvert(machine_id="big", ram_mb=2048.0))
        net.publish("b", ResourceAdvert(machine_id="small", ram_mb=128.0))
        result = net.discover("a", ttl=3, predicate=lambda ad: ad.ram_mb >= 512.0)
        assert {a.machine_id for a in result.adverts} == {"big"}

    def test_unpublish(self):
        net = build_network(4)
        net.unpublish("n1", "m1")
        found = net.discover("n0", ttl=5)
        assert "m1" not in {a.machine_id for a in found.adverts}
        net.unpublish("n1", "m1")  # idempotent

    def test_unknown_origin_rejected(self):
        net = build_network(3)
        with pytest.raises(KeyError):
            net.discover("ghost")
        with pytest.raises(ValueError):
            net.discover("n0", ttl=-1)

    def test_messages_counted_per_edge_traversal(self):
        net = P2PNetwork(seed=0)
        net.join("a")
        net.join("b")  # b wires to a
        result = net.discover("a", ttl=1)
        assert result.messages == 1
        assert result.nodes_reached == 2
