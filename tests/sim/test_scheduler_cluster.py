"""Tests for the client scheduler, checkpointing and testbed assembly."""

import numpy as np
import pytest

from repro.core.windows import SECONDS_PER_DAY, AbsoluteWindow
from repro.sim.checkpoint import (
    AdaptiveCheckpointing,
    NoCheckpointing,
    PeriodicCheckpointing,
)
from repro.sim.cluster import FgcsTestbed, poisson_workload, run_workload
from repro.sim.jobs import GuestJob
from repro.sim.scheduler import LeastLoadedPolicy, PredictivePolicy, RandomPolicy
from repro.sim.state_manager import StateManager
from repro.traces.synthesis import synthesize_testbed
from repro.traces.trace import TraceSet


@pytest.fixture(scope="module")
def small_testbed_traces():
    return synthesize_testbed(3, n_days=14, sample_period=30.0, seed=21)


@pytest.fixture()
def testbed(small_testbed_traces):
    return FgcsTestbed(small_testbed_traces, monitor_period=30.0)


class TestTestbedAssembly:
    def test_machines_wired(self, testbed):
        assert len(testbed.hosts) == 3
        assert testbed.machine_ids == ["lab-00", "lab-01", "lab-02"]
        assert testbed.end_time > testbed.start_time

    def test_p2p_discovery_finds_all(self, testbed):
        assert sorted(testbed.discover_hosts()) == testbed.machine_ids

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            FgcsTestbed(TraceSet())

    def test_monitoring_overhead_small(self, testbed):
        testbed.engine.run_until(testbed.start_time + 3600.0)
        ovh = testbed.monitoring_overhead()
        assert 0.0 < ovh < 0.01  # the paper's < 1% claim


class TestStateManager:
    def test_prediction_from_bootstrap(self, testbed):
        stack = testbed.hosts[0]
        window = AbsoluteWindow(testbed.start_time + 3600.0, 3600.0)
        tr = stack.manager.predict_tr(window)
        assert 0.0 <= tr <= 1.0
        assert stack.manager.predictions_served == 1

    def test_live_log_reconstructs_down_as_gaps(self, testbed):
        testbed.engine.run_until(testbed.start_time + 7200.0)
        stack = testbed.hosts[0]
        live = stack.manager.live_trace(testbed.engine.now)
        assert live is not None
        assert live.sample_period == stack.monitor.period
        # The live grid starts where the bootstrap ends.
        assert live.start_time == pytest.approx(stack.manager.bootstrap.end_time)

    def test_history_concatenates(self, testbed):
        testbed.engine.run_until(testbed.start_time + 7200.0)
        stack = testbed.hosts[0]
        hist = stack.manager.history(testbed.engine.now)
        assert hist.n_samples > stack.manager.bootstrap.n_samples


class TestPolicies:
    def test_workload_completes_under_each_policy(self, small_testbed_traces):
        for policy in (PredictivePolicy(), LeastLoadedPolicy(), RandomPolicy(seed=1)):
            bed = FgcsTestbed(small_testbed_traces, monitor_period=30.0)
            wl = poisson_workload(
                4,
                start=bed.start_time + 1800.0,
                span=2 * SECONDS_PER_DAY,
                cpu_seconds_range=(600.0, 3600.0),
                seed=3,
            )
            stats = run_workload(bed, policy, wl)
            assert stats.n_completed == 4, policy.name
            assert stats.mean_response_time > 0.0

    def test_policy_names(self):
        assert PredictivePolicy().name == "predictive"
        assert LeastLoadedPolicy().name == "least-loaded"
        assert RandomPolicy().name == "random"

    def test_random_policy_deterministic_with_seed(self, small_testbed_traces):
        outcomes = []
        for _ in range(2):
            bed = FgcsTestbed(small_testbed_traces, monitor_period=30.0)
            wl = poisson_workload(
                3, start=bed.start_time + 1800.0, span=SECONDS_PER_DAY,
                cpu_seconds_range=(600.0, 1800.0), seed=4,
            )
            stats = run_workload(bed, RandomPolicy(seed=7), wl)
            outcomes.append((stats.n_failures, round(stats.mean_response_time, 3)))
        assert outcomes[0] == outcomes[1]


class TestCheckpointing:
    def test_periodic_validation(self):
        with pytest.raises(ValueError):
            PeriodicCheckpointing(interval=0.0)

    def test_adaptive_validation(self):
        with pytest.raises(ValueError):
            AdaptiveCheckpointing(tr_threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveCheckpointing(check_interval=0.0)

    def test_no_checkpointing_never_checkpoints(self):
        job = GuestJob(job_id="j", cpu_seconds=1000.0)
        job.begin_attempt("m", 0.0)
        job.progress = 500.0
        assert not NoCheckpointing().apply(job, 100.0, lambda w: 1.0)
        assert job.checkpointed_progress == 0.0

    def test_periodic_checkpoints_after_interval(self):
        policy = PeriodicCheckpointing(interval=100.0, cost_cpu_seconds=10.0)
        job = GuestJob(job_id="j", cpu_seconds=1000.0)
        job.begin_attempt("m", 0.0)
        job.progress = 500.0
        assert not policy.apply(job, 50.0, lambda w: 1.0)
        assert policy.apply(job, 150.0, lambda w: 1.0)
        assert job.checkpointed_progress == pytest.approx(490.0)
        # Immediately after, the interval restarts.
        job.progress = 600.0
        assert not policy.apply(job, 200.0, lambda w: 1.0)

    def test_checkpoint_skipped_when_nothing_to_save(self):
        policy = PeriodicCheckpointing(interval=10.0, cost_cpu_seconds=50.0)
        job = GuestJob(job_id="j", cpu_seconds=1000.0)
        job.begin_attempt("m", 0.0)
        job.progress = 20.0  # less than the checkpoint cost
        assert not policy.apply(job, 100.0, lambda w: 1.0)

    def test_adaptive_checkpoints_only_when_tr_low(self):
        policy = AdaptiveCheckpointing(
            tr_threshold=0.8, check_interval=1.0, cost_cpu_seconds=5.0
        )
        job = GuestJob(job_id="j", cpu_seconds=1000.0)
        job.begin_attempt("m", 0.0)
        job.progress = 300.0
        assert not policy.apply(job, 10.0, lambda w: 0.95)
        assert policy.apply(job, 20.0, lambda w: 0.30)
        assert job.checkpointed_progress > 0.0

    def test_adaptive_checkpoints_on_prediction_error(self):
        def broken(window):
            raise RuntimeError("no history")

        policy = AdaptiveCheckpointing(check_interval=1.0, cost_cpu_seconds=5.0)
        job = GuestJob(job_id="j", cpu_seconds=1000.0)
        job.begin_attempt("m", 0.0)
        job.progress = 300.0
        assert policy.apply(job, 10.0, broken)

    def test_checkpointing_reduces_waste_end_to_end(self, small_testbed_traces):
        results = {}
        for name, ckpt in [
            ("none", NoCheckpointing()),
            ("periodic", PeriodicCheckpointing(interval=900.0, cost_cpu_seconds=10.0)),
        ]:
            bed = FgcsTestbed(small_testbed_traces, monitor_period=30.0)
            wl = poisson_workload(
                6,
                start=bed.start_time + 1800.0,
                span=3 * SECONDS_PER_DAY,
                cpu_seconds_range=(3600.0, 14400.0),
                seed=8,
            )
            stats = run_workload(bed, RandomPolicy(seed=5), wl, checkpoint_policy=ckpt)
            results[name] = stats
        if results["none"].n_failures > 0:
            assert (
                results["periodic"].total_wasted_cpu_seconds
                <= results["none"].total_wasted_cpu_seconds + 1e-6
            )


class TestMultiClient:
    def test_clients_contend_and_complete(self, small_testbed_traces):
        from repro.sim.cluster import run_multi_client

        bed = FgcsTestbed(small_testbed_traces, monitor_period=30.0)
        wl_a = poisson_workload(
            3, start=bed.start_time + 1800.0, span=SECONDS_PER_DAY,
            cpu_seconds_range=(600.0, 1800.0), seed=41,
        )
        wl_b = poisson_workload(
            3, start=bed.start_time + 1800.0, span=SECONDS_PER_DAY,
            cpu_seconds_range=(600.0, 1800.0), seed=43,
        )
        # Give job ids distinct prefixes across the clients.
        for i, (_t, job) in enumerate(wl_b):
            job.job_id = f"b-{i:03d}"
        stats = run_multi_client(
            bed,
            {
                "alice": (PredictivePolicy(), wl_a),
                "bob": (RandomPolicy(seed=2), wl_b),
            },
        )
        assert set(stats) == {"alice", "bob"}
        assert stats["alice"].n_completed == 3
        assert stats["bob"].n_completed == 3

    def test_contention_delays_jobs(self, small_testbed_traces):
        from repro.sim.cluster import run_multi_client

        # 3 machines, 6 simultaneous long jobs: some must queue, so the
        # multi-client mean response exceeds the single-client one.
        def workload(seed, prefix):
            wl = poisson_workload(
                3, start=FgcsTestbed(small_testbed_traces, monitor_period=30.0).start_time + 1800.0,
                span=1800.0, cpu_seconds_range=(7200.0, 7200.0), seed=seed,
            )
            for i, (_t, job) in enumerate(wl):
                job.job_id = f"{prefix}-{i}"
            return wl

        bed_single = FgcsTestbed(small_testbed_traces, monitor_period=30.0)
        single = run_multi_client(
            bed_single, {"solo": (RandomPolicy(seed=1), workload(50, "s"))}
        )["solo"]

        bed_multi = FgcsTestbed(small_testbed_traces, monitor_period=30.0)
        multi = run_multi_client(
            bed_multi,
            {
                "a": (RandomPolicy(seed=1), workload(50, "a")),
                "b": (RandomPolicy(seed=9), workload(51, "b")),
            },
        )
        assert multi["a"].mean_response_time >= single.mean_response_time - 60.0

    def test_empty_clients_rejected(self, small_testbed_traces):
        from repro.sim.cluster import run_multi_client

        bed = FgcsTestbed(small_testbed_traces, monitor_period=30.0)
        with pytest.raises(ValueError):
            run_multi_client(bed, {})
