"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.core import windows as win
from repro.sim.jobs import GuestJob, JobGroup
from repro.sim.workloads import (
    WorkloadSpec,
    bimodal_workload,
    diurnal_workload,
    group_workload,
)


SPEC = WorkloadSpec(n_jobs=200, start=1000.0, span=7 * win.SECONDS_PER_DAY, seed=5)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_jobs=0, start=0.0, span=100.0)
        with pytest.raises(ValueError):
            WorkloadSpec(n_jobs=1, start=0.0, span=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(n_jobs=1, start=0.0, span=100.0, mem_mb=-1.0)


class TestBimodal:
    def test_count_and_ordering(self):
        wl = bimodal_workload(SPEC)
        assert len(wl) == 200
        times = [t for t, _ in wl]
        assert times == sorted(times)
        assert all(SPEC.start <= t <= SPEC.start + SPEC.span for t in times)

    def test_two_modes_present(self):
        wl = bimodal_workload(SPEC)
        sizes = np.array([j.cpu_seconds for _, j in wl])
        assert (sizes <= 1800.0).sum() > 50  # small test runs
        assert (sizes >= 7200.0).sum() > 20  # long jobs

    def test_fraction_extremes(self):
        all_small = bimodal_workload(SPEC, small_fraction=1.0)
        assert max(j.cpu_seconds for _, j in all_small) <= 1800.0
        all_large = bimodal_workload(SPEC, small_fraction=0.0)
        assert min(j.cpu_seconds for _, j in all_large) >= 7200.0

    def test_determinism(self):
        a = bimodal_workload(SPEC)
        b = bimodal_workload(SPEC)
        assert [(t, j.cpu_seconds) for t, j in a] == [(t, j.cpu_seconds) for t, j in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            bimodal_workload(SPEC, small_fraction=1.5)

    def test_unique_job_ids(self):
        ids = [j.job_id for _, j in bimodal_workload(SPEC)]
        assert len(set(ids)) == len(ids)


class TestDiurnal:
    def test_peak_concentration(self):
        wl = diurnal_workload(SPEC, peak_hour=10.0, concentration=4.0)
        hours = np.array([win.time_of_day(t) / 3600.0 for t, _ in wl])
        near_peak = ((hours >= 7) & (hours <= 13)).mean()
        night = ((hours >= 0) & (hours <= 4)).mean()
        assert near_peak > night

    def test_zero_concentration_roughly_uniform(self):
        wl = diurnal_workload(SPEC, concentration=0.0)
        hours = np.array([win.time_of_day(t) / 3600.0 for t, _ in wl])
        # A crude uniformity check: both halves of the day populated.
        assert (hours < 12).sum() > 40 and (hours >= 12).sum() > 40

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_workload(SPEC, concentration=-1.0)

    def test_jobs_well_formed(self):
        for _t, job in diurnal_workload(SPEC):
            assert isinstance(job, GuestJob)
            assert job.cpu_seconds > 0


class TestGroups:
    def test_groups_generated(self):
        wl = group_workload(WorkloadSpec(n_jobs=30, start=0.0, span=1e5, seed=2))
        assert len(wl) == 30
        for _t, group in wl:
            assert isinstance(group, JobGroup)
            assert 2 <= group.size <= 6
            sizes = {j.cpu_seconds for j in group.jobs}
            assert len(sizes) == 1  # identical members (a sweep)

    def test_member_ids_unique_across_groups(self):
        wl = group_workload(WorkloadSpec(n_jobs=10, start=0.0, span=1e5, seed=3))
        ids = [j.job_id for _, g in wl for j in g.jobs]
        assert len(set(ids)) == len(ids)

    def test_validation(self):
        with pytest.raises(ValueError):
            group_workload(SPEC, group_size_range=(0, 3))
        with pytest.raises(ValueError):
            group_workload(SPEC, group_size_range=(5, 3))
