"""Crash-durability tests: SIGKILL a real appender process, then recover.

The invariant under test is the store's contract: with ``fsync=always``
every *acknowledged* append survives a process kill — recovery returns
at least the acknowledged prefix, truncates any torn tail without
raising, and a service warm-started from the recovered store answers
byte-identical TR predictions to a twin that never crashed.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.windows import ClockWindow, DayType
from repro.service import AvailabilityService
from repro.store import StoreConfig, TraceStore
from repro.traces.synthesis import synthesize_trace
from repro.traces.trace import MachineTrace

MACHINE = "crash-m"
N_DAYS = 8
PERIOD = 120.0
SEED = 9

_REPO_ROOT = Path(__file__).resolve().parents[2]

_CHILD_SCRIPT = """
import sys

from repro.store import StoreConfig, TraceStore
from repro.traces.synthesis import synthesize_trace
from repro.traces.trace import MachineTrace

root, start_at, chunk_n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
trace = synthesize_trace({machine!r}, n_days={n_days}, sample_period={period},
                         seed={seed})
store = TraceStore(root, StoreConfig(fsync="always"))
i = start_at
while i < trace.n_samples:
    j = min(i + chunk_n, trace.n_samples)
    chunk = MachineTrace(
        {machine!r}, trace.start_time + i * trace.sample_period,
        trace.sample_period, trace.load[i:j], trace.free_mem_mb[i:j],
        trace.up[i:j],
    )
    res = store.append({machine!r}, chunk)
    assert res.durable, "fsync=always must acknowledge durably"
    print(f"ACK {{res.total_samples}}", flush=True)
    i = j
print("DONE", flush=True)
""".format(machine=MACHINE, n_days=N_DAYS, period=PERIOD, seed=SEED)


def source_trace():
    """The deterministic trace both parent and child derive from."""
    return synthesize_trace(MACHINE, n_days=N_DAYS, sample_period=PERIOD, seed=SEED)


def spawn_appender(root, start_at, chunk_n=37):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, str(root), str(start_at), str(chunk_n)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(_REPO_ROOT),
    )


def kill_after_acks(proc, n_acks):
    """Read acks until ``n_acks`` seen, then SIGKILL; returns last acked total."""
    acked = 0
    seen = 0
    deadline = time.monotonic() + 60.0
    while seen < n_acks:
        assert time.monotonic() < deadline, "appender produced no acks in time"
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"appender exited early: {proc.stderr.read()[-2000:]}"
            )
        if line.startswith("ACK "):
            acked = int(line.split()[1])
            seen += 1
    proc.kill()  # SIGKILL: no atexit, no flush, no close
    proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()
    return acked


def prefix_of(trace, n):
    return MachineTrace(
        trace.machine_id, trace.start_time, trace.sample_period,
        trace.load[:n], trace.free_mem_mb[:n], trace.up[:n],
    )


def assert_is_prefix(recovered, expected_full):
    n = recovered.n_samples
    assert np.array_equal(recovered.load, expected_full.load[:n])
    assert np.array_equal(recovered.free_mem_mb, expected_full.free_mem_mb[:n])
    assert np.array_equal(recovered.up, expected_full.up[:n])


class TestSigkillDurability:
    def test_acked_appends_survive_sigkill(self, tmp_path):
        root = tmp_path / "store"
        proc = spawn_appender(root, start_at=0)
        acked = kill_after_acks(proc, n_acks=6)
        assert acked > 0

        with TraceStore(root) as store:
            rec = store.last_recovery
            recovered = store.load(MACHINE)
        # Every acknowledged sample is back; a final un-acked record may
        # also have landed, but never a torn or reordered one.
        assert recovered.n_samples >= acked
        assert_is_prefix(recovered, source_trace())
        assert rec.machines == 1

    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        root = tmp_path / "store"
        proc = spawn_appender(root, start_at=0)
        acked = kill_after_acks(proc, n_acks=4)

        # Simulate the torn half-record a mid-write crash leaves behind.
        segments = sorted((root / "machines").glob("*/seg-*.wal"))
        assert segments
        with open(segments[-1], "ab") as fh:
            fh.write(b"\x85\x00\x00\x00GARBAGE")

        with TraceStore(root) as store:
            rec = store.last_recovery
            recovered = store.load(MACHINE)
        assert rec.truncated_bytes > 0
        assert recovered.n_samples >= acked
        assert_is_prefix(recovered, source_trace())

        # And the store is append-ready: the next chunk lands cleanly.
        full = source_trace()
        n = recovered.n_samples
        nxt = MachineTrace(
            MACHINE, full.start_time + n * PERIOD, PERIOD,
            full.load[n : n + 10], full.free_mem_mb[n : n + 10],
            full.up[n : n + 10],
        )
        with TraceStore(root) as store:
            res = store.append(MACHINE, nxt)
            assert res.seq == n
            assert res.appended == 10

    def test_recovered_service_matches_uncrashed_twin(self, tmp_path):
        root = tmp_path / "store"
        full = source_trace()
        base = prefix_of(full, full.n_samples // 2)

        # Seed the store the way `serve --store` would: a registered
        # bootstrap history (snapshot), then a live appender streams the
        # rest until it is killed mid-stream.
        with TraceStore(root) as store:
            store.replace(base)
        proc = spawn_appender(root, start_at=base.n_samples)
        acked = kill_after_acks(proc, n_acks=4)
        assert acked > base.n_samples

        with TraceStore(root) as store:
            service = AvailabilityService.warm_start(store)
            n_recovered = store.n_samples(MACHINE)

        twin = AvailabilityService()
        twin.register(prefix_of(full, n_recovered))

        assert service.machine_ids == twin.machine_ids
        for start_hour, hours in ((0.0, 4.0), (9.0, 5.0), (18.0, 3.0)):
            window = ClockWindow.from_hours(start_hour, hours)
            for dtype in (DayType.WEEKDAY, DayType.WEEKEND):
                got = service.predict(MACHINE, window, dtype)
                want = twin.predict(MACHINE, window, dtype)
                assert got == want  # byte-identical, not approx
