"""TraceStore behaviour: append/load, snapshots, compaction, recovery."""

import numpy as np
import pytest

from repro.store import (
    StoreConfig,
    StoreError,
    TraceStore,
)
from repro.traces.trace import MachineTrace


def make_trace(mid="m0", n=500, start=0.0, period=6.0, seed=0):
    rng = np.random.default_rng(seed)
    return MachineTrace(
        machine_id=mid,
        start_time=start,
        sample_period=period,
        load=rng.uniform(0.0, 1.0, n),
        free_mem_mb=rng.uniform(100.0, 900.0, n),
        up=rng.uniform(0, 1, n) > 0.1,
    )


def chunks_of(trace, size):
    out = []
    for lo in range(0, trace.n_samples, size):
        hi = min(lo + size, trace.n_samples)
        out.append(
            MachineTrace(
                machine_id=trace.machine_id,
                start_time=trace.start_time + lo * trace.sample_period,
                sample_period=trace.sample_period,
                load=trace.load[lo:hi],
                free_mem_mb=trace.free_mem_mb[lo:hi],
                up=trace.up[lo:hi],
            )
        )
    return out


def assert_traces_equal(a, b):
    assert a.machine_id == b.machine_id
    assert a.start_time == b.start_time
    assert a.sample_period == b.sample_period
    assert np.array_equal(a.load, b.load)
    assert np.array_equal(a.free_mem_mb, b.free_mem_mb)
    assert np.array_equal(a.up, b.up)


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        trace = make_trace()
        with TraceStore(tmp_path / "s") as store:
            for chunk in chunks_of(trace, 64):
                store.append(trace.machine_id, chunk)
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_append_result_accounting(self, tmp_path):
        trace = make_trace(n=100)
        with TraceStore(tmp_path / "s", StoreConfig(fsync="always")) as store:
            res = store.append(trace.machine_id, trace)
        assert res.seq == 0
        assert res.appended == 100
        assert res.total_samples == 100
        assert res.durable is True

    def test_overlapping_retry_is_idempotent(self, tmp_path):
        trace = make_trace(n=100)
        first, second = chunks_of(trace, 60)
        with TraceStore(tmp_path / "s") as store:
            store.append(trace.machine_id, first)
            # Retry delivers the whole trace again: only the tail lands.
            res = store.append(trace.machine_id, trace)
            assert res.seq == 60
            assert res.appended == 40
            # A fully covered chunk is a no-op.
            res = store.append(trace.machine_id, first)
            assert res.appended == 0
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_gap_rejected(self, tmp_path):
        trace = make_trace(n=100)
        first, second = chunks_of(trace, 50)
        future = MachineTrace(
            trace.machine_id,
            second.start_time + 10 * trace.sample_period,
            trace.sample_period,
            second.load[10:],
            second.free_mem_mb[10:],
            second.up[10:],
        )
        with TraceStore(tmp_path / "s") as store:
            store.append(trace.machine_id, first)
            with pytest.raises(StoreError, match="no gaps"):
                store.append(trace.machine_id, future)

    def test_off_grid_chunk_rejected(self, tmp_path):
        trace = make_trace(n=50)
        with TraceStore(tmp_path / "s") as store:
            store.append(trace.machine_id, trace)
            bad = MachineTrace(
                trace.machine_id, trace.end_time + 1.7, trace.sample_period,
                trace.load[:5], trace.free_mem_mb[:5], trace.up[:5],
            )
            with pytest.raises(StoreError, match="grid"):
                store.append(trace.machine_id, bad)

    def test_period_mismatch_rejected(self, tmp_path):
        trace = make_trace(n=50)
        with TraceStore(tmp_path / "s") as store:
            store.append(trace.machine_id, trace)
            bad = MachineTrace(
                trace.machine_id, trace.end_time, 60.0,
                trace.load[:5], trace.free_mem_mb[:5], trace.up[:5],
            )
            with pytest.raises(StoreError, match="period"):
                store.append(trace.machine_id, bad)

    def test_unknown_machine_load_raises(self, tmp_path):
        with TraceStore(tmp_path / "s") as store:
            with pytest.raises(KeyError):
                store.load("ghost")


class TestRecovery:
    def test_reopen_replays_wal(self, tmp_path):
        trace = make_trace()
        with TraceStore(tmp_path / "s") as store:
            for chunk in chunks_of(trace, 64):
                store.append(trace.machine_id, chunk)
        with TraceStore(tmp_path / "s") as store:
            rec = store.last_recovery
            assert rec.machines == 1
            assert rec.samples_replayed == trace.n_samples
            assert rec.samples_from_snapshots == 0
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_snapshot_shrinks_replay(self, tmp_path):
        trace = make_trace()
        first, *rest = chunks_of(trace, 200)
        with TraceStore(tmp_path / "s") as store:
            store.append(trace.machine_id, first)
            store.snapshot()
            for chunk in rest:
                store.append(trace.machine_id, chunk)
        with TraceStore(tmp_path / "s") as store:
            rec = store.last_recovery
            assert rec.samples_from_snapshots == first.n_samples
            assert rec.samples_replayed == trace.n_samples - first.n_samples
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_segment_rolling_and_replay(self, tmp_path):
        trace = make_trace(n=2000)
        cfg = StoreConfig(segment_max_bytes=2048, fsync="never")
        with TraceStore(tmp_path / "s", cfg) as store:
            for chunk in chunks_of(trace, 50):
                store.append(trace.machine_id, chunk)
            stats = store.stat()
            assert stats[0].n_segments > 1
        with TraceStore(tmp_path / "s") as store:
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceStore(tmp_path / "nope", create=False)

    def test_recover_discards_memory_state(self, tmp_path):
        trace = make_trace(n=100)
        with TraceStore(tmp_path / "s", StoreConfig(fsync="always")) as store:
            store.append(trace.machine_id, trace)
            report = store.recover()
            assert report.machines == 1
            assert_traces_equal(store.load(trace.machine_id), trace)


class TestReplaceAndCompaction:
    def test_replace_writes_snapshot_only(self, tmp_path):
        trace = make_trace()
        with TraceStore(tmp_path / "s") as store:
            store.replace(trace)
            st = store.stat()[0]
            assert st.snapshot_samples == trace.n_samples
            assert st.n_segments == 0
        with TraceStore(tmp_path / "s") as store:
            rec = store.last_recovery
            assert rec.samples_from_snapshots == trace.n_samples
            assert rec.records_replayed == 0
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_replace_drops_previous_log(self, tmp_path):
        old = make_trace(n=300, seed=1)
        new = make_trace(n=120, seed=2)
        with TraceStore(tmp_path / "s") as store:
            for chunk in chunks_of(old, 64):
                store.append(old.machine_id, chunk)
            store.replace(new)
            assert_traces_equal(store.load(new.machine_id), new)
        with TraceStore(tmp_path / "s") as store:
            assert_traces_equal(store.load(new.machine_id), new)

    def test_compact_folds_wal_into_snapshot(self, tmp_path):
        trace = make_trace(n=1500)
        cfg = StoreConfig(segment_max_bytes=2048, fsync="never")
        with TraceStore(tmp_path / "s", cfg) as store:
            for chunk in chunks_of(trace, 50):
                store.append(trace.machine_id, chunk)
            report = store.compact()
            assert report.machines == 1
            assert report.segments_removed >= 1
            assert report.bytes_reclaimed > 0
            st = store.stat()[0]
            assert st.snapshot_samples == trace.n_samples
            assert st.wal_bytes == 0
            assert_traces_equal(store.load(trace.machine_id), trace)
        with TraceStore(tmp_path / "s") as store:
            rec = store.last_recovery
            assert rec.samples_from_snapshots == trace.n_samples
            assert rec.samples_replayed == 0
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_append_after_compact(self, tmp_path):
        trace = make_trace(n=600)
        first, second, third = chunks_of(trace, 200)
        with TraceStore(tmp_path / "s") as store:
            store.append(trace.machine_id, first)
            store.append(trace.machine_id, second)
            store.compact()
            store.append(trace.machine_id, third)
        with TraceStore(tmp_path / "s") as store:
            assert_traces_equal(store.load(trace.machine_id), trace)


class TestLifecycleAndNaming:
    def test_closed_store_rejects_writes(self, tmp_path):
        trace = make_trace(n=10)
        store = TraceStore(tmp_path / "s")
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.append(trace.machine_id, trace)

    def test_hostile_machine_ids_round_trip(self, tmp_path):
        ids = ["lab/03.cs", "..", "host:9 weird", "ünïcode"]
        with TraceStore(tmp_path / "s") as store:
            for i, mid in enumerate(ids):
                store.append(mid, make_trace(mid=mid, n=40, seed=i))
        with TraceStore(tmp_path / "s") as store:
            assert store.machine_ids == sorted(ids)
            for i, mid in enumerate(ids):
                assert_traces_equal(store.load(mid), make_trace(mid=mid, n=40, seed=i))
        # Every machine directory stayed inside the store root.
        root = (tmp_path / "s").resolve()
        for sub in (tmp_path / "s" / "machines").iterdir():
            assert sub.resolve().is_relative_to(root)

    def test_contains_len_n_samples(self, tmp_path):
        trace = make_trace(n=30)
        with TraceStore(tmp_path / "s") as store:
            store.append(trace.machine_id, trace)
            assert trace.machine_id in store
            assert "ghost" not in store
            assert len(store) == 1
            assert store.n_samples(trace.machine_id) == 30

    def test_interval_sync_flushes(self, tmp_path):
        trace = make_trace(n=80)
        with TraceStore(
            tmp_path / "s", StoreConfig(fsync="interval:3600")
        ) as store:
            res = store.append(trace.machine_id, trace)
            assert res.durable is False
            store.sync()  # explicit flush of the interval lag
        with TraceStore(tmp_path / "s") as store:
            assert_traces_equal(store.load(trace.machine_id), trace)

    def test_background_compactor_runs(self, tmp_path):
        import time

        trace = make_trace(n=2000)
        cfg = StoreConfig(
            fsync="never",
            auto_compact_interval_s=0.05,
            compact_min_wal_bytes=1024,
        )
        with TraceStore(tmp_path / "s", cfg) as store:
            for chunk in chunks_of(trace, 100):
                store.append(trace.machine_id, chunk)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if store.stat()[0].snapshot_samples == trace.n_samples:
                    break
                time.sleep(0.05)
            assert store.stat()[0].snapshot_samples == trace.n_samples
            assert_traces_equal(store.load(trace.machine_id), trace)
