"""Byte-level tests of the segment log: framing, fsync, torn tails."""

import struct

import pytest

from repro.store.wal import (
    HEADER_SIZE,
    MAX_PAYLOAD_BYTES,
    SEGMENT_MAGIC,
    FsyncPolicy,
    SegmentWriter,
    iter_records,
    recover_segment,
)


class TestFsyncPolicy:
    def test_parse_modes(self):
        assert FsyncPolicy.parse("always").mode == "always"
        assert FsyncPolicy.parse("never").mode == "never"
        p = FsyncPolicy.parse("interval:2.5")
        assert p.mode == "interval"
        assert p.interval_s == 2.5

    def test_parse_passthrough(self):
        p = FsyncPolicy(mode="always")
        assert FsyncPolicy.parse(p) is p

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FsyncPolicy.parse("sometimes")

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            FsyncPolicy.parse("interval:0")


class TestSegmentWriter:
    def test_fresh_segment_has_header(self, tmp_path):
        path = tmp_path / "seg.wal"
        with SegmentWriter(path):
            pass
        data = path.read_bytes()
        assert data[:4] == SEGMENT_MAGIC
        assert len(data) == HEADER_SIZE

    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "seg.wal"
        payloads = [b"alpha", b"", b"\x00" * 100, b"last"]
        with SegmentWriter(path, fsync="never") as w:
            for p in payloads:
                w.append(p)
        assert list(iter_records(path)) == payloads

    def test_always_policy_acks_durable(self, tmp_path):
        with SegmentWriter(tmp_path / "s.wal", fsync="always") as w:
            assert w.append(b"x") is True

    def test_never_policy_acks_not_durable(self, tmp_path):
        with SegmentWriter(tmp_path / "s.wal", fsync="never") as w:
            assert w.append(b"x") is False

    def test_oversized_payload_rejected(self, tmp_path):
        with SegmentWriter(tmp_path / "s.wal") as w:
            with pytest.raises(ValueError):
                w.append(b"\x00" * (MAX_PAYLOAD_BYTES + 1))

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "seg.wal"
        with SegmentWriter(path, fsync="never") as w:
            w.append(b"one")
        with SegmentWriter(path, fsync="never") as w:
            w.append(b"two")
        assert list(iter_records(path)) == [b"one", b"two"]


class TestRecovery:
    def _write(self, path, payloads):
        with SegmentWriter(path, fsync="never") as w:
            for p in payloads:
                w.append(p)

    def test_clean_segment_untouched(self, tmp_path):
        path = tmp_path / "seg.wal"
        self._write(path, [b"a", b"b"])
        size = path.stat().st_size
        rec = recover_segment(path)
        assert rec.payloads == [b"a", b"b"]
        assert rec.truncated_bytes == 0
        assert path.stat().st_size == size

    def test_torn_frame_truncated(self, tmp_path):
        path = tmp_path / "seg.wal"
        self._write(path, [b"kept"])
        with open(path, "ab") as fh:
            fh.write(b"\x07\x00")  # half a frame header
        rec = recover_segment(path)
        assert rec.payloads == [b"kept"]
        assert rec.truncated_bytes == 2
        # The file is append-ready again.
        with SegmentWriter(path, fsync="never") as w:
            w.append(b"after")
        assert list(iter_records(path)) == [b"kept", b"after"]

    def test_torn_payload_truncated(self, tmp_path):
        path = tmp_path / "seg.wal"
        self._write(path, [b"kept"])
        with open(path, "ab") as fh:
            # Frame promises 100 bytes, only 3 arrive (crash mid-write).
            fh.write(struct.pack("<II", 100, 0) + b"abc")
        rec = recover_segment(path)
        assert rec.payloads == [b"kept"]
        assert rec.truncated_bytes == 8 + 3

    def test_corrupt_crc_drops_tail(self, tmp_path):
        path = tmp_path / "seg.wal"
        self._write(path, [b"good", b"flipped"])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a bit inside the last payload
        path.write_bytes(data)
        rec = recover_segment(path)
        assert rec.payloads == [b"good"]
        assert rec.truncated_bytes > 0

    def test_insane_length_prefix_is_corruption(self, tmp_path):
        path = tmp_path / "seg.wal"
        self._write(path, [b"good"])
        with open(path, "ab") as fh:
            fh.write(struct.pack("<II", MAX_PAYLOAD_BYTES + 1, 0))
        rec = recover_segment(path)
        assert rec.payloads == [b"good"]

    def test_corrupt_header_resets_file(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        rec = recover_segment(path)
        assert rec.payloads == []
        assert rec.truncated_bytes == 24
        assert path.stat().st_size == 0
        # A writer re-initializes the empty file.
        with SegmentWriter(path, fsync="never") as w:
            w.append(b"reborn")
        assert list(iter_records(path)) == [b"reborn"]

    def test_short_header_resets_file(self, tmp_path):
        path = tmp_path / "seg.wal"
        path.write_bytes(b"RT")  # crash between open and header write
        rec = recover_segment(path)
        assert rec.payloads == []
        assert path.stat().st_size == 0
