"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.experiment == "fig4"
        assert args.scale == "quick"
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig4", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "emp-cpu" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_trace_with_csv_out(self, tmp_path, capsys):
        assert main(["run", "trace", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "TRACE" in out
        assert list(tmp_path.glob("trace_*.csv"))

    def test_synthesize_and_predict(self, tmp_path, capsys):
        assert (
            main([
                "synthesize", "--machines", "1", "--days", "14",
                "--period", "60", "--out", str(tmp_path), "--seed", "3",
            ])
            == 0
        )
        assert (tmp_path / "lab-00.npz").exists()
        capsys.readouterr()
        assert (
            main([
                "predict", "--trace", str(tmp_path / "lab-00.npz"),
                "--start-hour", "9", "--hours", "2",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "TR:" in out and "lab-00" in out

    def test_predict_weekend(self, tmp_path, capsys):
        main([
            "synthesize", "--machines", "1", "--days", "14",
            "--period", "60", "--out", str(tmp_path),
        ])
        capsys.readouterr()
        assert (
            main([
                "predict", "--trace", str(tmp_path / "lab-00.npz"), "--weekend",
            ])
            == 0
        )
        assert "weekend" in capsys.readouterr().out

    def test_synthesize_unknown_profile(self, tmp_path, capsys):
        assert (
            main(["synthesize", "--profile", "mainframe", "--out", str(tmp_path)])
            == 2
        )
        assert "unknown profile" in capsys.readouterr().err
