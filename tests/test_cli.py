"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _run_in_tmp_dir(tmp_path, monkeypatch):
    # run/predict write a .repro-metrics.json snapshot to the working
    # directory by default; keep test runs from littering the repo root.
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig4"])
        assert args.experiment == "fig4"
        assert args.scale == "quick"
        assert args.seed == 0

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig4", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "emp-cpu" in out

    def test_list_handles_missing_docstring(self, monkeypatch, capsys):
        import types

        from repro.bench.experiments import REGISTRY

        bare = types.ModuleType("bare_experiment")  # __doc__ is None
        empty = types.ModuleType("empty_experiment")
        empty.__doc__ = "   \n  "
        monkeypatch.setitem(REGISTRY, "bare", bare)
        monkeypatch.setitem(REGISTRY, "empty", empty)
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert out.count("(no description)") == 2

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_trace_with_csv_out(self, tmp_path, capsys):
        assert main(["run", "trace", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "TRACE" in out
        assert list(tmp_path.glob("trace_*.csv"))

    def test_synthesize_and_predict(self, tmp_path, capsys):
        assert (
            main([
                "synthesize", "--machines", "1", "--days", "14",
                "--period", "60", "--out", str(tmp_path), "--seed", "3",
            ])
            == 0
        )
        assert (tmp_path / "lab-00.npz").exists()
        capsys.readouterr()
        assert (
            main([
                "predict", "--trace", str(tmp_path / "lab-00.npz"),
                "--start-hour", "9", "--hours", "2",
            ])
            == 0
        )
        out = capsys.readouterr().out
        assert "TR:" in out and "lab-00" in out

    def test_predict_weekend(self, tmp_path, capsys):
        main([
            "synthesize", "--machines", "1", "--days", "14",
            "--period", "60", "--out", str(tmp_path),
        ])
        capsys.readouterr()
        assert (
            main([
                "predict", "--trace", str(tmp_path / "lab-00.npz"), "--weekend",
            ])
            == 0
        )
        assert "weekend" in capsys.readouterr().out

    def test_synthesize_unknown_profile(self, tmp_path, capsys):
        assert (
            main(["synthesize", "--profile", "mainframe", "--out", str(tmp_path)])
            == 2
        )
        assert "unknown profile" in capsys.readouterr().err


class _BrokenExperiment:
    """Stand-in experiment module whose run() always raises."""

    __doc__ = "always fails"

    @staticmethod
    def run(scale="quick", *, seed=0):
        raise RuntimeError("synthetic failure")


class TestFailureExit:
    def test_run_returns_nonzero_and_emits_event(self, monkeypatch, capsys):
        from repro.bench.experiments import REGISTRY
        from repro.obs.events import scoped_event_log
        from repro.obs.metrics import scoped_registry

        monkeypatch.setitem(REGISTRY, "broken", _BrokenExperiment)
        with scoped_registry() as reg, scoped_event_log() as log:
            assert main(["run", "broken"]) == 1
            err = capsys.readouterr().err
            assert "[broken FAILED]" in err
            assert "synthetic failure" in err
            events = log.events("experiment_failed")
            assert len(events) == 1
            assert events[0].fields["experiment"] == "broken"
            assert (
                reg.get("experiment_runs_total")
                .labels(experiment="broken", status="error")
                .value
                == 1.0
            )

    def test_one_failure_does_not_hide_other_experiments(self, monkeypatch, capsys):
        from repro.bench import experiments
        from repro.obs.events import scoped_event_log
        from repro.obs.metrics import scoped_registry

        registry = {"broken": _BrokenExperiment, "trace": experiments.REGISTRY["trace"]}
        monkeypatch.setattr(experiments, "REGISTRY", registry)
        with scoped_registry(), scoped_event_log():
            assert main(["run", "all"]) == 1
            out = capsys.readouterr().out
            assert "TRACE" in out  # the healthy experiment still ran


class TestMetricsSnapshot:
    def _synthesize(self, tmp_path):
        main([
            "synthesize", "--machines", "1", "--days", "14",
            "--period", "60", "--out", str(tmp_path), "--seed", "3",
        ])
        return tmp_path / "lab-00.npz"

    def test_predict_writes_snapshot(self, tmp_path, capsys):
        from repro.obs.metrics import scoped_registry

        trace = self._synthesize(tmp_path)
        snap = tmp_path / "metrics.json"
        with scoped_registry():
            assert (
                main([
                    "predict", "--trace", str(trace),
                    "--metrics-out", str(snap),
                ])
                == 0
            )
        assert snap.exists()
        state = json.loads(snap.read_text())
        assert state["version"] == 1
        names = {m["name"] for m in state["metrics"]}
        # the catalog is materialized even where nothing was recorded
        assert "tr_query_latency_seconds" in names
        assert "incremental_cache_hits_total" in names
        assert "monitor_cpu_cost_seconds_total" in names

    def test_obs_renders_snapshot_prometheus(self, tmp_path, capsys):
        from repro.obs.metrics import scoped_registry

        trace = self._synthesize(tmp_path)
        snap = tmp_path / "metrics.json"
        capsys.readouterr()
        with scoped_registry():
            main(["predict", "--trace", str(trace), "--metrics-out", str(snap)])
        capsys.readouterr()
        assert main(["obs", "--format", "prometheus", "--metrics-in", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE tr_query_latency_seconds histogram" in out
        assert 'tr_query_latency_seconds_count{path="batch"} 1' in out
        assert "incremental_cache_hits_total 0" in out
        assert "incremental_cache_misses_total 0" in out
        assert "monitor_cpu_cost_seconds_total 0" in out

    def test_obs_table_format(self, tmp_path, capsys):
        trace = self._synthesize(tmp_path)
        snap = tmp_path / "metrics.json"
        capsys.readouterr()
        from repro.obs.metrics import scoped_registry

        with scoped_registry():
            main(["predict", "--trace", str(trace), "--metrics-out", str(snap)])
        capsys.readouterr()
        assert main(["obs", "--metrics-in", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "metric" in out and "tr_query_latency_seconds" in out

    def test_obs_without_snapshot_renders_zero_catalog(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["obs", "--format", "prometheus", "--metrics-in", str(missing)]) == 0
        captured = capsys.readouterr()
        assert "no snapshot" in captured.err
        assert "tr_query_latency_seconds" in captured.out
