"""``audit watch`` / ``adapt watch`` against a disappearing server.

A watcher is typically left running in a terminal; when the server it
polls dies mid-watch, the command must exit non-zero and print the
actionable unreachable-target hint — not loop printing stack traces or
exit 0 as if the watch completed.
"""

import threading
import time

import pytest

from repro.cli import main
from repro.serve.client import ServeRequestError

from tests.serve.test_adapt_ops import adapt_server
from tests.serve.test_quality import audited_server


def kill_after(srv, delay):
    timer = threading.Timer(delay, srv.stop)
    timer.start()
    return timer


def watch_args(kind, port, *, count=50, interval=0.2):
    return [
        kind, "watch", "--port", str(port),
        "--count", str(count), "--interval", str(interval),
    ]


class TestAuditWatch:
    def test_exits_nonzero_when_no_server_listens(self, capsys):
        # Grab a port nobody is listening on by binding and releasing it.
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        assert main(watch_args("audit", port)) == 1
        err = capsys.readouterr().err
        assert "cannot reach" in err
        assert "hint:" in err

    def test_exits_nonzero_when_the_server_dies_mid_watch(self, capsys):
        srv = audited_server()
        timer = kill_after(srv, 0.5)
        try:
            rc = main(watch_args("audit", srv.port))
        finally:
            timer.join()
        assert rc == 1
        out = capsys.readouterr()
        assert "resolved" in out.out          # at least one tick printed
        assert "cannot reach" in out.err
        assert "hint:" in out.err

    def test_refused_request_counts_as_unreachable(self, capsys, monkeypatch):
        """A server that answers with an error (draining, shedding) is,
        to a watcher, the same as one that disappeared."""
        srv = audited_server()
        try:
            from repro.serve import client as client_mod
            from repro.serve.protocol import Response

            refused = ServeRequestError(Response.failure(
                "w1", "shed", "DispatchError", "queue full, draining"
            ))
            monkeypatch.setattr(
                client_mod.ServeClient, "quality",
                lambda self, machine=None: (_ for _ in ()).throw(refused),
            )
            rc = main(watch_args("audit", srv.port, count=3))
        finally:
            srv.stop()
        assert rc == 1
        err = capsys.readouterr().err
        assert "refused the request" in err
        assert "hint:" in err


class TestAdaptWatch:
    def test_exits_nonzero_when_the_server_dies_mid_watch(self, capsys):
        srv = adapt_server()
        timer = kill_after(srv, 0.5)
        try:
            rc = main(watch_args("adapt", srv.port))
        finally:
            timer.join()
        assert rc == 1
        out = capsys.readouterr()
        assert "retunes" in out.out           # at least one tick printed
        assert "cannot reach" in out.err
        assert "hint:" in out.err

    def test_exits_nonzero_when_adapt_is_not_enabled(self, capsys):
        srv = audited_server()  # audit on, adapt off
        try:
            rc = main(watch_args("adapt", srv.port, count=3))
        finally:
            srv.stop()
        assert rc == 1
        assert "not enabled" in capsys.readouterr().err

    def test_completed_watch_exits_zero(self, capsys):
        srv = adapt_server()
        try:
            rc = main(watch_args("adapt", srv.port, count=2, interval=0.05))
        finally:
            srv.stop()
        assert rc == 0
        assert capsys.readouterr().out.count("retunes") == 2
