"""Documentation/code consistency checks.

A reproduction lives or dies by its paper-to-code map staying accurate;
these tests pin the documentation to the code so they cannot drift
silently.
"""

from pathlib import Path

import pytest

from repro.bench.experiments import REGISTRY
from repro.traces.profiles import PROFILES

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_md():
    return (REPO / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (REPO / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme_md():
    return (REPO / "README.md").read_text()


class TestDesignDoc:
    def test_exists_with_substitution_table(self, design_md):
        assert "substitution" in design_md.lower()
        assert "Th1" in design_md and "Th2" in design_md

    def test_every_experiment_documented(self, design_md):
        # Registry keys appear in DESIGN.md's experiment index (ids are
        # uppercased there; fig7 is documented as TAB1+FIG7).
        aliases = {
            "fig7": "TAB1+FIG7",
            "emp-cpu": "EMP-CPU",
            "emp-mem": "EMP-MEM",
            "ovh": "OVH",
            "trace": "TRACE",
            "e2e": "E2E",
            "ablations": "ABL",
            "profiles": "PROF",
            "char": "CHAR",
            "cal": "CAL",
            "size": "SIZE",
            "load": "LOAD",
        }
        for key in REGISTRY:
            token = aliases.get(key, key.upper())
            assert token in design_md, f"{key} missing from DESIGN.md"

    def test_paper_verification_statement(self, design_md):
        # The task requires confirming the supplied text is the right paper.
        assert "verified" in design_md.lower()
        assert "HPDC 2006" in design_md


class TestExperimentsDoc:
    def test_paper_vs_measured_rows(self, experiments_md):
        for marker in ("FIG4", "FIG5", "FIG6", "FIG7", "FIG8",
                       "EMP-CPU", "EMP-MEM", "OVH", "TRACE"):
            assert marker in experiments_md, marker

    def test_records_paper_thresholds(self, experiments_md):
        assert "0.20" in experiments_md and "0.60" in experiments_md

    def test_mentions_reproduction_command(self, experiments_md):
        assert "repro-fgcs run" in experiments_md


class TestReadme:
    def test_mentions_paper(self, readme_md):
        assert "HPDC 2006" in readme_md
        assert "Eigenmann" in readme_md

    def test_every_example_listed_exists(self, readme_md):
        import re

        for match in re.finditer(r"examples/(\w+)\.py", readme_md):
            assert (REPO / "examples" / f"{match.group(1)}.py").exists(), match.group(0)

    def test_profiles_documented_in_cli_help(self):
        # The CLI's synthesize --profile help must cover the registry.
        from repro.cli import build_parser

        parser = build_parser()
        # No crash and the profile registry is non-trivial.
        assert set(PROFILES) == {"student-lab", "office-desktop", "server-room"}


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        [p.stem for p in (REPO / "examples").glob("*.py")],
    )
    def test_example_compiles(self, name):
        import py_compile

        py_compile.compile(str(REPO / "examples" / f"{name}.py"), doraise=True)
