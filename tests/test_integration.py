"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro.core import (
    ClockWindow,
    DayType,
    EstimatorConfig,
    StateClassifier,
    TemporalReliabilityPredictor,
    empirical_tr,
    relative_error,
)
from repro.core.windows import SECONDS_PER_DAY, AbsoluteWindow
from repro.service import AvailabilityService
from repro.sim import (
    FgcsTestbed,
    PredictiveIntervalCheckpointing,
    PredictivePolicy,
    WorkloadSpec,
    group_workload,
    run_workload,
)
from repro.traces.io import load_traceset, save_traceset
from repro.traces.noise import NoiseSpec, inject_noise
from repro.traces.synthesis import synthesize_testbed


class TestPersistencePipeline:
    """synthesize -> save -> load -> predict: identical results."""

    def test_round_trip_preserves_predictions(self, tmp_path):
        testbed = synthesize_testbed(2, n_days=14, sample_period=60.0, seed=31)
        save_traceset(testbed, tmp_path / "bed")
        loaded = load_traceset(tmp_path / "bed")
        cw = ClockWindow.from_hours(10, 3)
        cfg = EstimatorConfig(step_multiple=5)
        for mid in testbed.machine_ids:
            a = TemporalReliabilityPredictor(testbed[mid], estimator_config=cfg)
            b = TemporalReliabilityPredictor(loaded[mid], estimator_config=cfg)
            assert a.predict(cw, DayType.WEEKDAY) == b.predict(cw, DayType.WEEKDAY)


class TestPredictionPipeline:
    """The paper's core loop on a fresh testbed."""

    def test_train_test_prediction_bounds(self):
        testbed = synthesize_testbed(2, n_days=28, sample_period=60.0, seed=33)
        clf = StateClassifier()
        cfg = EstimatorConfig(step_multiple=5)
        errors = []
        for trace in testbed:
            train, test = trace.split_by_ratio(0.5)
            predictor = TemporalReliabilityPredictor(train, estimator_config=cfg)
            for h in (2, 9, 14, 20):
                cw = ClockWindow.from_hours(h, 2)
                tr = predictor.predict(cw, DayType.WEEKDAY)
                emp = empirical_tr(test, clf, cw, DayType.WEEKDAY, step_multiple=5)
                err = relative_error(tr, emp.value)
                if np.isfinite(err):
                    errors.append(err)
        assert errors
        # Predictions are informative: clearly better than always
        # predicting 50%.
        assert float(np.mean(errors)) < 0.6

    def test_noise_injection_perturbs_only_target_window(self):
        testbed = synthesize_testbed(1, n_days=28, sample_period=60.0, seed=35)
        trace = testbed["lab-00"]
        cfg = EstimatorConfig(step_multiple=5)
        clean = TemporalReliabilityPredictor(trace, estimator_config=cfg)
        noisy_trace = inject_noise(trace, NoiseSpec(n_events=8), rng=2)
        noisy = TemporalReliabilityPredictor(noisy_trace, estimator_config=cfg)
        # 8:00 windows move...
        cw_hit = ClockWindow.from_hours(8, 1)
        assert noisy.predict(cw_hit, DayType.WEEKDAY) < clean.predict(
            cw_hit, DayType.WEEKDAY
        )
        # ...night windows (far before the injections) do not.
        cw_miss = ClockWindow.from_hours(2, 1)
        assert noisy.predict(cw_miss, DayType.WEEKDAY) == pytest.approx(
            clean.predict(cw_miss, DayType.WEEKDAY), abs=1e-9
        )


class TestSimulatorPipeline:
    """iShare simulation with the extended workload + checkpoint stack."""

    def test_group_workload_with_predictive_checkpointing(self):
        traces = synthesize_testbed(3, n_days=21, sample_period=30.0, seed=37)
        bed = FgcsTestbed(traces, monitor_period=30.0)
        groups = group_workload(
            WorkloadSpec(
                n_jobs=3,
                start=bed.start_time + 3600.0,
                span=2 * SECONDS_PER_DAY,
                seed=4,
            ),
            group_size_range=(2, 3),
            cpu_seconds_range=(900.0, 2700.0),
        )
        scheduler = bed.make_scheduler(
            PredictivePolicy(),
            checkpoint_policy=PredictiveIntervalCheckpointing(
                cost_cpu_seconds=10.0, refresh_interval=300.0
            ),
        )
        for t, group in groups:
            scheduler.submit_group_at(group, t)
        bed.engine.run_until(bed.end_time - 1.0)
        for _t, group in groups:
            assert group.done, group.group_id
        rts = scheduler.group_response_times()
        assert all(rt is not None and rt > 0 for rt in rts.values())

    def test_state_manager_history_feeds_service(self):
        """Live monitor logs flow into the service's predictions."""
        traces = synthesize_testbed(2, n_days=14, sample_period=60.0, seed=39)
        bed = FgcsTestbed(traces, monitor_period=60.0)
        bed.engine.run_until(bed.start_time + 2 * SECONDS_PER_DAY)
        service = AvailabilityService(
            estimator_config=EstimatorConfig(step_multiple=5)
        )
        for stack in bed.hosts:
            service.register(stack.manager.history(bed.engine.now))
        window = AbsoluteWindow(bed.engine.now + 3600.0, 2 * 3600.0)
        trs = service.predict_all(window)
        assert set(trs) == set(bed.machine_ids)
        assert all(0.0 <= tr <= 1.0 for tr in trs.values())
        ranking = service.rank(window)
        assert len(ranking) == 2


class TestConsistencyAcrossSolvers:
    """Discrete, profile and continuous solvers agree on simple kernels."""

    def test_three_solvers_on_synthetic_kernel(self, long_trace):
        from repro.core.ctsmp import ContinuousSmp
        from repro.core.smp import temporal_reliability, temporal_reliability_profile

        pred = TemporalReliabilityPredictor(
            long_trace, estimator_config=EstimatorConfig(step_multiple=10)
        )
        cw = ClockWindow.from_hours(9, 3)
        kernel = pred.kernel(cw, DayType.WEEKDAY)
        tr_point = temporal_reliability(kernel, 1)
        tr_profile = temporal_reliability_profile(kernel, 1)[-1]
        tr_ct = ContinuousSmp(kernel).temporal_reliability(init_state=1)
        assert tr_profile == pytest.approx(tr_point, abs=1e-12)
        assert tr_ct == pytest.approx(tr_point, abs=0.35)  # approximation
