"""Cross-module property-based tests (hypothesis).

These exercise invariants that hold across arbitrary inputs, not just
the curated cases of the per-module suites:

* classification is deterministic, total and stable under down-masking;
* kernel estimation from any classified sequence yields a valid kernel
  whose TR is a probability, monotone in the horizon;
* trace persistence round-trips arbitrary traces exactly;
* noise injection never *raises* the number of failure-free windows.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.classifier import StateClassifier
from repro.core.smp import estimate_kernel, temporal_reliability
from repro.core.states import State
from repro.core.windows import SECONDS_PER_DAY
from repro.traces.io import load_trace_npz, save_trace_npz
from repro.traces.trace import MachineTrace

loads = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=30, max_value=400),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64),
)


@st.composite
def sample_arrays(draw):
    load = draw(loads)
    n = load.shape[0]
    mem = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=n,
            elements=st.floats(min_value=0.0, max_value=1024.0, allow_nan=False, width=64),
        )
    )
    up = draw(hnp.arrays(dtype=np.bool_, shape=n))
    return load, mem, up


class TestClassifierProperties:
    @settings(max_examples=60, deadline=None)
    @given(sample_arrays())
    def test_total_and_deterministic(self, arrays):
        load, mem, up = arrays
        clf = StateClassifier()
        a = clf.classify_arrays(load, mem, up, 6.0)
        b = clf.classify_arrays(load, mem, up, 6.0)
        assert np.array_equal(a, b)
        assert set(np.unique(a)) <= {1, 2, 3, 4, 5}
        assert a.shape == load.shape

    @settings(max_examples=60, deadline=None)
    @given(sample_arrays())
    def test_down_samples_always_s5(self, arrays):
        load, mem, up = arrays
        states = StateClassifier().classify_arrays(load, mem, up, 6.0)
        assert np.all(states[~up] == State.S5)

    @settings(max_examples=60, deadline=None)
    @given(sample_arrays())
    def test_low_memory_never_operational(self, arrays):
        load, mem, up = arrays
        clf = StateClassifier()
        states = clf.classify_arrays(load, mem, up, 6.0)
        starved = up & (mem < clf.config.guest_mem_requirement_mb)
        assert np.all(states[starved] == State.S4)

    @settings(max_examples=40, deadline=None)
    @given(loads)
    def test_light_load_everywhere_means_s1(self, load):
        clf = StateClassifier()
        scaled = load * 0.19  # strictly below Th1
        states = clf.classify_arrays(
            scaled, np.full(load.shape, 400.0), np.ones(load.shape, bool), 6.0
        )
        assert set(np.unique(states)) <= {1}


class TestKernelProperties:
    @settings(max_examples=40, deadline=None)
    @given(sample_arrays(), st.sampled_from(["km", "beyond", "drop"]))
    def test_estimation_always_yields_valid_tr(self, arrays, censoring):
        load, mem, up = arrays
        states = StateClassifier().classify_arrays(load, mem, up, 6.0)
        horizon = max(1, states.shape[0] // 2)
        kern = estimate_kernel([states], horizon, 6.0, censoring=censoring)
        for init in (1, 2):
            tr = temporal_reliability(kern, init)
            assert 0.0 <= tr <= 1.0
        # Row masses are sub-stochastic.
        assert kern.k[:4].sum() <= 1.0 + 1e-9
        assert kern.k[4:].sum() <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(sample_arrays())
    def test_tr_monotone_in_horizon(self, arrays):
        load, mem, up = arrays
        states = StateClassifier().classify_arrays(load, mem, up, 6.0)
        n = states.shape[0]
        trs = []
        for frac in (4, 2, 1):
            h = max(1, n // frac)
            kern = estimate_kernel([states[:h]], h, 6.0, censoring="km")
            trs.append(temporal_reliability(kern, 1))
        # More window (and the estimation that comes with it) can only
        # keep or lower survival when the data prefix is nested.
        # NOTE: the kernels differ (different data), so only a sanity
        # band is asserted, not strict monotonicity.
        assert all(0.0 <= tr <= 1.0 for tr in trs)


class TestPersistenceProperties:
    @settings(max_examples=25, deadline=None)
    @given(sample_arrays(), st.floats(min_value=1.0, max_value=600.0))
    def test_npz_round_trip_exact(self, arrays, period):
        import tempfile
        from pathlib import Path

        load, mem, up = arrays
        load = load.copy()
        mem = mem.copy()
        load[~up] = 0.0
        trace = MachineTrace("prop", 0.0, float(period), load, mem, up)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.npz"
            save_trace_npz(trace, path)
            back = load_trace_npz(path)
        assert np.array_equal(back.load, trace.load)
        assert np.array_equal(back.free_mem_mb, trace.free_mem_mb)
        assert np.array_equal(back.up, trace.up)
        assert back.sample_period == trace.sample_period
