"""Tests for the multi-machine availability service."""

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.predictor import TemporalReliabilityPredictor
from repro.core.states import State
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


def idle_trace(mid, n_days=14, period=60.0, fail_hour=None):
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    if fail_hour is not None:
        i0 = int(fail_hour * 3600 / period)
        for d in range(n_days):
            load[d * n_per_day + i0 : d * n_per_day + i0 + 15] = 0.95
    return MachineTrace(mid, 0.0, period, load, np.full(load.shape, 400.0))


@pytest.fixture()
def service():
    svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    svc.register(idle_trace("safe"))
    svc.register(idle_trace("risky", fail_hour=9.0))
    return svc


WINDOW = ClockWindow.from_hours(8, 3)


class TestRegistry:
    def test_membership(self, service):
        assert len(service) == 2
        assert "safe" in service and "ghost" not in service
        assert service.machine_ids == ["safe", "risky"]

    def test_unregister(self, service):
        service.unregister("safe")
        assert "safe" not in service
        with pytest.raises(KeyError):
            service.predict("safe", WINDOW, DayType.WEEKDAY)

    def test_unknown_machine(self, service):
        with pytest.raises(KeyError):
            service.predict("ghost", WINDOW, DayType.WEEKDAY)

    def test_reregister_invalidates(self, service):
        before = service.predict("safe", WINDOW, DayType.WEEKDAY)
        service.register(idle_trace("safe", fail_hour=9.0))
        after = service.predict("safe", WINDOW, DayType.WEEKDAY)
        assert after < before

    def test_reregister_emits_machine_replaced_event(self, service):
        from repro.obs.events import scoped_event_log
        from repro.obs.metrics import scoped_registry

        with scoped_registry(), scoped_event_log() as log:
            service.register(idle_trace("safe", fail_hour=9.0))
            events = log.events("machine_replaced")
            assert len(events) == 1
            assert events[0].severity == "warning"
            assert events[0].fields["machine_id"] == "safe"
            # A first-time registration is not a replacement.
            service.register(idle_trace("brand-new"))
            assert len(log.events("machine_replaced")) == 1

    def test_registered_machines_gauge_tracks_registry(self):
        from repro.obs.metrics import scoped_registry

        with scoped_registry() as reg:
            svc = AvailabilityService()
            svc.register(idle_trace("a"))
            svc.register(idle_trace("b"))
            gauge = reg.get("service_registered_machines")
            assert gauge.value == 2.0
            svc.unregister("a")
            assert gauge.value == 1.0

    def test_extend_history_accepts_growth(self, service):
        grown = idle_trace("safe", n_days=21)
        service.extend_history(grown)
        assert service.predict("safe", WINDOW, DayType.WEEKDAY) == pytest.approx(1.0)

    def test_extend_history_rejects_mismatch(self, service):
        other = MachineTrace(
            "safe", 0.0, 30.0, np.full(100, 0.05), np.full(100, 400.0)
        )
        with pytest.raises(ValueError):
            service.extend_history(other)

    def test_extend_history_of_unknown_registers(self):
        svc = AvailabilityService()
        svc.extend_history(idle_trace("new"))
        assert "new" in svc

    def test_extend_history_rejects_non_prefix_data(self, service):
        # Same grid and longer, but the overlapping samples differ — the
        # kept per-day caches would silently serve stale observations.
        n = 21 * 1440
        impostor = MachineTrace(
            "safe", 0.0, 60.0, np.full(n, 0.5), np.full(n, 400.0)
        )
        with pytest.raises(ValueError, match="not a prefix-extension"):
            service.extend_history(impostor)

    def test_extend_history_rejects_changed_tail_sample(self, service):
        grown = idle_trace("safe", n_days=21)
        old_n = idle_trace("safe").n_samples
        grown.load[old_n - 1] = 0.75  # corrupt the last overlapping sample
        with pytest.raises(ValueError, match=f"sample {old_n - 1}"):
            service.extend_history(grown)


class TestQueries:
    def test_predict_matches_batch(self, service):
        batch = TemporalReliabilityPredictor(
            idle_trace("risky", fail_hour=9.0),
            estimator_config=EstimatorConfig(step_multiple=5),
        )
        assert service.predict("risky", WINDOW, DayType.WEEKDAY) == pytest.approx(
            batch.predict(WINDOW, DayType.WEEKDAY), abs=1e-12
        )

    def test_predict_all_and_rank(self, service):
        trs = service.predict_all(WINDOW, DayType.WEEKDAY)
        assert set(trs) == {"safe", "risky"}
        assert trs["safe"] > trs["risky"]
        ranking = service.rank(WINDOW, DayType.WEEKDAY)
        assert [r.machine_id for r in ranking] == ["safe", "risky"]
        assert ranking[0].tr >= ranking[1].tr

    def test_select_gang(self, service):
        chosen, survival = service.select(WINDOW, DayType.WEEKDAY, k=2)
        assert chosen[0] == "safe"
        assert survival == pytest.approx(
            service.predict("safe", WINDOW, DayType.WEEKDAY)
            * service.predict("risky", WINDOW, DayType.WEEKDAY)
        )

    def test_select_too_many(self, service):
        with pytest.raises(ValueError):
            service.select(WINDOW, DayType.WEEKDAY, k=5)

    def test_interval(self, service):
        iv = service.interval("risky", WINDOW, DayType.WEEKDAY, n_resamples=40, rng=1)
        assert 0.0 <= iv.lower <= iv.point <= iv.upper <= 1.0

    def test_explicit_init_state(self, service):
        assert service.predict("safe", WINDOW, DayType.WEEKDAY, init_state=State.S3) == 0.0

    def test_absolute_window(self, service):
        aw = WINDOW.on_day(15)  # a future Tuesday
        assert service.predict("safe", aw) == pytest.approx(1.0)


class TestReliableHorizon:
    def test_safe_machine_full_horizon(self, service):
        h = service.reliable_horizon(
            "safe", ClockWindow.from_hours(8, 5), DayType.WEEKDAY, tr_threshold=0.9
        )
        assert h == pytest.approx(5 * 3600.0)

    def test_risky_machine_truncates_before_failure(self, service):
        # The daily failure hits at 9:00; a window starting 8:00 is only
        # reliable for about an hour.
        h = service.reliable_horizon(
            "risky", ClockWindow.from_hours(8, 5), DayType.WEEKDAY, tr_threshold=0.9
        )
        assert 0.0 < h <= 1.25 * 3600.0

    def test_threshold_validation(self, service):
        with pytest.raises(ValueError):
            service.reliable_horizon(
                "safe", ClockWindow.from_hours(8, 5), DayType.WEEKDAY, tr_threshold=0.0
            )

    def test_requires_day_type_for_clock_window(self, service):
        with pytest.raises(ValueError):
            service.reliable_horizon("safe", ClockWindow.from_hours(8, 5))

    def test_monotone_in_threshold(self, service):
        hs = [
            service.reliable_horizon(
                "risky", ClockWindow.from_hours(8, 5), DayType.WEEKDAY, tr_threshold=th
            )
            for th in (0.5, 0.9, 0.99)
        ]
        assert hs[0] >= hs[1] >= hs[2]
