"""Thread-safety contract of AvailabilityService.predict.

The serving tier runs predictions on a ThreadPoolExecutor against one
shared service; these tests lock in that concurrent queries (a) return
exactly the serial results and (b) keep the incremental predictor's
cache statistics consistent (each (window, day) is classified once,
everything else is a hit).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.estimator import EstimatorConfig
from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.obs.metrics import scoped_registry
from repro.service import AvailabilityService
from repro.traces.trace import MachineTrace


def busy_trace(mid, seed, n_days=14, period=120.0):
    n_per_day = int(SECONDS_PER_DAY / period)
    rng = np.random.default_rng(seed)
    load = np.clip(rng.beta(2, 6, n_days * n_per_day), 0.0, 1.0)
    return MachineTrace(mid, 0.0, period, load, np.full(load.shape, 400.0))


def build_service():
    svc = AvailabilityService(estimator_config=EstimatorConfig(step_multiple=5))
    for i in range(4):
        svc.register(busy_trace(f"m{i}", seed=100 + i))
    return svc


WINDOWS = [ClockWindow.from_hours(h, 2.0) for h in (6.0, 9.0, 13.5, 20.0)]
QUERIES = [
    (f"m{i}", w, dt)
    for i in range(4)
    for w in WINDOWS
    for dt in (DayType.WEEKDAY, DayType.WEEKEND)
]


class TestConcurrentPredict:
    def test_results_equal_serial(self):
        serial_svc = build_service()
        serial = {
            (m, w, dt): serial_svc.predict(m, w, dt) for (m, w, dt) in QUERIES
        }

        concurrent_svc = build_service()
        start = threading.Barrier(8)

        def worker(offset):
            start.wait(timeout=10)
            out = {}
            # every worker hits every query, rotated so threads collide
            # on the same (machine, window) entries in different orders
            n = len(QUERIES)
            for j in range(n):
                q = QUERIES[(j + offset * 3) % n]
                out[q] = concurrent_svc.predict(*q)
            return out

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [f.result() for f in [pool.submit(worker, i) for i in range(8)]]

        for out in results:
            for q, tr in out.items():
                assert tr == pytest.approx(serial[q], abs=1e-12), q

    def test_cache_stats_not_corrupted(self):
        with scoped_registry() as reg:
            svc = build_service()
            start = threading.Barrier(8)

            def worker(offset):
                start.wait(timeout=10)
                n = len(QUERIES)
                for j in range(n):
                    svc.predict(*QUERIES[(j + offset * 5) % n])

            with ThreadPoolExecutor(max_workers=8) as pool:
                for f in [pool.submit(worker, i) for i in range(8)]:
                    f.result()

            predictor = svc._predictor
            hits = reg.get("incremental_cache_hits_total").value
            misses = reg.get("incremental_cache_misses_total").value
            # Each (machine, window, dtype, day) is classified exactly once
            # across all 8 threads; all other touches are hits.
            assert misses == predictor.days_classified
            assert hits == predictor.days_reused
            serial = build_service()
            for q in QUERIES:
                serial.predict(*q)
            assert predictor.days_classified == serial._predictor.days_classified
            total_touches = predictor.days_classified + predictor.days_reused
            eight_rounds = 8 * (
                serial._predictor.days_classified + serial._predictor.days_reused
            )
            assert total_touches == eight_rounds

    def test_concurrent_predict_with_register(self):
        svc = build_service()
        stop = threading.Event()
        errors = []

        def churn():
            i = 0
            while not stop.is_set():
                try:
                    svc.register(busy_trace(f"extra{i % 3}", seed=500 + i % 3))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                i += 1

        t = threading.Thread(target=churn)
        t.start()
        try:
            for _ in range(5):
                for q in QUERIES[:8]:
                    svc.predict(*q)
        finally:
            stop.set()
            t.join(timeout=10)
        assert not errors
