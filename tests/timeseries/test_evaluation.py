"""Tests for forecast-quality evaluation."""

import numpy as np
import pytest

from repro.timeseries.evaluation import compare_models, rolling_forecast_errors
from repro.timeseries.models import AutoRegressive, GlobalMean, Last


def ar1(n=600, phi=0.9, sigma=0.03, seed=0):
    rng = np.random.default_rng(seed)
    x = np.empty(n)
    x[0] = 0.4
    for t in range(1, n):
        x[t] = 0.4 + phi * (x[t - 1] - 0.4) + rng.normal(0, sigma)
    return np.clip(x, 0, 1)


class TestRollingErrors:
    def test_shapes_and_counts(self):
        errs = rolling_forecast_errors(
            lambda: Last(), ar1(), fit_length=100, horizon=20
        )
        assert errs.horizon == 20
        assert errs.mae.shape == (20,)
        assert errs.n_origins == (600 - 100 - 20) // 20 + 1
        assert errs.model_name == "LAST"

    def test_rmse_at_least_mae(self):
        errs = rolling_forecast_errors(
            lambda: AutoRegressive(4), ar1(), fit_length=100, horizon=10
        )
        assert np.all(errs.rmse >= errs.mae - 1e-12)

    def test_error_grows_with_horizon_for_persistent_series(self):
        errs = rolling_forecast_errors(
            lambda: Last(), ar1(phi=0.95, seed=3), fit_length=100, horizon=40
        )
        # On a mean-reverting series, LAST's error grows with look-ahead.
        assert errs.mae[-1] > errs.mae[0]

    def test_ar_beats_mean_short_term_on_ar_series(self):
        series = ar1(phi=0.9, seed=5)
        ar = rolling_forecast_errors(
            lambda: AutoRegressive(4), series, fit_length=150, horizon=10
        )
        mean = rolling_forecast_errors(
            lambda: GlobalMean(), series, fit_length=150, horizon=10
        )
        assert ar.mae[0] < mean.mae[0]

    def test_stride_controls_origins(self):
        a = rolling_forecast_errors(
            lambda: Last(), ar1(), fit_length=100, horizon=10, stride=10
        )
        b = rolling_forecast_errors(
            lambda: Last(), ar1(), fit_length=100, horizon=10, stride=50
        )
        assert a.n_origins > b.n_origins

    def test_validation(self):
        with pytest.raises(ValueError):
            rolling_forecast_errors(lambda: Last(), ar1(50), fit_length=45, horizon=10)
        with pytest.raises(ValueError):
            rolling_forecast_errors(lambda: Last(), ar1(), fit_length=1, horizon=10)
        with pytest.raises(ValueError):
            rolling_forecast_errors(
                lambda: Last(), ar1(), fit_length=100, horizon=10, stride=0
            )
        with pytest.raises(ValueError):
            rolling_forecast_errors(
                lambda: Last(), np.zeros((5, 2)), fit_length=2, horizon=1
            )


class TestCompareModels:
    def test_same_origins_for_all(self):
        results = compare_models(
            [lambda: Last(), lambda: GlobalMean()],
            ar1(),
            fit_length=100,
            horizon=10,
        )
        assert len(results) == 2
        assert results[0].n_origins == results[1].n_origins
