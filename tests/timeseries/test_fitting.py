"""Tests for the estimation routines (Yule-Walker, Hannan-Rissanen)."""

import numpy as np
import pytest

from repro.timeseries.fitting import (
    ar_residuals,
    autocovariance,
    hannan_rissanen,
    yule_walker,
)


def simulate_arma(n, phi=(), theta=(), mean=0.0, sigma=0.1, seed=0):
    rng = np.random.default_rng(seed)
    p, q = len(phi), len(theta)
    eps = rng.normal(0.0, sigma, n + 50)
    x = np.zeros(n + 50)
    for t in range(max(p, q), n + 50):
        x[t] = (
            sum(phi[i] * x[t - 1 - i] for i in range(p))
            + eps[t]
            + sum(theta[j] * eps[t - 1 - j] for j in range(q))
        )
    return x[50:] + mean


class TestAutocovariance:
    def test_lag0_is_variance(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        gamma = autocovariance(x, 1)
        assert gamma[0] == pytest.approx(np.var(x))

    def test_constant_series(self):
        gamma = autocovariance(np.full(10, 0.5), 3)
        assert np.allclose(gamma, 0.0)

    def test_maxlag_bound(self):
        with pytest.raises(ValueError):
            autocovariance(np.zeros(5), 5)

    def test_psd_property(self):
        # Biased autocovariances form a PSD Toeplitz matrix.
        rng = np.random.default_rng(0)
        x = rng.random(200)
        gamma = autocovariance(x, 10)
        from scipy.linalg import toeplitz

        eigvals = np.linalg.eigvalsh(toeplitz(gamma))
        assert eigvals.min() >= -1e-10


class TestYuleWalker:
    def test_recovers_ar2(self):
        x = simulate_arma(20000, phi=(0.5, 0.3), seed=1)
        phi, sigma2 = yule_walker(x, 2)
        assert phi[0] == pytest.approx(0.5, abs=0.05)
        assert phi[1] == pytest.approx(0.3, abs=0.05)
        assert sigma2 == pytest.approx(0.01, rel=0.2)

    def test_white_noise_has_small_coefficients(self):
        rng = np.random.default_rng(2)
        phi, _ = yule_walker(rng.normal(size=5000), 4)
        assert np.max(np.abs(phi)) < 0.1

    def test_constant_series_zero_phi(self):
        phi, sigma2 = yule_walker(np.full(50, 0.3), 3)
        assert np.allclose(phi, 0.0)
        assert sigma2 == 0.0

    def test_stationarity_of_fit(self):
        # Yule-Walker on biased autocovariances always yields a stable AR.
        rng = np.random.default_rng(3)
        for seed in range(5):
            x = np.random.default_rng(seed).random(100)
            phi, _ = yule_walker(x, 6)
            roots = np.roots(np.concatenate([[1.0], -phi]))
            assert np.all(np.abs(roots) < 1.0 + 1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            yule_walker(np.zeros(10), 0)
        with pytest.raises(ValueError):
            yule_walker(np.zeros(3), 5)


class TestArResiduals:
    def test_perfect_fit_residuals_zero(self):
        # x_t = 0.5 x_{t-1} exactly (after demeaning a geometric decay is
        # not exact, so use a zero-mean construction).
        x = 0.5 ** np.arange(20)
        x = x - x.mean()
        resid = ar_residuals(x + 0.0, np.array([0.5]))
        # The demeaned recursion is exact except for the mean shift; check
        # residuals are much smaller than the series scale.
        assert np.max(np.abs(resid[1:])) < np.max(np.abs(x))

    def test_empty_phi(self):
        x = np.array([1.0, 2.0, 3.0])
        resid = ar_residuals(x, np.zeros(0))
        assert np.allclose(resid, x - x.mean())


class TestHannanRissanen:
    def test_recovers_arma11(self):
        x = simulate_arma(30000, phi=(0.6,), theta=(0.4,), seed=4)
        phi, theta = hannan_rissanen(x, 1, 1)
        assert phi[0] == pytest.approx(0.6, abs=0.08)
        assert theta[0] == pytest.approx(0.4, abs=0.10)

    def test_pure_ma(self):
        x = simulate_arma(30000, theta=(0.7,), seed=5)
        _, theta = hannan_rissanen(x, 0, 1)
        assert theta[0] == pytest.approx(0.7, abs=0.08)

    def test_constant_series(self):
        phi, theta = hannan_rissanen(np.full(100, 0.4), 2, 2)
        assert np.allclose(phi, 0.0) and np.allclose(theta, 0.0)

    def test_short_series_graceful(self):
        phi, theta = hannan_rissanen(np.array([0.1, 0.2, 0.3, 0.1, 0.2, 0.4]), 2, 2)
        assert phi.shape == (2,) and theta.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            hannan_rissanen(np.zeros(100), 0, 0)
        with pytest.raises(ValueError):
            hannan_rissanen(np.zeros(100), -1, 2)
