"""Tests for the linear time-series models (Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.timeseries.base import TimeSeriesModel, clip_loads
from repro.timeseries.models import (
    Arma,
    AutoRegressive,
    BestMean,
    Last,
    MovingAverage,
    rps_model_suite,
)


def ar1_series(n=400, mean=0.3, phi=0.8, sigma=0.05, seed=0):
    rng = np.random.default_rng(seed)
    x = np.empty(n)
    x[0] = mean
    for t in range(1, n):
        x[t] = mean + phi * (x[t - 1] - mean) + rng.normal(0.0, sigma)
    return np.clip(x, 0.0, 1.0)


load_series = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=40, max_value=200),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64),
)

ALL_MODELS = [lambda: Last(), lambda: BestMean(8), lambda: AutoRegressive(8),
              lambda: MovingAverage(8), lambda: Arma(8, 8)]


class TestBaseContract:
    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_forecast_before_fit_rejected(self, factory):
        with pytest.raises(RuntimeError):
            factory().forecast(5)

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_bad_steps_rejected(self, factory):
        m = factory().fit(ar1_series(100))
        with pytest.raises(ValueError):
            m.forecast(0)

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_rejects_empty_series(self, factory):
        with pytest.raises(ValueError):
            factory().fit(np.array([]))

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_rejects_2d_series(self, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((5, 2)))

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_rejects_nonfinite(self, factory):
        with pytest.raises(ValueError):
            factory().fit(np.array([0.1, np.nan, 0.2]))

    @settings(max_examples=20, deadline=None)
    @given(load_series, st.integers(min_value=1, max_value=60))
    def test_forecasts_clipped_and_shaped(self, series, steps):
        for factory in ALL_MODELS:
            f = factory().fit(series).forecast(steps)
            assert f.shape == (steps,)
            assert np.all(f >= 0.0) and np.all(f <= 1.0)
            assert np.all(np.isfinite(f))

    def test_clip_loads(self):
        out = clip_loads(np.array([-0.5, 0.5, 1.5]))
        assert list(out) == [0.0, 0.5, 1.0]


class TestLast:
    def test_constant_forecast(self):
        f = Last().fit(np.array([0.1, 0.9, 0.4])).forecast(5)
        assert np.allclose(f, 0.4)


class TestBestMean:
    def test_window_selection_on_noise(self):
        # For i.i.d. noise, longer windows average better: BM should pick
        # a window larger than 1.
        rng = np.random.default_rng(2)
        m = BestMean(8).fit(np.clip(rng.normal(0.4, 0.1, 300), 0, 1))
        assert m.window > 1

    def test_window_selection_on_random_walk(self):
        # For a (load-like) slowly drifting series the most recent value
        # is the best predictor: BM should pick a short window.
        rng = np.random.default_rng(3)
        walk = np.clip(0.5 + np.cumsum(rng.normal(0, 0.05, 300)), 0, 1)
        m = BestMean(8).fit(walk)
        assert m.window <= 3

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            BestMean(0)

    def test_forecast_is_recent_mean(self):
        series = np.array([0.0] * 50 + [0.6, 0.6, 0.6])
        m = BestMean(3).fit(series)
        if m.window == 3:
            assert np.allclose(m.forecast(4), 0.6)


class TestAutoRegressive:
    def test_recovers_ar1_coefficient(self):
        m = AutoRegressive(1).fit(ar1_series(3000, phi=0.8))
        assert m.phi[0] == pytest.approx(0.8, abs=0.06)

    def test_forecast_decays_to_mean(self):
        series = ar1_series(500)
        m = AutoRegressive(8).fit(series)
        f = m.forecast(300)
        assert f[-1] == pytest.approx(series.mean(), abs=0.02)

    def test_constant_series(self):
        f = AutoRegressive(8).fit(np.full(100, 0.5)).forecast(10)
        assert np.allclose(f, 0.5)

    def test_very_short_series_falls_back(self):
        f = AutoRegressive(8).fit(np.array([0.2, 0.4])).forecast(3)
        assert np.all((f >= 0) & (f <= 1))

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            AutoRegressive(0)


class TestMovingAverage:
    def test_forecast_reaches_mean_after_q(self):
        series = ar1_series(500)
        m = MovingAverage(8).fit(series)
        f = m.forecast(20)
        # Beyond q = 8 steps every forecast is exactly the mean.
        assert np.allclose(f[8:], np.clip(series.mean(), 0, 1), atol=1e-9)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            MovingAverage(0)


class TestArma:
    def test_tracks_ar1_short_term_better_than_mean(self):
        series = ar1_series(600, phi=0.9, seed=5)
        m = Arma(8, 8).fit(series)
        one_step = m.forecast(1)[0]
        # One-step forecast should be much closer to the last value than
        # to the long-run mean (phi = 0.9 persistence).
        assert abs(one_step - series[-1]) < abs(series.mean() - series[-1])

    def test_constant_series(self):
        f = Arma(8, 8).fit(np.full(100, 0.7)).forecast(10)
        assert np.allclose(f, 0.7)

    def test_rejects_bad_orders(self):
        with pytest.raises(ValueError):
            Arma(0, 8)
        with pytest.raises(ValueError):
            Arma(8, 0)


class TestSuite:
    def test_rps_roster_matches_table1(self):
        names = [m.name for m in rps_model_suite()]
        assert names == ["AR(8)", "BM(8)", "MA(8)", "ARMA(8,8)", "LAST"]

    def test_custom_orders(self):
        names = [m.name for m in rps_model_suite(p=4, q=2)]
        assert "AR(4)" in names and "ARMA(4,2)" in names


class TestExtendedRoster:
    """MEAN, MEDIAN and ARIMA — the RPS models beyond Table 1."""

    def test_global_mean(self):
        from repro.timeseries.models import GlobalMean

        f = GlobalMean().fit(np.array([0.2, 0.4, 0.6])).forecast(3)
        assert np.allclose(f, 0.4)

    def test_windowed_median_robust_to_spike(self):
        from repro.timeseries.models import WindowedMedian

        series = np.array([0.2] * 7 + [1.0])  # one spike in the window
        f = WindowedMedian(8).fit(series).forecast(2)
        assert np.allclose(f, 0.2)

    def test_median_validation(self):
        from repro.timeseries.models import WindowedMedian

        with pytest.raises(ValueError):
            WindowedMedian(0)

    def test_arima_d0_close_to_arma(self):
        from repro.timeseries.models import Arima, Arma

        series = ar1_series(400, seed=9)
        fa = Arima(4, 0, 4).fit(series).forecast(10)
        fb = Arma(4, 4).fit(series).forecast(10)
        assert np.allclose(fa, fb, atol=1e-9)

    def test_arima_d1_tracks_trend_short_term(self):
        from repro.timeseries.models import Arima

        # A rising ramp: the differenced model forecasts continued rise.
        series = np.linspace(0.1, 0.5, 200)
        f = Arima(2, 1, 2).fit(series).forecast(5)
        assert f[0] > series[-1] - 0.01
        assert f[-1] >= f[0] - 0.01

    def test_arima_clipped(self):
        from repro.timeseries.models import Arima

        series = np.linspace(0.5, 0.99, 200)  # steep ramp toward 1
        f = Arima(2, 1, 2).fit(series).forecast(100)
        assert np.all(f <= 1.0)

    def test_arima_validation(self):
        from repro.timeseries.models import Arima

        with pytest.raises(ValueError):
            Arima(0, 1, 2)
        with pytest.raises(ValueError):
            Arima(2, 3, 2)

    def test_arima_short_series_fallback(self):
        from repro.timeseries.models import Arima

        f = Arima(8, 1, 8).fit(np.array([0.1, 0.2, 0.3])).forecast(4)
        assert np.all((f >= 0) & (f <= 1))

    def test_extended_suite_roster(self):
        from repro.timeseries.models import rps_extended_suite

        names = [m.name for m in rps_extended_suite()]
        assert names == [
            "AR(8)", "BM(8)", "MA(8)", "ARMA(8,8)", "LAST",
            "MEAN", "MEDIAN(8)", "ARIMA(8,1,8)",
        ]

    def test_extended_models_respect_base_contract(self):
        from repro.timeseries.models import rps_extended_suite

        rng = np.random.default_rng(3)
        series = np.clip(rng.normal(0.4, 0.1, 120), 0, 1)
        for m in rps_extended_suite()[5:]:
            f = m.fit(series).forecast(20)
            assert f.shape == (20,)
            assert np.all((f >= 0.0) & (f <= 1.0))
