"""Tests for the time-series -> temporal-reliability adapter."""

import numpy as np
import pytest

from repro.core.windows import SECONDS_PER_DAY, ClockWindow, DayType
from repro.timeseries.models import Arma, AutoRegressive, Last
from repro.timeseries.tr_adapter import TimeSeriesTRPredictor
from repro.traces.trace import MachineTrace


def step_trace(n_days=10, period=60.0, busy_from_hour=9.0, busy_load=0.95):
    """Idle until busy_from_hour each day, then overloaded for 4 hours."""
    n_per_day = int(SECONDS_PER_DAY / period)
    load = np.full(n_days * n_per_day, 0.05)
    i0 = int(busy_from_hour * 3600 / period)
    k = int(4 * 3600 / period)
    for d in range(n_days):
        load[d * n_per_day + i0 : d * n_per_day + i0 + k] = busy_load
    return MachineTrace("step", 0.0, period, load, np.full(load.shape, 400.0))


class TestPredictDay:
    def test_last_predicts_persistence(self):
        trace = step_trace()
        pred = TimeSeriesTRPredictor(lambda: Last())
        # Preceding window 8-10 ends at load 0.95 (busy started at 9):
        # LAST forecasts overload for the whole target window -> failure.
        target = ClockWindow.from_hours(10, 2).on_day(2)
        assert pred.predict_day(trace, target) is False
        # Preceding window for an idle 4-6 target ends idle -> safe.
        target = ClockWindow.from_hours(4, 2).on_day(2)
        assert pred.predict_day(trace, target) is True

    def test_requires_preceding_window(self):
        trace = step_trace(n_days=2)
        pred = TimeSeriesTRPredictor(lambda: Last())
        with pytest.raises(IndexError):
            pred.predict_day(trace, ClockWindow.from_hours(0, 2).on_day(0))

    def test_ar_misses_future_burst(self):
        # The model sees an idle 7-9 window (except the 9:00 onset) and
        # forecasts idle: it cannot anticipate the 9:00 workload.
        trace = step_trace(busy_from_hour=9.0)
        pred = TimeSeriesTRPredictor(lambda: AutoRegressive(8))
        target = ClockWindow.from_hours(9, 2).on_day(2)
        assert pred.predict_day(trace, target) is True  # wrong, and typically so


class TestPredictedTR:
    def test_idle_trace_tr_one(self):
        n = int(10 * SECONDS_PER_DAY / 60.0)
        trace = MachineTrace("idle", 0.0, 60.0, np.full(n, 0.05), np.full(n, 400.0))
        pred = TimeSeriesTRPredictor(lambda: Last())
        res = pred.predicted_tr(trace, ClockWindow.from_hours(8, 2), DayType.WEEKDAY)
        assert res.value == pytest.approx(1.0)
        assert res.model_name == "LAST"
        # Day 0 lacks a preceding 6-8 window? No: 6-8 on day 0 exists.
        assert res.n_days == 8  # days 0..4 and 7..9 are weekdays; all eligible

    def test_skips_days_without_preceding_window(self):
        n = int(3 * SECONDS_PER_DAY / 60.0)
        trace = MachineTrace("idle", 0.0, 60.0, np.full(n, 0.05), np.full(n, 400.0))
        pred = TimeSeriesTRPredictor(lambda: Last())
        # Window 0:00-2:00: day 0 has no preceding window.
        res = pred.predicted_tr(trace, ClockWindow.from_hours(0, 2), DayType.WEEKDAY)
        assert res.n_days == 2

    def test_empty_result_nan(self):
        n = int(2 * SECONDS_PER_DAY / 60.0)
        trace = MachineTrace(
            "we", 5 * SECONDS_PER_DAY, 60.0, np.full(n, 0.05), np.full(n, 400.0)
        )
        pred = TimeSeriesTRPredictor(lambda: Last())
        res = pred.predicted_tr(trace, ClockWindow.from_hours(8, 1), DayType.WEEKDAY)
        assert np.isnan(res.value)
        assert res.n_days == 0

    def test_conditioning_excludes_failed_starts(self):
        trace = step_trace()
        pred = TimeSeriesTRPredictor(lambda: Last())
        cw = ClockWindow.from_hours(10, 1)  # starts mid-overload
        cond = pred.predicted_tr(trace, cw, DayType.WEEKDAY)
        uncond = pred.predicted_tr(
            trace, cw, DayType.WEEKDAY, condition_on_operational_start=False
        )
        assert cond.n_days < uncond.n_days or cond.n_days == 0

    def test_step_multiple_reduces_cost_same_ballpark(self, long_trace):
        cw = ClockWindow.from_hours(10, 2)
        fine = TimeSeriesTRPredictor(lambda: Last()).predicted_tr(
            long_trace, cw, DayType.WEEKDAY
        )
        coarse = TimeSeriesTRPredictor(lambda: Last(), step_multiple=10).predicted_tr(
            long_trace, cw, DayType.WEEKDAY
        )
        assert coarse.value == pytest.approx(fine.value, abs=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesTRPredictor(lambda: Last(), step_multiple=0)

    def test_arma_runs_on_synthetic(self, long_trace):
        pred = TimeSeriesTRPredictor(lambda: Arma(8, 8), step_multiple=10)
        res = pred.predicted_tr(long_trace, ClockWindow.from_hours(9, 2), DayType.WEEKDAY)
        assert 0.0 <= res.value <= 1.0
        assert res.n_days > 0
