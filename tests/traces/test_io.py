"""Tests for trace persistence (NPZ and CSV round trips)."""

import numpy as np
import pytest

from repro.traces.io import (
    load_trace_csv,
    load_trace_npz,
    load_traceset,
    save_trace_csv,
    save_trace_npz,
    save_traceset,
)
from repro.traces.synthesis import synthesize_testbed, synthesize_trace
from repro.traces.trace import MachineTrace


@pytest.fixture()
def small_trace():
    return synthesize_trace("io-test", n_days=1, sample_period=300.0, seed=0)


class TestNpzRoundTrip:
    def test_round_trip_exact(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "t.npz")
        loaded = load_trace_npz(path)
        assert loaded.machine_id == small_trace.machine_id
        assert loaded.start_time == small_trace.start_time
        assert loaded.sample_period == small_trace.sample_period
        assert np.array_equal(loaded.load, small_trace.load)
        assert np.array_equal(loaded.free_mem_mb, small_trace.free_mem_mb)
        assert np.array_equal(loaded.up, small_trace.up)

    def test_suffix_added(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_version_check(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "t.npz")
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace_npz(path)


class TestCsvRoundTrip:
    def test_round_trip_exact(self, small_trace, tmp_path):
        path = save_trace_csv(small_trace, tmp_path / "t.csv")
        loaded = load_trace_csv(path)
        assert loaded.machine_id == small_trace.machine_id
        assert np.array_equal(loaded.load, small_trace.load)
        assert np.array_equal(loaded.up, small_trace.up)
        assert loaded.sample_period == small_trace.sample_period

    def test_missing_header_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("time,cpu_load,free_mem_mb,up\n0.0,0.1,100.0,1\n")
        with pytest.raises(ValueError):
            load_trace_csv(p)

    def test_header_values(self, small_trace, tmp_path):
        path = save_trace_csv(small_trace, tmp_path / "t.csv")
        text = path.read_text()
        assert text.startswith("# machine_id=io-test\n")
        assert "# sample_period=300.0" in text


class TestTraceSetRoundTrip:
    def test_directory_round_trip(self, tmp_path):
        ts = synthesize_testbed(3, n_days=1, sample_period=300.0, seed=1)
        save_traceset(ts, tmp_path / "bed")
        loaded = load_traceset(tmp_path / "bed")
        assert loaded.machine_ids == ts.machine_ids
        for mid in ts.machine_ids:
            assert np.array_equal(loaded[mid].load, ts[mid].load)

    def test_manifest_exists(self, tmp_path):
        ts = synthesize_testbed(2, n_days=1, sample_period=300.0, seed=1)
        d = save_traceset(ts, tmp_path / "bed")
        assert (d / "manifest.json").exists()
        assert (d / "lab-00.npz").exists()

    def test_bad_manifest_version(self, tmp_path):
        ts = synthesize_testbed(1, n_days=1, sample_period=300.0, seed=1)
        d = save_traceset(ts, tmp_path / "bed")
        (d / "manifest.json").write_text('{"format_version": 42, "machines": []}')
        with pytest.raises(ValueError):
            load_traceset(d)
