"""Tests for trace persistence (NPZ and CSV round trips)."""

import numpy as np
import pytest

from repro.traces.io import (
    load_trace_csv,
    load_trace_npz,
    load_traceset,
    save_trace_csv,
    save_trace_npz,
    save_traceset,
)
from repro.traces.synthesis import synthesize_testbed, synthesize_trace
from repro.traces.trace import MachineTrace


@pytest.fixture()
def small_trace():
    return synthesize_trace("io-test", n_days=1, sample_period=300.0, seed=0)


class TestNpzRoundTrip:
    def test_round_trip_exact(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "t.npz")
        loaded = load_trace_npz(path)
        assert loaded.machine_id == small_trace.machine_id
        assert loaded.start_time == small_trace.start_time
        assert loaded.sample_period == small_trace.sample_period
        assert np.array_equal(loaded.load, small_trace.load)
        assert np.array_equal(loaded.free_mem_mb, small_trace.free_mem_mb)
        assert np.array_equal(loaded.up, small_trace.up)

    def test_suffix_added(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_version_check(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "t.npz")
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace_npz(path)


class TestCsvRoundTrip:
    def test_round_trip_exact(self, small_trace, tmp_path):
        path = save_trace_csv(small_trace, tmp_path / "t.csv")
        loaded = load_trace_csv(path)
        assert loaded.machine_id == small_trace.machine_id
        assert np.array_equal(loaded.load, small_trace.load)
        assert np.array_equal(loaded.up, small_trace.up)
        assert loaded.sample_period == small_trace.sample_period

    def test_missing_header_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("time,cpu_load,free_mem_mb,up\n0.0,0.1,100.0,1\n")
        with pytest.raises(ValueError):
            load_trace_csv(p)

    def test_header_values(self, small_trace, tmp_path):
        path = save_trace_csv(small_trace, tmp_path / "t.csv")
        text = path.read_text()
        assert text.startswith("# machine_id=io-test\n")
        assert "# sample_period=300.0" in text


class TestCsvRobustness:
    def test_trailing_blank_lines_tolerated(self, small_trace, tmp_path):
        # A shell append or hand edit often leaves blank trailers.
        path = save_trace_csv(small_trace, tmp_path / "t.csv")
        with path.open("a") as fh:
            fh.write("\n   \n\n")
        loaded = load_trace_csv(path)
        assert loaded.n_samples == small_trace.n_samples
        assert np.array_equal(loaded.load, small_trace.load)

    def test_interior_blank_line_tolerated(self, small_trace, tmp_path):
        path = save_trace_csv(small_trace, tmp_path / "t.csv")
        lines = path.read_text().splitlines()
        lines.insert(6, "")  # between two data rows
        path.write_text("\n".join(lines) + "\n")
        loaded = load_trace_csv(path)
        assert loaded.n_samples == small_trace.n_samples

    def test_malformed_row_names_its_line(self, small_trace, tmp_path):
        path = save_trace_csv(small_trace, tmp_path / "t.csv")
        lines = path.read_text().splitlines()
        # 3 comment headers + 1 column header + 2 good rows, then this:
        lines[6] = "0.0,not-a-load,100.0,1"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"t\.csv:7: malformed"):
            load_trace_csv(path)


class TestTraceSetRoundTrip:
    def test_directory_round_trip(self, tmp_path):
        ts = synthesize_testbed(3, n_days=1, sample_period=300.0, seed=1)
        save_traceset(ts, tmp_path / "bed")
        loaded = load_traceset(tmp_path / "bed")
        assert loaded.machine_ids == ts.machine_ids
        for mid in ts.machine_ids:
            assert np.array_equal(loaded[mid].load, ts[mid].load)

    def test_manifest_exists(self, tmp_path):
        ts = synthesize_testbed(2, n_days=1, sample_period=300.0, seed=1)
        d = save_traceset(ts, tmp_path / "bed")
        assert (d / "manifest.json").exists()
        assert (d / "lab-00.npz").exists()

    def test_bad_manifest_version(self, tmp_path):
        ts = synthesize_testbed(1, n_days=1, sample_period=300.0, seed=1)
        d = save_traceset(ts, tmp_path / "bed")
        (d / "manifest.json").write_text('{"format_version": 42, "machines": []}')
        with pytest.raises(ValueError):
            load_traceset(d)

    def test_load_order_is_sorted_regardless_of_manifest_order(self, tmp_path):
        import json

        ts = synthesize_testbed(3, n_days=1, sample_period=300.0, seed=1)
        d = save_traceset(ts, tmp_path / "bed")
        manifest = json.loads((d / "manifest.json").read_text())
        manifest["machines"].reverse()
        (d / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_traceset(d)
        assert loaded.machine_ids == sorted(ts.machine_ids)

    def test_no_manifest_falls_back_to_sorted_glob(self, tmp_path):
        ts = synthesize_testbed(3, n_days=1, sample_period=300.0, seed=1)
        d = save_traceset(ts, tmp_path / "bed")
        (d / "manifest.json").unlink()
        loaded = load_traceset(d)
        assert loaded.machine_ids == sorted(ts.machine_ids)

    def test_non_trace_files_skipped(self, tmp_path):
        ts = synthesize_testbed(2, n_days=1, sample_period=300.0, seed=1)
        d = save_traceset(ts, tmp_path / "bed")
        (d / "manifest.json").unlink()
        (d / "notes.npz").write_bytes(b"not a zip at all")
        np.savez(d / "foreign.npz", data=np.arange(3))  # npz, not a trace
        (d / "README.txt").write_text("ignore me")
        loaded = load_traceset(d)
        assert loaded.machine_ids == sorted(ts.machine_ids)

    def test_empty_directory_raises(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        with pytest.raises(FileNotFoundError):
            load_traceset(d)


class TestEdgeTraces:
    """Degenerate traces must survive both formats unchanged."""

    def edge_cases(self):
        empty = np.empty(0)
        yield MachineTrace("empty", 0.0, 6.0, empty, empty.copy(),
                           np.empty(0, dtype=bool))
        yield MachineTrace("single", 42.0, 6.0, np.array([0.5]),
                           np.array([256.0]), np.array([True]))
        # Start mid-day, duration not a whole number of days.
        rng = np.random.default_rng(3)
        n = 700  # 700 * 300 s ≈ 2.43 days
        yield MachineTrace("offgrid", 13 * 3600.0 + 300.0, 300.0,
                           rng.uniform(0, 1, n), rng.uniform(0, 512, n),
                           rng.uniform(0, 1, n) > 0.2)

    @pytest.mark.parametrize("fmt", ["npz", "csv"])
    def test_round_trip(self, tmp_path, fmt):
        save = save_trace_npz if fmt == "npz" else save_trace_csv
        load = load_trace_npz if fmt == "npz" else load_trace_csv
        for trace in self.edge_cases():
            path = save(trace, tmp_path / f"{trace.machine_id}.{fmt}")
            loaded = load(path)
            assert loaded.machine_id == trace.machine_id
            assert loaded.start_time == trace.start_time
            assert loaded.sample_period == trace.sample_period
            assert np.array_equal(loaded.load, trace.load)
            assert np.array_equal(loaded.free_mem_mb, trace.free_mem_mb)
            assert np.array_equal(loaded.up, trace.up)
            assert loaded.n_samples == trace.n_samples


class TestConcatMismatches:
    def base(self):
        return MachineTrace("a", 0.0, 6.0, np.full(10, 0.1), np.full(10, 100.0))

    def test_machine_mismatch(self):
        other = MachineTrace("b", 60.0, 6.0, np.full(5, 0.1), np.full(5, 100.0))
        with pytest.raises(ValueError, match="different machines"):
            self.base().concat(other)

    def test_period_mismatch(self):
        other = MachineTrace("a", 60.0, 30.0, np.full(5, 0.1), np.full(5, 100.0))
        with pytest.raises(ValueError, match="periods differ"):
            self.base().concat(other)

    def test_non_contiguous(self):
        other = MachineTrace("a", 120.0, 6.0, np.full(5, 0.1), np.full(5, 100.0))
        with pytest.raises(ValueError, match="not contiguous"):
            self.base().concat(other)

    def test_contiguous_succeeds(self):
        other = MachineTrace("a", 60.0, 6.0, np.full(5, 0.2), np.full(5, 50.0))
        grown = self.base().concat(other)
        assert grown.n_samples == 15
        assert grown.load[-1] == 0.2
