"""Tests for Section-7.3 noise injection."""

import numpy as np
import pytest

from repro.core import windows as win
from repro.core.classifier import StateClassifier
from repro.core.states import State
from repro.core.windows import DayType
from repro.traces.noise import NoiseSpec, inject_noise
from repro.traces.stats import unavailability_events
from repro.traces.trace import MachineTrace


def quiet_trace(n_days=14, period=60.0):
    n = int(n_days * win.SECONDS_PER_DAY / period)
    return MachineTrace("q", 0.0, period, np.full(n, 0.05), np.full(n, 400.0))


class TestNoiseSpec:
    def test_defaults_match_paper(self):
        spec = NoiseSpec(n_events=1)
        assert spec.anchor == pytest.approx(8 * 3600)
        assert spec.hold_range == (60.0, 1800.0)
        assert spec.state is State.S3
        assert spec.day_type is DayType.WEEKDAY

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseSpec(n_events=-1)
        with pytest.raises(ValueError):
            NoiseSpec(n_events=1, state=State.S1)
        with pytest.raises(ValueError):
            NoiseSpec(n_events=1, hold_range=(0.0, 10.0))
        with pytest.raises(ValueError):
            NoiseSpec(n_events=1, hold_range=(100.0, 10.0))


class TestInjectNoise:
    def test_original_untouched(self):
        tr = quiet_trace()
        before = tr.load.copy()
        inject_noise(tr, NoiseSpec(n_events=5), rng=0)
        assert np.array_equal(tr.load, before)

    def test_zero_events_identity(self):
        tr = quiet_trace()
        noisy = inject_noise(tr, NoiseSpec(n_events=0), rng=0)
        assert np.array_equal(noisy.load, tr.load)

    def test_adds_failure_events(self):
        tr = quiet_trace()
        clf = StateClassifier()
        assert len(unavailability_events(tr, clf)) == 0
        noisy = inject_noise(tr, NoiseSpec(n_events=4), rng=0)
        events = unavailability_events(noisy, clf)
        assert 1 <= len(events) <= 4  # same-day injections may merge
        assert all(e.state is State.S3 for e in events)

    def test_events_near_anchor_on_weekdays(self):
        tr = quiet_trace(n_days=28)
        noisy = inject_noise(tr, NoiseSpec(n_events=10), rng=1)
        for e in unavailability_events(noisy, StateClassifier()):
            assert win.day_type(win.day_index(e.start)) is DayType.WEEKDAY
            tod = win.time_of_day(e.start)
            assert 8 * 3600 - 60 <= tod <= 8 * 3600 + 700

    def test_hold_range_respected(self):
        tr = quiet_trace(n_days=28)
        noisy = inject_noise(tr, NoiseSpec(n_events=8), rng=2)
        for e in unavailability_events(noisy, StateClassifier()):
            assert 60.0 - 60.0 <= e.duration <= 1800.0 + 2 * 60.0  # sample rounding

    def test_s5_injection(self):
        tr = quiet_trace()
        noisy = inject_noise(tr, NoiseSpec(n_events=3, state=State.S5), rng=0)
        assert (~noisy.up).sum() > 0
        events = unavailability_events(noisy, StateClassifier())
        assert all(e.state is State.S5 for e in events)

    def test_s4_injection(self):
        tr = quiet_trace()
        noisy = inject_noise(tr, NoiseSpec(n_events=3, state=State.S4), rng=0)
        events = unavailability_events(noisy, StateClassifier())
        assert events and all(e.state is State.S4 for e in events)

    def test_weekend_target(self):
        tr = quiet_trace(n_days=14)
        noisy = inject_noise(
            tr, NoiseSpec(n_events=5, day_type=DayType.WEEKEND), rng=3
        )
        for e in unavailability_events(noisy, StateClassifier()):
            assert win.day_type(win.day_index(e.start)) is DayType.WEEKEND

    def test_determinism(self):
        tr = quiet_trace()
        a = inject_noise(tr, NoiseSpec(n_events=5), rng=7)
        b = inject_noise(tr, NoiseSpec(n_events=5), rng=7)
        assert np.array_equal(a.load, b.load)

    def test_no_eligible_days_rejected(self):
        # A weekend-only trace cannot receive weekday noise.
        n = int(2 * win.SECONDS_PER_DAY / 60.0)
        tr = MachineTrace(
            "we", 5 * win.SECONDS_PER_DAY, 60.0, np.full(n, 0.05), np.full(n, 400.0)
        )
        with pytest.raises(ValueError):
            inject_noise(tr, NoiseSpec(n_events=1), rng=0)
