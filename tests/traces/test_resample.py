"""Tests for trace resampling."""

import numpy as np
import pytest

from repro.traces.resample import (
    align_periods,
    downsample,
    resample_to_period,
    upsample,
)
from repro.traces.trace import MachineTrace


def make_trace(load, mem=None, up=None, period=6.0):
    load = np.asarray(load, dtype=float)
    mem = np.full(load.shape, 400.0) if mem is None else np.asarray(mem, dtype=float)
    up = np.ones(load.shape, bool) if up is None else np.asarray(up, dtype=bool)
    return MachineTrace("r", 0.0, period, load, mem, up)


class TestDownsample:
    def test_identity(self):
        tr = make_trace([0.1, 0.2])
        assert downsample(tr, 1) is tr

    def test_load_averaged(self):
        tr = make_trace([0.2, 0.4, 0.6, 0.8])
        out = downsample(tr, 2)
        assert list(out.load) == pytest.approx([0.3, 0.7])
        assert out.sample_period == 12.0
        assert out.n_samples == 2

    def test_memory_takes_minimum(self):
        tr = make_trace([0.1] * 4, mem=[400.0, 50.0, 300.0, 200.0])
        out = downsample(tr, 2)
        assert list(out.free_mem_mb) == [50.0, 200.0]

    def test_down_never_hidden(self):
        tr = make_trace([0.1] * 4, up=[True, False, True, True])
        out = downsample(tr, 2)
        assert list(out.up) == [False, True]

    def test_remainder_dropped(self):
        tr = make_trace([0.1] * 7)
        out = downsample(tr, 3)
        assert out.n_samples == 2

    def test_validation(self):
        tr = make_trace([0.1, 0.2])
        with pytest.raises(ValueError):
            downsample(tr, 0)
        with pytest.raises(ValueError):
            downsample(tr, 5)

    def test_failure_condition_survives_coarsening(self):
        # A thrashing sample must still classify as S4 after coarsening.
        from repro.core.classifier import StateClassifier

        tr = make_trace([0.05] * 10, mem=[400.0] * 4 + [10.0] + [400.0] * 5)
        coarse = downsample(tr, 5)
        states = StateClassifier().classify_trace(coarse)
        assert 4 in states


class TestAlignPeriods:
    def test_already_aligned(self):
        a = make_trace([0.1] * 4)
        b = make_trace([0.2] * 4)
        ra, rb = align_periods(a, b)
        assert ra is a and rb is b

    def test_fine_trace_coarsened(self):
        fine = make_trace([0.1] * 10, period=6.0)
        coarse = make_trace([0.2] * 2, period=30.0)
        ra, rb = align_periods(fine, coarse)
        assert ra.sample_period == 30.0
        assert rb is coarse
        # Argument order preserved.
        rb2, ra2 = align_periods(coarse, fine)
        assert rb2 is coarse and ra2.sample_period == 30.0

    def test_non_multiple_rejected(self):
        a = make_trace([0.1] * 10, period=6.0)
        b = make_trace([0.2] * 10, period=10.0)
        with pytest.raises(ValueError):
            align_periods(a, b)


class TestUpsample:
    def test_identity(self):
        tr = make_trace([0.1, 0.2])
        assert upsample(tr, 1) is tr

    def test_each_sample_covers_its_interval(self):
        tr = make_trace([0.2, 0.8], mem=[400.0, 50.0], up=[True, False],
                        period=30.0)
        out = upsample(tr, 5)
        assert out.sample_period == 6.0
        assert out.n_samples == 10
        assert list(out.load[:5]) == [0.2] * 5
        assert list(out.load[5:]) == [0.8] * 5
        assert list(out.free_mem_mb[5:]) == [50.0] * 5
        assert out.up[:5].all() and not out.up[5:].any()
        assert out.start_time == tr.start_time

    def test_round_trip_is_exact(self):
        # The invariant the foreign-cadence adapters rely on.  (Dyadic
        # loads: the mean of a constant block is bit-exact for them.)
        tr = make_trace([0.125, 0.5, 0.875], mem=[400.0, 120.0, 55.0],
                        up=[True, False, True], period=30.0)
        back = downsample(upsample(tr, 5), 5)
        assert np.array_equal(back.load, tr.load)
        assert np.array_equal(back.free_mem_mb, tr.free_mem_mb)
        assert np.array_equal(back.up, tr.up)
        assert back.sample_period == tr.sample_period

    def test_validation(self):
        with pytest.raises(ValueError):
            upsample(make_trace([0.1]), 0)


class TestResampleToPeriod:
    def test_same_period_is_identity(self):
        tr = make_trace([0.1, 0.2], period=6.0)
        assert resample_to_period(tr, 6.0) is tr

    def test_coarser_target_downsamples(self):
        tr = make_trace([0.2, 0.4, 0.6, 0.8], period=6.0)
        out = resample_to_period(tr, 12.0)
        assert out.sample_period == 12.0
        assert list(out.load) == pytest.approx([0.3, 0.7])

    def test_finer_target_upsamples(self):
        tr = make_trace([0.2, 0.4], period=30.0)
        out = resample_to_period(tr, 6.0)
        assert out.sample_period == 6.0
        assert out.n_samples == 10

    def test_non_integer_ratio_rejected(self):
        tr = make_trace([0.1] * 10, period=6.0)
        with pytest.raises(ValueError, match="cannot resample losslessly"):
            resample_to_period(tr, 10.0)
        with pytest.raises(ValueError, match="positive"):
            resample_to_period(tr, 0.0)
