"""Tests for trace statistics and events extraction."""

import numpy as np
import pytest

from repro.core import windows as win
from repro.core.classifier import StateClassifier
from repro.core.states import State
from repro.traces.events import StateVisit, UnavailabilityEvent
from repro.traces.stats import (
    daily_pattern_correlation,
    hourly_mean_load,
    summarize_trace,
    unavailability_events,
)
from repro.traces.trace import MachineTrace


def trace_from_loads(load, period=60.0, mem=None, up=None):
    load = np.asarray(load, dtype=float)
    mem = np.full(load.shape, 400.0) if mem is None else np.asarray(mem, dtype=float)
    up = np.ones(load.shape, bool) if up is None else np.asarray(up, dtype=bool)
    return MachineTrace("s", 0.0, period, load, mem, up)


class TestEventTypes:
    def test_unavailability_event_validation(self):
        with pytest.raises(ValueError):
            UnavailabilityEvent(start=0.0, end=10.0, state=State.S1)
        with pytest.raises(ValueError):
            UnavailabilityEvent(start=10.0, end=10.0, state=State.S3)
        e = UnavailabilityEvent(start=0.0, end=60.0, state=State.S5)
        assert e.duration == 60.0

    def test_state_visit_validation(self):
        with pytest.raises(ValueError):
            StateVisit(state=State.S1, start_index=0, length=0)
        with pytest.raises(ValueError):
            StateVisit(state=State.S1, start_index=-1, length=2)


class TestUnavailabilityEvents:
    def test_no_events_in_quiet_trace(self):
        tr = trace_from_loads([0.05] * 100)
        assert unavailability_events(tr) == []

    def test_one_s3_event(self):
        load = [0.05] * 10 + [0.95] * 5 + [0.05] * 10
        tr = trace_from_loads(load, period=60.0)
        events = unavailability_events(tr)
        assert len(events) == 1
        e = events[0]
        assert e.state is State.S3
        assert e.start == pytest.approx(600.0)
        assert e.duration == pytest.approx(300.0)

    def test_adjacent_distinct_failures_separate(self):
        # S3 flowing straight into a reboot: two events.
        load = [0.05] * 5 + [0.95] * 5 + [0.0] * 5 + [0.05] * 5
        up = [True] * 10 + [False] * 5 + [True] * 5
        tr = trace_from_loads(load, period=60.0, up=up)
        events = unavailability_events(tr)
        assert [e.state for e in events] == [State.S3, State.S5]

    def test_transient_spike_not_an_event(self):
        # 30 s spike at 6 s sampling: absorbed, no event.
        load = [0.05] * 20 + [0.95] * 5 + [0.05] * 20
        tr = trace_from_loads(load, period=6.0)
        assert unavailability_events(tr) == []


class TestSummaries:
    def test_summary_counts(self):
        load = [0.05] * 30 + [0.95] * 10 + [0.05] * 30
        mem = [400.0] * 50 + [50.0] * 10 + [400.0] * 10
        tr = trace_from_loads(load, period=60.0, mem=mem)
        s = summarize_trace(tr)
        assert s.n_events == 2
        assert s.n_s3 == 1 and s.n_s4 == 1 and s.n_s5 == 0
        assert s.breakdown() == {"S3": 1, "S4": 1, "S5": 0}
        assert 0.0 < s.availability < 1.0

    def test_mean_load_excludes_down(self):
        load = [0.4] * 10 + [0.0] * 10
        up = [True] * 10 + [False] * 10
        tr = trace_from_loads(load, period=60.0, up=up)
        assert summarize_trace(tr).mean_load == pytest.approx(0.4)


class TestHourlyLoad:
    def test_constant_day(self):
        n = int(win.SECONDS_PER_DAY / 60.0)
        tr = trace_from_loads([0.3] * n, period=60.0)
        hourly = hourly_mean_load(tr, 0)
        assert np.allclose(hourly, 0.3)

    def test_down_hour_is_nan(self):
        n = int(win.SECONDS_PER_DAY / 60.0)
        up = np.ones(n, bool)
        up[0:60] = False  # hour 0 fully down
        tr = trace_from_loads(np.full(n, 0.3) * up, period=60.0, up=up)
        hourly = hourly_mean_load(tr, 0)
        assert np.isnan(hourly[0])
        assert hourly[1] == pytest.approx(0.3)


class TestPatternCorrelation:
    def test_identical_days_correlate(self):
        n_day = int(win.SECONDS_PER_DAY / 300.0)
        day = np.clip(np.sin(np.linspace(0, np.pi, n_day)) * 0.5, 0, 1)
        tr = trace_from_loads(np.tile(day, 2), period=300.0)
        assert daily_pattern_correlation(tr, 0, 1) == pytest.approx(1.0)

    def test_constant_day_is_nan(self):
        n_day = int(win.SECONDS_PER_DAY / 300.0)
        tr = trace_from_loads(np.full(2 * n_day, 0.3), period=300.0)
        assert np.isnan(daily_pattern_correlation(tr, 0, 1))

    def test_inverted_days_anticorrelate(self):
        n_day = int(win.SECONDS_PER_DAY / 300.0)
        ramp = np.linspace(0.0, 0.8, n_day)
        tr = trace_from_loads(np.concatenate([ramp, ramp[::-1]]), period=300.0)
        assert daily_pattern_correlation(tr, 0, 1) < -0.9
