"""Tests for the synthetic workload generator and its calibration."""

import numpy as np
import pytest

from repro.core.classifier import StateClassifier
from repro.core.windows import DayType
from repro.traces.profiles import MachineProfile, office_desktop, server_room, student_lab
from repro.traces.stats import (
    daily_pattern_correlation,
    hourly_mean_load,
    summarize_trace,
    unavailability_events,
)
from repro.traces.synthesis import SynthesisConfig, synthesize_testbed, synthesize_trace


class TestProfiles:
    def test_presets_construct(self):
        for factory in (student_lab, office_desktop, server_room):
            prof = factory()
            assert len(prof.weekday_hourly) == 24
            assert len(prof.weekend_hourly) == 24

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            MachineProfile(name="bad", weekday_hourly=(0.5,) * 23, weekend_hourly=(0.5,) * 24)

    def test_ram_validation(self):
        with pytest.raises(ValueError):
            MachineProfile(
                name="bad",
                weekday_hourly=(0.5,) * 24,
                weekend_hourly=(0.5,) * 24,
                ram_mb=64.0,
                kernel_mem_mb=96.0,
            )

    def test_jitter_produces_different_profile(self):
        rng = np.random.default_rng(0)
        base = student_lab()
        jittered = base.with_jitter(rng)
        assert jittered.sessions_per_day != base.sessions_per_day
        assert jittered.weekday_hourly != base.weekday_hourly

    def test_student_lab_diurnal_shape(self):
        prof = student_lab()
        wd = prof.hourly(weekend=False)
        # Afternoon is the peak; 3-4 am is near dead.
        assert wd[15] > 0.8
        assert wd[3] < 0.1
        # Weekends are quieter than weekdays at peak hours.
        assert prof.hourly(True)[15] < wd[15]


class TestSynthesisConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SynthesisConfig(n_days=0)
        with pytest.raises(ValueError):
            SynthesisConfig(sample_period=0.0)
        with pytest.raises(ValueError):
            SynthesisConfig(start_day=-1)
        with pytest.raises(ValueError):
            SynthesisConfig(machine_jitter=-0.5)


class TestSynthesizeTrace:
    def test_shape_and_range(self, short_trace):
        assert short_trace.n_days == 14
        assert short_trace.sample_period == 30.0
        assert short_trace.load.min() >= 0.0
        assert short_trace.load.max() <= 1.0
        assert short_trace.free_mem_mb.min() >= 0.0

    def test_determinism(self):
        a = synthesize_trace("m", n_days=3, sample_period=60.0, seed=9)
        b = synthesize_trace("m", n_days=3, sample_period=60.0, seed=9)
        assert np.array_equal(a.load, b.load)
        assert np.array_equal(a.up, b.up)

    def test_seed_changes_trace(self):
        a = synthesize_trace("m", n_days=3, sample_period=60.0, seed=1)
        b = synthesize_trace("m", n_days=3, sample_period=60.0, seed=2)
        assert not np.array_equal(a.load, b.load)

    def test_down_periods_have_zero_load(self, short_trace):
        assert short_trace.load[~short_trace.up].sum() == 0.0
        assert short_trace.free_mem_mb[~short_trace.up].sum() == 0.0

    def test_has_some_revocations(self, short_trace):
        assert (~short_trace.up).sum() > 0

    def test_diurnal_pattern_present(self, long_trace):
        # Weekday afternoons must be busier than weekday nights on average.
        wd = long_trace.days(DayType.WEEKDAY)
        hourly = np.nanmean([hourly_mean_load(long_trace, d) for d in wd], axis=0)
        assert hourly[14] > 3.0 * hourly[3]

    def test_weekend_quieter_than_weekday(self, long_trace):
        wd = np.nanmean(
            [hourly_mean_load(long_trace, d).mean() for d in long_trace.days(DayType.WEEKDAY)]
        )
        we = np.nanmean(
            [hourly_mean_load(long_trace, d).mean() for d in long_trace.days(DayType.WEEKEND)]
        )
        assert we < wd

    def test_start_day_offsets_trace(self):
        tr = synthesize_trace("m", n_days=2, sample_period=60.0, start_day=3, seed=0)
        assert tr.first_day == 3
        assert tr.last_day == 5

    def test_profile_selection(self):
        tr = synthesize_trace(
            "srv", n_days=3, sample_period=60.0, profile=server_room(), seed=0,
            machine_jitter=0.0,
        )
        # Server room: higher RAM means much more free memory.
        assert np.median(tr.free_mem_mb[tr.up]) > 800.0


class TestCalibration:
    """The TRACE experiment: synthetic testbed vs the paper's statistics."""

    def test_unavailability_count_in_paper_band(self):
        # Paper: 405-453 events per machine over 3 months.  Allow a wider
        # band per machine, but require the right order of magnitude.
        tr = synthesize_trace("cal", n_days=90, seed=3, machine_jitter=0.10)
        s = summarize_trace(tr)
        assert 250 <= s.n_events <= 650

    def test_event_mix(self):
        tr = synthesize_trace("cal", n_days=90, seed=3, machine_jitter=0.10)
        s = summarize_trace(tr)
        # CPU contention dominates; thrashing and revocation both occur.
        assert s.n_s3 > s.n_s4 > 0
        assert s.n_s5 > 0

    def test_daily_patterns_comparable(self):
        # The paper's premise: same-type days correlate.
        tr = synthesize_trace("cal", n_days=28, sample_period=60.0, seed=5)
        wd = tr.days(DayType.WEEKDAY)
        corr = [
            daily_pattern_correlation(tr, a, b)
            for a, b in zip(wd, wd[1:])
        ]
        assert np.nanmean(corr) > 0.2

    def test_events_cluster_in_busy_hours(self):
        tr = synthesize_trace("cal", n_days=28, sample_period=60.0, seed=5)
        events = unavailability_events(tr, StateClassifier())
        from repro.core.windows import time_of_day

        hours = np.array([time_of_day(e.start) / 3600.0 for e in events])
        busy = ((hours >= 9) & (hours <= 22)).mean()
        assert busy > 0.7  # the paper injects noise at 8:00 because it is rare there


class TestSynthesizeTestbed:
    def test_machine_count_and_ids(self, testbed):
        assert len(testbed) == 3
        assert testbed.machine_ids == ["lab-00", "lab-01", "lab-02"]

    def test_machines_differ(self, testbed):
        a = testbed["lab-00"]
        b = testbed["lab-01"]
        assert not np.array_equal(a.load, b.load)

    def test_determinism(self):
        x = synthesize_testbed(2, n_days=2, sample_period=60.0, seed=4)
        y = synthesize_testbed(2, n_days=2, sample_period=60.0, seed=4)
        for mid in x.machine_ids:
            assert np.array_equal(x[mid].load, y[mid].load)

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            synthesize_testbed(0)
