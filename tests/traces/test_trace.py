"""Tests for trace containers and window/day slicing."""

import numpy as np
import pytest

from repro.core.windows import SECONDS_PER_DAY, AbsoluteWindow, ClockWindow, DayType
from repro.traces.trace import MachineTrace, TraceSet


def make_trace(n_days=4, period=60.0, start_day=0):
    n = int(n_days * SECONDS_PER_DAY / period)
    rng = np.random.default_rng(0)
    return MachineTrace(
        machine_id="m0",
        start_time=start_day * SECONDS_PER_DAY,
        sample_period=period,
        load=rng.random(n) * 0.5,
        free_mem_mb=np.full(n, 300.0),
        up=np.ones(n, bool),
    )


class TestConstruction:
    def test_basic_properties(self):
        tr = make_trace(n_days=3, period=60.0)
        assert tr.n_samples == 3 * 1440
        assert tr.duration == pytest.approx(3 * SECONDS_PER_DAY)
        assert tr.end_time == pytest.approx(3 * SECONDS_PER_DAY)

    def test_default_up(self):
        tr = MachineTrace("m", 0.0, 6.0, np.zeros(10), np.zeros(10))
        assert tr.up.all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MachineTrace("m", 0.0, 6.0, np.zeros(10), np.zeros(9))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            MachineTrace("m", 0.0, 6.0, np.zeros((5, 2)), np.zeros((5, 2)))

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            MachineTrace("m", 0.0, 0.0, np.zeros(5), np.zeros(5))

    def test_rejects_out_of_range_load(self):
        with pytest.raises(ValueError):
            MachineTrace("m", 0.0, 6.0, np.array([1.2]), np.array([0.0]))
        with pytest.raises(ValueError):
            MachineTrace("m", 0.0, 6.0, np.array([-0.2]), np.array([0.0]))

    def test_times(self):
        tr = MachineTrace("m", 100.0, 6.0, np.zeros(3), np.zeros(3))
        assert list(tr.times()) == [100.0, 106.0, 112.0]

    def test_index_of(self):
        tr = make_trace()
        assert tr.index_of(0.0) == 0
        assert tr.index_of(59.9) == 0
        assert tr.index_of(60.0) == 1
        with pytest.raises(IndexError):
            tr.index_of(-1.0)
        with pytest.raises(IndexError):
            tr.index_of(tr.end_time + 1.0)


class TestDays:
    def test_full_days(self):
        tr = make_trace(n_days=4)
        assert tr.first_day == 0
        assert tr.last_day == 4
        assert tr.n_days == 4
        assert tr.days() == [0, 1, 2, 3]

    def test_day_type_filter(self):
        tr = make_trace(n_days=14)
        assert len(tr.days(DayType.WEEKDAY)) == 10
        assert tr.days(DayType.WEEKEND) == [5, 6, 12, 13]

    def test_partial_start_day_excluded(self):
        # Starts at noon of day 0: day 0 is not fully covered.
        n = int(1.5 * SECONDS_PER_DAY / 60.0)
        tr = MachineTrace("m", SECONDS_PER_DAY / 2, 60.0, np.zeros(n), np.zeros(n))
        assert tr.first_day == 1
        assert tr.n_days == 1


class TestWindowAccess:
    def test_window_view_shape(self):
        tr = make_trace()
        view = tr.window_view(ClockWindow.from_hours(8, 2).on_day(1))
        assert view.n_samples == 120  # 2 h at 60 s
        assert view.sample_period == 60.0

    def test_window_view_is_view(self):
        tr = make_trace()
        view = tr.window_view(ClockWindow.from_hours(0, 1).on_day(0))
        assert view.load.base is tr.load

    def test_window_view_values(self):
        tr = make_trace()
        aw = AbsoluteWindow(3600.0, 600.0)
        view = tr.window_view(aw)
        i0 = tr.index_of(3600.0)
        assert np.array_equal(view.load, tr.load[i0 : i0 + 10])

    def test_out_of_range_window_rejected(self):
        tr = make_trace(n_days=2)
        with pytest.raises(IndexError):
            tr.window_view(ClockWindow.from_hours(23, 2).on_day(1))

    def test_covers(self):
        tr = make_trace(n_days=2)
        assert tr.covers(AbsoluteWindow(0.0, SECONDS_PER_DAY))
        assert not tr.covers(AbsoluteWindow(SECONDS_PER_DAY, SECONDS_PER_DAY + 60))

    def test_day_view(self):
        tr = make_trace()
        view = tr.day_view(2)
        assert view.n_samples == 1440


class TestSplitting:
    def test_slice_days(self):
        tr = make_trace(n_days=6)
        sub = tr.slice_days(2, 4)
        assert sub.first_day == 2 and sub.last_day == 4
        assert sub.load.base is tr.load  # shares storage

    def test_slice_days_validation(self):
        tr = make_trace(n_days=4)
        with pytest.raises(ValueError):
            tr.slice_days(2, 2)
        with pytest.raises(ValueError):
            tr.slice_days(0, 5)

    def test_split_by_ratio_halves(self):
        tr = make_trace(n_days=10)
        a, b = tr.split_by_ratio(0.5)
        assert a.n_days == 5 and b.n_days == 5
        assert a.last_day == b.first_day

    def test_split_by_ratio_uneven(self):
        tr = make_trace(n_days=10)
        a, b = tr.split_by_ratio(0.6)
        assert a.n_days == 6 and b.n_days == 4

    def test_split_always_leaves_a_day(self):
        tr = make_trace(n_days=2)
        a, b = tr.split_by_ratio(0.99)
        assert a.n_days == 1 and b.n_days == 1

    def test_split_validation(self):
        tr = make_trace(n_days=4)
        with pytest.raises(ValueError):
            tr.split_by_ratio(0.0)
        with pytest.raises(ValueError):
            tr.split_by_ratio(1.0)

    def test_split_single_day_rejected(self):
        tr = make_trace(n_days=1)
        with pytest.raises(ValueError):
            tr.split_by_ratio(0.5)

    def test_split_preserves_samples(self):
        tr = make_trace(n_days=4)
        a, b = tr.split_by_ratio(0.5)
        rejoined = np.concatenate([a.load, b.load])
        assert np.array_equal(rejoined, tr.load)


class TestTraceSet:
    def test_add_and_lookup(self):
        ts = TraceSet([make_trace()])
        assert len(ts) == 1
        assert "m0" in ts
        assert ts["m0"].machine_id == "m0"
        assert ts.machine_ids == ["m0"]

    def test_duplicate_rejected(self):
        ts = TraceSet([make_trace()])
        with pytest.raises(KeyError):
            ts.add(make_trace())

    def test_iteration_order(self):
        a = make_trace()
        b = MachineTrace("m1", 0.0, 60.0, np.zeros(10), np.zeros(10))
        ts = TraceSet([a, b])
        assert [t.machine_id for t in ts] == ["m0", "m1"]

    def test_split_by_ratio(self):
        ts = TraceSet([make_trace(n_days=10)])
        train, test = ts.split_by_ratio(0.5)
        assert train["m0"].n_days == 5
        assert test["m0"].n_days == 5


class TestConcat:
    def test_round_trip_with_slice(self):
        tr = make_trace(n_days=6)
        a, b = tr.split_by_ratio(0.5)
        joined = a.concat(b)
        assert np.array_equal(joined.load, tr.load)
        assert np.array_equal(joined.up, tr.up)
        assert joined.n_days == 6

    def test_rejects_different_machine(self):
        a = make_trace(n_days=2)
        b = MachineTrace("other", a.end_time, 60.0,
                         np.zeros(10), np.zeros(10))
        with pytest.raises(ValueError):
            a.concat(b)

    def test_rejects_different_period(self):
        a = make_trace(n_days=2)
        b = MachineTrace("m0", a.end_time, 30.0, np.zeros(10), np.zeros(10))
        with pytest.raises(ValueError):
            a.concat(b)

    def test_rejects_gap(self):
        a = make_trace(n_days=2)
        b = MachineTrace("m0", a.end_time + 600.0, 60.0, np.zeros(10), np.zeros(10))
        with pytest.raises(ValueError):
            a.concat(b)
