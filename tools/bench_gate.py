#!/usr/bin/env python3
"""CI perf gate: compare fresh bench snapshots against committed baselines.

Usage::

    python tools/bench_gate.py --baseline benchmarks/baselines --candidate out/bench
    python tools/bench_gate.py --baseline ... --candidate ... --threshold 0.3 --min-abs-ms 5

For every ``BENCH_<experiment>.json`` in the candidate directory, the
gate looks up the same file in the baseline directory and compares the
snapshot's ``gate_keys`` (by default every metric ending in ``p99_ms``).
A gated metric **fails** when it regressed by more than ``--threshold``
(relative, default 30%) AND by more than ``--min-abs-ms`` (absolute
floor, default 5 ms) — the floor keeps microsecond-scale jitter from
flapping the build.  Getting *faster* never fails.

A gate key may carry a ``:higher`` suffix (``useful_work_rate:higher``)
for throughput-style metrics where *bigger* is better: the gated metric
is the key without the suffix, and it fails when the candidate *drops*
below the baseline by more than ``--threshold`` relative.  The
millisecond floor does not apply — these metrics are not latencies —
so the check is relative-only.  Getting *higher* never fails.

Missing baselines are reported and pass: the first run on a new
experiment seeds its baseline rather than blocking the build.

Exit status: 0 when every gated metric holds, 1 on any regression,
2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.snapshots import read_bench_snapshot  # noqa: E402


def compare_snapshots(
    baseline: dict,
    candidate: dict,
    *,
    threshold: float,
    min_abs_ms: float,
) -> list[str]:
    """Failure messages for gated metrics that regressed (empty: pass)."""
    failures: list[str] = []
    base_metrics = baseline["metrics"]
    cand_metrics = candidate["metrics"]
    for gate_key in candidate.get("gate_keys", []):
        key, _, direction = gate_key.partition(":")
        higher_is_better = direction == "higher"
        base = base_metrics.get(key)
        cand = cand_metrics.get(key)
        if not isinstance(base, (int, float)) or not isinstance(cand, (int, float)):
            continue  # metric renamed or absent on one side: not a regression
        if base != base or cand != cand:  # nan on either side
            continue
        if higher_is_better:
            drop = base - cand
            if drop <= 0:
                continue
            rel = drop / base if base > 0 else float("inf")
            if rel > threshold:
                failures.append(
                    f"{key}: {base:.3f} -> {cand:.3f} "
                    f"(-{rel * 100:.0f}%; higher is better, "
                    f"threshold {threshold * 100:.0f}%)"
                )
            continue
        delta = cand - base
        if delta <= min_abs_ms:
            continue
        rel = delta / base if base > 0 else float("inf")
        if rel > threshold:
            failures.append(
                f"{key}: {base:.3f} -> {cand:.3f} "
                f"(+{rel * 100:.0f}%, +{delta:.3f} abs; "
                f"threshold {threshold * 100:.0f}%, floor {min_abs_ms})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", required=True, type=Path,
        help="directory of committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--candidate", required=True, type=Path,
        help="directory of freshly produced BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="relative regression that fails the gate (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--min-abs-ms", type=float, default=5.0,
        help="absolute regression floor; smaller deltas never fail (default 5)",
    )
    args = parser.parse_args(argv)

    if not args.candidate.is_dir():
        print(f"bench_gate: candidate dir {args.candidate} does not exist",
              file=sys.stderr)
        return 2
    candidates = sorted(args.candidate.glob("BENCH_*.json"))
    if not candidates:
        print(f"bench_gate: no BENCH_*.json under {args.candidate}", file=sys.stderr)
        return 2

    any_failed = False
    for cand_path in candidates:
        try:
            candidate = read_bench_snapshot(cand_path)
        except ValueError as exc:
            print(f"bench_gate: {exc}", file=sys.stderr)
            return 2
        base_path = args.baseline / cand_path.name
        if not base_path.exists():
            print(f"PASS {cand_path.name}: no baseline at {base_path} "
                  "(first run seeds it)")
            continue
        try:
            baseline = read_bench_snapshot(base_path)
        except ValueError as exc:
            print(f"bench_gate: {exc}", file=sys.stderr)
            return 2
        failures = compare_snapshots(
            baseline, candidate,
            threshold=args.threshold, min_abs_ms=args.min_abs_ms,
        )
        if failures:
            any_failed = True
            print(f"FAIL {cand_path.name}:")
            for msg in failures:
                print(f"  {msg}")
        else:
            gated = ", ".join(candidate.get("gate_keys", [])) or "(nothing gated)"
            print(f"PASS {cand_path.name}: {gated} within threshold")
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
